"""Reproduce the paper's Section-2 study (Figure 3) on a network you choose.

Measures, for every grid resolution, the number of arterial edges per
4x4-cell region — the paper's empirical justification for Assumption 1 —
and prints the same mean / 90% / 99% / max series the figure plots.

Run with::

    python examples/arterial_dimension_study.py [n_towns]
"""

import sys

from repro.bench.experiments import fig3
from repro.core import assign_levels
from repro.datasets import towns_and_highways


def main() -> None:
    n_towns = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    graph = towns_and_highways(n_towns, seed=1)
    print(f"network: {graph.n} nodes, {graph.m} edges\n")

    result = fig3.run_graph(graph, f"towns-{n_towns}", mode="exact")
    print(fig3.render([result]))

    print(
        f"\nempirical arterial dimension (max over resolutions): "
        f"{result.overall_max()}"
    )

    # The same structure drives the level hierarchy AH builds on:
    assignment = assign_levels(graph)
    print("\nAH level histogram (level: nodes):")
    for level, count in sorted(assignment.level_sizes().items()):
        print(f"  {level:>2}: {count}")
    print(
        "\nworking-graph sizes during construction (the §4.2 reduction): "
        + " -> ".join(str(a) for a in assignment.alive_history)
    )


if __name__ == "__main__":
    main()
