"""Compare every engine in the repository on one network.

A miniature of the paper's Section 6: builds Dijkstra, bidirectional
Dijkstra, A*, ALT, CH, SILC, FC and AH on the same network, verifies
they all agree, and reports preprocessing time, index size, and mean
query latency for near / mid / far query regimes.

Run with::

    python examples/index_comparison.py
"""

import time

from repro.baselines import (
    ALTEngine,
    AStarEngine,
    BidirectionalEngine,
    CHEngine,
    DijkstraEngine,
    SILCEngine,
    TNREngine,
)
from repro.bench import format_table
from repro.core import AHIndex, FCIndex
from repro.datasets import generate_workloads, towns_and_highways
from repro.graph.traversal import distance_query


def mean_us(engine, pairs, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for s, t in pairs:
            engine.distance(s, t)
        best = min(best, time.perf_counter() - t0)
    return best / len(pairs) * 1e6


def main() -> None:
    graph = towns_and_highways(6, seed=11)
    print(f"network: {graph.n} nodes, {graph.m} edges\n")

    workloads = generate_workloads(graph, queries_per_bucket=30, seed=2)
    buckets = workloads.non_empty_buckets()
    near = list(workloads.bucket(buckets[0]))
    mid = list(workloads.bucket(buckets[len(buckets) // 2]))
    far = list(workloads.bucket(buckets[-1]))

    factories = [
        ("Dijkstra", DijkstraEngine),
        ("BiDijkstra", BidirectionalEngine),
        ("A*", AStarEngine),
        ("ALT", ALTEngine),
        ("CH", CHEngine),
        ("SILC", SILCEngine),
        ("TNR", TNREngine),
        ("FC", FCIndex),
        ("AH", lambda g: AHIndex(g, elevating=True)),
    ]

    rows = []
    for name, factory in factories:
        t0 = time.perf_counter()
        engine = factory(graph)
        build = time.perf_counter() - t0
        # Verify against ground truth before timing anything.
        for s, t in far[:10]:
            want = distance_query(graph, s, t)
            got = engine.distance(s, t)
            assert abs(got - want) <= 1e-9 * max(1.0, want), name
        rows.append(
            (
                name,
                round(build, 3),
                engine.index_size(),
                round(mean_us(engine, near), 1),
                round(mean_us(engine, mid), 1),
                round(mean_us(engine, far), 1),
            )
        )

    print(
        format_table(
            ["engine", "build s", "index entries", "near us", "mid us", "far us"],
            rows,
            title="all engines, verified identical answers; lower is better",
        )
    )
    print(
        "\nreading guide: Dijkstra's cost explodes with distance; the\n"
        "hierarchical indexes (CH, AH) stay flat — the paper's Figure 8."
    )


if __name__ == "__main__":
    main()
