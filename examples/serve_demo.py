"""The serving subsystem end to end: coalescing, deadlines, backpressure.

Run with::

    python examples/serve_demo.py

A map service doesn't answer one query at a time — it faces hundreds of
concurrent sessions, each alternating ETA rows ("this driver to every
open order") with point distance checks.  This demo builds a hub-label
index, starts the asyncio :class:`repro.serve.Server` over it, and
drives a skewed closed-loop load to show what the front-end buys:

1. concurrent ``submit()`` calls coalesce into planner batches (watch
   ``mean_batch_size`` — no client ever asked for a batch, the server
   manufactured them);
2. same-target ETA rows merge into one ``distance_table`` kernel call,
   and hot point pairs come straight out of the shared
   :class:`DistanceCache`;
3. per-request deadlines shed queued work (``DeadlineExpired``) and the
   bounded queue pushes back on overload (``ServerOverloaded``) instead
   of melting down.

Everything the server returns is bit-identical to a direct engine call
— the coalescing is invisible in results, visible only in throughput.
"""

import asyncio
import random
import time

from repro.baselines import DistanceCache, HubLabelIndex
from repro.datasets import towns_and_highways
from repro.serve import (
    DeadlineExpired,
    Server,
    ServerOverloaded,
)

CLIENTS = 200
ROUNDS = 4


async def client_session(server, rng, graph, order_pool, results):
    """One closed-loop client: ETA rows to the shared order pool, plus
    point checks between hot nodes — awaiting each answer first."""
    for _ in range(ROUNDS):
        if rng.random() < 0.7:
            driver = rng.randrange(graph.n)
            etas = await server.one_to_many(driver, order_pool)
            results.append(min(e for e in etas))
        else:
            # Hot station pairs: the skewed point traffic the cache absorbs.
            a, b = rng.randrange(16), rng.randrange(16)
            results.append(await server.distance(a, b))


async def main_async() -> None:
    graph = towns_and_highways(6, seed=7)
    index = HubLabelIndex(graph)
    rng = random.Random(11)
    order_pool = tuple(rng.randrange(graph.n) for _ in range(30))
    print(f"network: {graph.n} nodes; {CLIENTS} clients x {ROUNDS} requests\n")

    async with Server(index, cache=DistanceCache(4096)) as server:
        results = []
        t0 = time.perf_counter()
        await asyncio.gather(
            *(
                client_session(server, random.Random(i), graph, order_pool, results)
                for i in range(CLIENTS)
            )
        )
        elapsed = time.perf_counter() - t0
        stats = server.stats()
        planner = stats["planner"]
        print(
            f"served {stats['completed']} requests in {elapsed * 1e3:.1f} ms "
            f"({stats['completed'] / elapsed:,.0f} req/s)"
        )
        print(
            f"coalescing: {stats['batches']} batches, mean size "
            f"{stats['mean_batch_size']:.0f}, largest {stats['largest_batch']}"
        )
        print(
            f"kernel routing: {planner['kernel_distance_table']} table calls "
            f"absorbed {planner['merged_one_to_many']} ETA rows; "
            f"{planner['kernel_distance']} direct + "
            f"{planner['coalesced_point_queries']} coalesced point queries"
        )
        print(f"cache: {planner['cache']['hit_rate']:.0%} hit rate\n")

        # --- deadlines: queued work past its deadline is shed, not run ---
        try:
            await server.distance(0, graph.n - 1, timeout=0.0)
        except DeadlineExpired as exc:
            print(f"deadline demo: {type(exc).__name__}: {exc}")

    # --- backpressure: a tiny queue with overflow="reject" sheds load ---
    async with Server(index, max_queue=8, overflow="reject") as tiny:
        submitted = rejected = 0
        async def burst(i):
            nonlocal submitted, rejected
            try:
                await tiny.distance(i % graph.n, (i * 7) % graph.n)
                submitted += 1
            except ServerOverloaded:
                rejected += 1
        await asyncio.gather(*(burst(i) for i in range(64)))
        print(
            f"backpressure demo: queue bound 8 -> {submitted} served, "
            f"{rejected} rejected with ServerOverloaded"
        )


def main() -> None:
    asyncio.run(main_async())


if __name__ == "__main__":
    main()
