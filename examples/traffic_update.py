"""Metric customization: refreshing the index when traffic changes.

The paper's §7 lists time-varying edge weights as future work.  This
example shows the repository's answer: keep the structural phases of the
Arterial Hierarchy (grid levels, vertex-cover ranks) and re-run only the
contraction when the travel times change — a morning rush hour becomes a
sub-second refresh instead of a full rebuild.

Run with::

    python examples/traffic_update.py
"""

import random
import time

from repro.core import AHIndex
from repro.datasets import SPEED_LOCAL, towns_and_highways
from repro.graph import GraphBuilder
from repro.graph.traversal import distance_query
from repro.spatial import euclidean_distance


def with_rush_hour(graph, slowdown=2.5, seed=0):
    """Morning rush: local streets slow down, highways keep moving."""
    rng = random.Random(seed)
    b = GraphBuilder()
    for u in graph.nodes():
        b.add_node(*graph.coord(u))
    for u, v, w in graph.edges():
        length = euclidean_distance(graph.coord(u), graph.coord(v))
        is_local = length > 0 and length / w <= SPEED_LOCAL + 1e-9
        factor = slowdown * rng.uniform(0.8, 1.2) if is_local else 1.0
        b.add_edge(u, v, w * factor)
    return b.build()


def main() -> None:
    free_flow = towns_and_highways(7, seed=19)
    print(f"network: {free_flow.n} nodes, {free_flow.m} edges")

    t0 = time.perf_counter()
    index = AHIndex(free_flow)
    full_build = time.perf_counter() - t0
    print(f"initial build: {full_build:.2f}s\n")

    rush = with_rush_hour(free_flow)
    t0 = time.perf_counter()
    rush_index = index.with_weights(rush)
    refresh = time.perf_counter() - t0
    print(
        f"traffic refresh: {refresh:.3f}s "
        f"({full_build / max(refresh, 1e-9):.0f}x faster than a rebuild)\n"
    )

    rng = random.Random(4)
    print(f"{'od pair':>12} {'free-flow':>10} {'rush hour':>10} {'delay':>7}")
    for _ in range(5):
        s, t = rng.randrange(free_flow.n), rng.randrange(free_flow.n)
        before = index.distance(s, t)
        after = rush_index.distance(s, t)
        assert abs(after - distance_query(rush, s, t)) < 1e-9 * max(1, after)
        print(
            f"{f'{s}->{t}':>12} {before:>10.1f} {after:>10.1f} "
            f"{after / before - 1:>6.0%}"
        )

    print("\nall rush-hour answers verified against Dijkstra on the new metric")


if __name__ == "__main__":
    main()
