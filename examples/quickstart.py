"""Quickstart: index a road network and answer queries.

Run with::

    python examples/quickstart.py

Builds a synthetic road network (towns joined by highways), indexes it
with the Arterial Hierarchy, and answers a few distance and shortest
path queries, cross-checking each against plain Dijkstra.
"""

from repro.core import AHIndex
from repro.datasets import towns_and_highways
from repro.graph import distance_query


def main() -> None:
    # 1. A road network: 8 towns, ~800 nodes, travel-time weights.
    graph = towns_and_highways(8, seed=42)
    print(f"network: {graph.n} nodes, {graph.m} directed edges")

    # 2. Preprocess once...
    index = AHIndex(graph)
    print(index.describe())
    print(f"build phases (s): { {k: round(v, 2) for k, v in index.build_times.items()} }")

    # 3. ...then query as often as you like.
    pairs = [(0, graph.n - 1), (5, graph.n // 2), (17, 3)]
    for s, t in pairs:
        d = index.distance(s, t)
        check = distance_query(graph, s, t)
        assert abs(d - check) < 1e-9 * max(1.0, check)
        path = index.shortest_path(s, t)
        path.validate(graph)
        print(
            f"query {s} -> {t}: distance = {d:.2f} "
            f"({path.hop_count} road segments), verified against Dijkstra"
        )


if __name__ == "__main__":
    main()
