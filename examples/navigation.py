"""Turn-by-turn navigation from shortest path queries.

Demonstrates the *shortest path* half of the paper's API: the unpacked
node sequence, combined with node coordinates, yields driving directions
(headings, turns and leg lengths).

Run with::

    python examples/navigation.py
"""

import math

from repro.core import AHIndex
from repro.datasets import grid_city
from repro.spatial import euclidean_distance

_COMPASS = ["east", "north-east", "north", "north-west", "west", "south-west", "south", "south-east"]


def heading(a, b) -> float:
    """Bearing of the segment a->b in degrees, counter-clockwise from east."""
    return math.degrees(math.atan2(b[1] - a[1], b[0] - a[0])) % 360.0


def compass(angle: float) -> str:
    """Nearest compass direction name for an angle in degrees."""
    return _COMPASS[int(((angle + 22.5) % 360) // 45)]


def turn_instruction(prev_angle: float, next_angle: float) -> str:
    """Classify the turn between two headings."""
    delta = (next_angle - prev_angle + 180) % 360 - 180
    if abs(delta) < 30:
        return "continue straight"
    if delta > 120:
        return "sharp left"
    if delta > 0:
        return "turn left"
    if delta < -120:
        return "sharp right"
    return "turn right"


def main() -> None:
    graph = grid_city(16, 16, seed=4)
    index = AHIndex(graph)

    source, target = 0, graph.n - 1
    route = index.shortest_path(source, target)
    route.validate(graph)
    print(
        f"route {source} -> {target}: {route.hop_count} segments, "
        f"travel time {route.length:.1f}\n"
    )

    # Merge consecutive same-heading segments into legs, then describe.
    coords = [graph.coord(u) for u in route.nodes]
    legs = []  # (angle, length)
    for a, b in zip(coords, coords[1:]):
        angle = heading(a, b)
        length = euclidean_distance(a, b)
        if legs and abs(((angle - legs[-1][0]) + 180) % 360 - 180) < 15:
            legs[-1] = (legs[-1][0], legs[-1][1] + length)
        else:
            legs.append((angle, length))

    print(f"1. head {compass(legs[0][0])} for {legs[0][1]:.0f} m")
    step = 2
    for (prev, _), (nxt, dist) in zip(legs, legs[1:]):
        print(
            f"{step}. {turn_instruction(prev, nxt)}, "
            f"then {compass(nxt)} for {dist:.0f} m"
        )
        step += 1
    print(f"{step}. arrive at node {target}")


if __name__ == "__main__":
    main()
