"""Surviving a scripted outage: the PR 8 resilience layer end to end.

Run with::

    python examples/faults_demo.py

The worker tier promises two things under failure: every answered
request is **bit-identical** to the direct planner, and every
unanswerable one fails **typed** — never a hang, never a wrong answer.
This demo drives one serving loop through a scripted outage and shows
each defense earning its keep:

1. a :class:`repro.serve.FaultPlan` scripts the outage — a worker is
   killed mid-batch, another stalls (stuck-but-alive), a third reply
   is corrupted after its CRC was computed — deterministically, by
   (dispatch, slot), so the same run replays byte-for-byte;
2. the pool heals every one of them (watchdog -> respawn -> retry with
   backoff; CRC-verified reply lanes) while a parity check against the
   direct :class:`~repro.baselines.base.QueryPlanner` runs on every
   answer;
3. hedged re-dispatch races an idle replica against a straggler —
   first answer wins, the loser is drained later and bit-compared;
4. a tripped-open :class:`~repro.serve.CircuitBreaker` quarantines
   every slot and the pool degrades to its in-dispatcher planner
   fallback — slower, never wrong — then recovers via half-open
   probes;
5. a torn bundle file is refused up front with a typed
   :class:`~repro.core.serialize.BundleCorrupted` naming the damaged
   section, instead of booting a worker on garbage.
"""

import os
import tempfile
import time

from repro.baselines import HubLabelIndex
from repro.baselines.base import QueryPlanner
from repro.core.serialize import BundleCorrupted, bundle_bytes, load_bundle
from repro.datasets import towns_and_highways
from repro.serve import CircuitBreaker, DistanceRequest, FaultPlan, WorkerPool
from repro.serve import faults

WORKERS = 2


def main() -> None:
    graph = towns_and_highways(6, seed=7)
    index = HubLabelIndex(graph)
    blob = bundle_bytes(index)
    planner = QueryPlanner(index)
    reqs = [DistanceRequest(i, graph.n - 1 - i) for i in range(24)]
    want = planner.execute(reqs)
    print(f"network: {graph.n} nodes / {graph.m} edges; "
          f"bundle: {len(blob)} bytes (CRC trailer included)")

    print("\n[1] script the outage: kill, stall, corrupt — by (dispatch, slot)")
    plan = FaultPlan.scripted({
        (0, 0): faults.kill(),        # dies mid-batch
        (1, 1): faults.stall(0.6),    # stuck-but-alive: only a watchdog sees it
        (2, 0): faults.corrupt(),     # reply byte flipped after CRC
    })
    print(f"   {len(plan)} faults scheduled; same schedule every run")

    print("\n[2] the pool heals all three; every answer parity-checked")
    pool = WorkerPool(blob, workers=WORKERS, recv_timeout_s=0.25,
                      fault_plan=plan)
    try:
        for dispatch in range(3):
            t0 = time.perf_counter()
            got = pool.execute(reqs)
            ms = (time.perf_counter() - t0) * 1e3
            assert got == want, "answers diverged from the direct planner?!"
            print(f"   dispatch {dispatch}: bit-identical answers in {ms:.1f}ms")
        res = pool.stats()["resilience"]
        print(f"   injected={plan.injected}  watchdog timeouts="
              f"{res['watchdog_timeouts']}  retries={res['retry']['attempts']}  "
              f"reply CRC failures={pool.stats()['reply_path']['crc_failures']}")
    finally:
        pool.close()

    print("\n[3] hedging: race an idle replica against a straggler")
    plan = FaultPlan.scripted({(0, 1): faults.stall(0.5)})
    pool = WorkerPool(blob, workers=WORKERS, hedge_after_s=0.05,
                      hedge_grace_s=5.0, fault_plan=plan)
    try:
        t0 = time.perf_counter()
        got = pool.execute(reqs)
        ms = (time.perf_counter() - t0) * 1e3
        assert got == want
        print(f"   answered in {ms:.1f}ms despite a 500ms straggler "
              "(first answer wins)")
        time.sleep(0.6)               # let the loser finish, inside the grace
        pool.execute(reqs)            # the sweep drains + bit-compares it
        h = pool.stats()["resilience"]["hedge"]
        print(f"   hedges={h['hedges']}  wins={h['wins']}  "
              f"duplicate parity checks={h['parity_checks']}  "
              f"mismatches={h['mismatches']}")
    finally:
        pool.close()

    print("\n[4] breaker open everywhere: degraded planner fallback, then recovery")
    breaker = CircuitBreaker(WORKERS, threshold=1, cooldown_s=0.5)
    pool = WorkerPool(blob, workers=WORKERS, breaker=breaker)
    try:
        for slot in range(WORKERS):
            breaker.record_failure(slot)   # trip every slot open
        assert pool.execute(reqs) == want  # served by the fallback planner
        fb = pool.stats()["resilience"]["breaker"]["fallback_batches"]
        print(f"   all slots quarantined -> {fb} batch(es) answered by the "
              "in-dispatcher planner, still bit-identical")
        time.sleep(0.6)                    # cooldown -> half-open probes
        assert pool.execute(reqs) == want
        states = [s["state"] for s in
                  pool.stats()["resilience"]["breaker"]["per_slot"]]
        print(f"   after cooldown + successful probes: breaker states={states}")
    finally:
        pool.close()

    print("\n[5] a torn bundle is refused, typed, before any worker boots")
    path = os.path.join(tempfile.mkdtemp(), "demo.bundle")
    with open(path, "wb") as fh:
        fh.write(blob)
    torn = faults.flipped_copy(path, path + ".torn")
    try:
        load_bundle(torn)
        raise SystemExit("torn bundle loaded?!")
    except BundleCorrupted as exc:
        print(f"   BundleCorrupted: section={exc.section!r}: {exc.detail}")
    print("   (the pristine bundle still loads and answers identically)")
    _, engine = load_bundle(path)
    assert QueryPlanner(engine).execute(reqs) == want
    print("\nevery fault detected, typed, healed — zero wrong answers")


if __name__ == "__main__":
    main()
