"""Distance matrices with hub labels: the batched query surface.

Run with::

    python examples/distance_matrix.py

A dispatch / ETA workload does not ask one question at a time — it asks
for a whole travel-time table (every driver to every open order).  This
example builds a hub-label index and answers a many-to-many matrix three
ways, from slowest to fastest:

1. point-to-point queries in a double loop (what a naive client does),
2. the generic batched fallback every engine inherits from
   :class:`repro.baselines.base.QueryEngine` (one Dijkstra per source),
3. the HL fast path (target labels inverted once, then one forward-label
   scan per source),

and cross-checks all three against each other.  The table itself is
issued through the :class:`~repro.baselines.QueryPlanner` — the layer a
serving front-end speaks — which also demonstrates request *merging*:
per-driver one-to-many rows over the same order list collapse into a
single table kernel call.
"""

import random
import time

from repro.baselines import (
    DijkstraEngine,
    HubLabelIndex,
    OneToManyRequest,
    QueryEngine,
    QueryPlanner,
    TableRequest,
)
from repro.datasets import towns_and_highways


def main() -> None:
    graph = towns_and_highways(8, seed=42)
    print(f"network: {graph.n} nodes, {graph.m} directed edges")

    t0 = time.perf_counter()
    hl = HubLabelIndex(graph)
    print(
        f"hub labels built in {time.perf_counter() - t0:.2f}s "
        f"({hl.average_label_size():.1f} entries per node per direction)"
    )

    rng = random.Random(7)
    drivers = [rng.randrange(graph.n) for _ in range(50)]
    orders = [rng.randrange(graph.n) for _ in range(50)]

    # 1. The naive client: one point-to-point query per cell.
    dijkstra = DijkstraEngine(graph)
    t0 = time.perf_counter()
    naive = [[dijkstra.distance(s, t) for t in orders] for s in drivers]
    naive_s = time.perf_counter() - t0

    # 2. Every engine's inherited batch surface: one Dijkstra per source.
    t0 = time.perf_counter()
    fallback = QueryEngine.distance_table(dijkstra, drivers, orders)
    fallback_s = time.perf_counter() - t0

    # 3. The HL fast path, issued the way the serving layer issues it: a
    #    TableRequest through the planner (routes to the co-occurrence
    #    join kernel; the target-side inversion is memoized per order list).
    planner = QueryPlanner(hl)
    t0 = time.perf_counter()
    [table] = planner.execute([TableRequest(drivers, orders)])
    table_s = time.perf_counter() - t0

    for row_a, row_b, row_c in zip(naive, fallback, table):
        for a, b, c in zip(row_a, row_b, row_c):
            if a == b == c:
                continue  # also covers unreachable cells (inf == inf)
            assert abs(a - b) < 1e-6 and abs(a - c) < 1e-6

    cells = len(drivers) * len(orders)
    print(f"\n{len(drivers)}x{len(orders)} travel-time table ({cells} cells):")
    print(f"  point-to-point loop : {naive_s * 1e3:8.1f} ms")
    print(f"  batched fallback    : {fallback_s * 1e3:8.1f} ms  "
          f"({naive_s / fallback_s:.1f}x vs loop)")
    print(f"  HL fast path        : {table_s * 1e3:8.1f} ms  "
          f"({fallback_s / table_s:.1f}x vs fallback, "
          f"{naive_s / table_s:.0f}x vs loop)")

    # one_to_many answers the single-driver case the same way — and when
    # many drivers ask about the *same* order list concurrently (the
    # dispatch pattern), the planner merges their rows into one table
    # kernel call instead of answering row by row.
    eta = hl.one_to_many(drivers[0], orders)
    best = min(range(len(orders)), key=eta.__getitem__)
    print(
        f"\ndriver at node {drivers[0]}: nearest of {len(orders)} orders is "
        f"node {orders[best]} at network distance {eta[best]:.1f}"
    )

    rows = planner.execute([OneToManyRequest(d, orders) for d in drivers])
    for row_a, row_b in zip(table, rows):
        assert row_a == row_b
    stats = planner.stats()
    print(
        f"planner: {stats['merged_one_to_many']} per-driver rows merged into "
        f"{stats['kernel_distance_table'] - 1} extra table call(s); target "
        f"inversion reused {hl.target_inversion_stats()['hits']} time(s)"
    )


if __name__ == "__main__":
    main()
