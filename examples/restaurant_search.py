"""The paper's motivating scenario (Section 1): restaurant search.

A map service user at location ``u`` asks for nearby Italian
restaurants.  The provider:

1. retrieves candidate restaurants near ``u`` (here: random POIs),
2. answers a *distance query* from ``u`` to each candidate to rank them
   by actual driving time rather than straight-line distance,
3. answers a *shortest path query* to the chosen restaurant to produce
   driving directions.

Step 2 is issued the way a service front-end issues it — as one batch
of :class:`~repro.baselines.DistanceRequest`\\ s through the
engine-agnostic :class:`~repro.baselines.QueryPlanner` (the same layer
:mod:`repro.serve` coalesces concurrent users through), rather than a
hand-written loop.  The planner works over *any* engine; AH declares no
bit-exact batch primitive (``batch_capabilities()``), so the planner
routes every request to the paper's AH point query — grouping never
changes which kernel an engine is willing to vouch for.

Run with::

    python examples/restaurant_search.py
"""

import random

from repro.baselines import DistanceRequest, QueryPlanner
from repro.core import AHIndex
from repro.datasets import towns_and_highways
from repro.spatial import euclidean_distance


def main() -> None:
    graph = towns_and_highways(6, seed=7)
    index = AHIndex(graph)
    planner = QueryPlanner(index)
    rng = random.Random(3)

    user = rng.randrange(graph.n)
    restaurants = rng.sample(range(graph.n), 12)
    print(f"user at node {user}; {len(restaurants)} candidate restaurants\n")

    # Rank by *network* distance (travel time), not Euclidean distance —
    # the whole point of the paper's distance queries.  One planner batch
    # answers every candidate (each via an AH distance query); a serving
    # deployment would submit the same requests to repro.serve.Server.
    travel_times = planner.execute(
        [DistanceRequest(user, r) for r in restaurants]
    )
    ranked = []
    for r, travel_time in zip(restaurants, travel_times):
        crow_flies = euclidean_distance(graph.coord(user), graph.coord(r))
        ranked.append((travel_time, crow_flies, r))
    ranked.sort()

    print(f"{'rank':>4} {'node':>6} {'travel time':>12} {'straight line':>14}")
    for i, (tt, crow, r) in enumerate(ranked[:5], start=1):
        print(f"{i:>4} {r:>6} {tt:>12.1f} {crow:>14.1f}")

    # The Euclidean ranking can disagree with the network ranking — that
    # disagreement is why services need real distance queries.
    euclid_best = min(ranked, key=lambda row: row[1])[2]
    network_best = ranked[0][2]
    if euclid_best != network_best:
        print(
            f"\nnote: straight-line ranking would have suggested node "
            f"{euclid_best}, but the fastest to reach is {network_best}"
        )

    choice = ranked[0][2]
    route = index.shortest_path(user, choice)
    route.validate(graph)
    print(
        f"\ndirections to node {choice}: {route.hop_count} segments, "
        f"total travel time {route.length:.1f}"
    )
    preview = " -> ".join(str(u) for u in route.nodes[:8])
    print(f"route preview: {preview}{' -> ...' if route.hop_count > 7 else ''}")


if __name__ == "__main__":
    main()
