"""Scaling out: the multi-process worker tier end to end.

Run with::

    python examples/scale_out.py

One Python process tops out at one core (and one GIL).  This demo shows
the PR 5 worker tier taking the same serving stack past that:

1. an index is built once and **serialized to a bundle** — the shared
   substrate every worker boots from (here an mmap'd file, so all
   replicas share one page-cache copy of the read-only label columns);
2. a :class:`repro.serve.WorkerPool` spawns worker processes, each
   loading its own engine replica from the bundle, and the familiar
   :class:`repro.serve.Server` dispatches coalesced batches across them
   — answers stay bit-identical to a single-process server;
3. ``stats()["pool"]`` shows the worker-tier picture: per-worker batch
   counts, busy vs idle seconds, dispatch imbalance, respawns;
4. a worker is **killed mid-service** and the pool respawns it from the
   bundle — clients never notice;
5. the same worker substrate rebuilds the hub labels **in parallel**
   (`build_workers=`), byte-identical to the serial build.

On a multicore box steps 2-3 are where the throughput multiplies; on a
single-core container the demo still runs (the tier is correct
anywhere), it just can't outrun the one core it shares.
"""

import asyncio
import os
import random
import signal
import tempfile
import time

from repro import backend
from repro.baselines import HubLabelIndex
from repro.core.serialize import bundle_bytes, save_bundle
from repro.datasets import towns_and_highways
from repro.serve import DistanceRequest, OneToManyRequest, Server, WorkerPool

CLIENTS = 120
ROUNDS = 3
WORKERS = 3


async def client_session(server, rng, graph, order_pool, results):
    for _ in range(ROUNDS):
        if rng.random() < 0.7:
            driver = rng.randrange(graph.n)
            etas = await server.submit(OneToManyRequest(driver, order_pool))
            results.append(min(etas))
        else:
            a, b = rng.randrange(16), rng.randrange(16)
            results.append(await server.submit(DistanceRequest(a, b)))


async def serve_through_pool(pool, graph, order_pool, kill_one_worker=False):
    rng = random.Random(11)
    results = []
    async with Server(None, pool=pool) as server:
        tasks = [
            client_session(server, random.Random(1000 + i), graph, order_pool, results)
            for i in range(CLIENTS)
        ]
        if kill_one_worker:
            victim = pool.handles[0].pid
            os.kill(victim, signal.SIGKILL)
            print(f"   (killed worker pid {victim} mid-service)")
        t0 = time.perf_counter()
        await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - t0
        stats = server.stats()
    return elapsed, sorted(results), stats


def main() -> None:
    graph = towns_and_highways(6, seed=7)
    print(f"network: {graph.n} nodes / {graph.m} edges")
    # Which kernel tier answers every batch below (native C kernels when
    # the extension is built, numpy, or the pure-python scans) — workers
    # inherit the same tier through the bundle boot.
    print(f"backend: {backend.describe()['backend']}")

    print("\n[1] build once, bundle once")
    t0 = time.perf_counter()
    index = HubLabelIndex(graph)
    print(f"   serial build: {time.perf_counter() - t0:.3f}s, "
          f"{index.label_count} label entries")
    caps = index.batch_capabilities()
    print(f"   batch kernels: one_to_many={caps.one_to_many}, "
          f"distance_table={caps.distance_table}")
    bundle_path = os.path.join(tempfile.mkdtemp(), "demo.bundle")
    save_bundle(index, bundle_path)
    print(f"   bundle: {os.path.getsize(bundle_path)} bytes -> {bundle_path}")

    print(f"\n[2] a {WORKERS}-worker pool serves the same workload")
    rng = random.Random(3)
    order_pool = tuple(rng.randrange(graph.n) for _ in range(30))
    pool = WorkerPool(bundle_path, workers=WORKERS, cache=True)
    try:
        elapsed, answers, stats = asyncio.run(
            serve_through_pool(pool, graph, order_pool)
        )
        requests = CLIENTS * ROUNDS
        print(f"   {requests} requests in {elapsed:.3f}s "
              f"({requests / elapsed:,.0f} req/s), tier={stats['policy']['tier']}")

        print("\n[3] the worker-tier stats a dashboard wants")
        tier = stats["pool"]
        print(f"   dispatches={tier['dispatches']}  "
              f"imbalance={tier['mean_dispatch_imbalance']}  "
              f"cache hit rate={tier['cache']['hit_rate']:.2f}")
        d = tier["dispatch"]
        print(f"   dispatch breakdown: pack={d['pack_s']:.4f}s "
              f"send={d['send_s']:.4f}s compute={d['compute_s']:.4f}s "
              f"merge={d['merge_s']:.4f}s")
        req = tier["request_path"]
        print(f"   request path ({req['transport']}): "
              f"{req['pipe_bytes']} pipe bytes / {req['shm_bytes']} shm "
              f"bytes ({req['pickled_batches']} pickled batches)")
        for i, w in enumerate(tier["per_worker"]):
            print(f"   worker {i}: pid={w['pid']} batches={w['batches']} "
                  f"requests={w['requests']} busy={w['busy_s']:.3f}s "
                  f"idle={w['idle_s']:.3f}s")

        print("\n[4] kill a worker mid-service: respawned from the bundle")
        elapsed2, answers2, stats2 = asyncio.run(
            serve_through_pool(pool, graph, order_pool, kill_one_worker=True)
        )
        assert answers2 == answers, "answers changed after the crash?!"
        print(f"   all {CLIENTS * ROUNDS} answers identical; "
              f"respawns={stats2['pool']['respawns']}, clients saw nothing")
    finally:
        pool.close()

    print(f"\n[5] parallel label build ({WORKERS} workers), byte-identical")
    t0 = time.perf_counter()
    parallel = HubLabelIndex(graph, build_workers=WORKERS)
    t_par = time.perf_counter() - t0
    assert bundle_bytes(parallel) == bundle_bytes(index)
    info = parallel.build_info
    sync = info["sync"]
    print(f"   {t_par:.3f}s over {info['bands']} rank bands "
          f"(largest {info['largest_band']} nodes) — "
          f"bundle bytes identical to the serial build")
    print(f"   pipelined sync: {sync['shm_bytes']} shm bytes / "
          f"{sync['pipe_bytes']} pipe bytes, "
          f"overlap fraction {sync['overlap_fraction']:.2f}")


if __name__ == "__main__":
    main()
