"""Figure 3 — arterial dimension measurement benchmark.

Benchmarks the exact per-region arterial computation and asserts the
figure's qualitative claim: the arterial dimension of road-like networks
is a small constant at every grid resolution (the paper reports max 97,
typically < 60, on networks up to 24M nodes).
"""

import pytest

from repro.bench.experiments import fig3
from repro.core.arterial import arterial_dimension_stats, long_edges, region_arterial_edges
from repro.spatial import GridPyramid, NodeGrid, nonempty_regions

from conftest import get_graph


@pytest.fixture(scope="module")
def de_setup():
    g = get_graph("DE")
    pyramid = GridPyramid.from_graph(g)
    return g, NodeGrid(g, pyramid)


def test_fig3_single_region_exact(benchmark, de_setup):
    """Per-region cost of the exact Definition-1 computation."""
    g, ng = de_setup
    level = max(1, ng.pyramid.h - 3)
    regions = list(nonempty_regions(ng, level))
    fly = long_edges(g, ng, level)

    def run():
        total = 0
        for region in regions[:20]:
            total += len(
                region_arterial_edges(g, ng, region, fly_edges=fly)
            )
        return total

    benchmark(run)


def test_fig3_full_sweep_bounded(benchmark):
    """Full resolution sweep on DE; asserts Assumption 1's shape."""
    g = get_graph("DE")
    stats = benchmark.pedantic(
        lambda: arterial_dimension_stats(g, max_region_nodes=2500),
        rounds=1,
        iterations=1,
    )
    assert stats
    for s in stats:
        # The paper's networks stay under ~100 arterial edges per region;
        # our scaled networks must exhibit the same boundedness.
        assert s.max <= 120, f"resolution r={s.resolution}: max {s.max}"
        assert s.mean <= 60


def test_fig3_dimension_independent_of_n():
    """The λ estimate must not grow with the dataset (Figure 3's point:
    8 datasets spanning 128x in size share the same small bound)."""
    maxima = {}
    for name in ("DE", "NH"):
        res = fig3.run_graph(get_graph(name), name, mode="exact", max_region_nodes=2500)
        maxima[name] = res.overall_max()
    assert maxima["NH"] <= 4 * max(1, maxima["DE"])


def test_fig3_reduced_mode_tracks_exact():
    """The scalable pseudo-arterial counts stay within Lemma 9's blowup
    (<= 50λ²-ish) of the exact counts."""
    g = get_graph("DE")
    exact = fig3.run_graph(g, "DE", mode="exact", max_region_nodes=2500)
    reduced = fig3.run_graph(g, "DE", mode="reduced")
    assert reduced.overall_max() <= 50 * max(1, exact.overall_max())
