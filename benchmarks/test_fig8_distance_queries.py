"""Figure 8 — distance query latency per engine and distance regime.

The paper's panels plot mean query time over Q1..Q10 for AH, CH, SILC
and Dijkstra on each dataset.  Here every (engine, regime) cell is a
pytest benchmark over a fixed query batch; the shape assertions encode
the figure's qualitative findings:

* Dijkstra degrades steeply with distance and loses by orders of
  magnitude on the long-range buckets;
* the indexed engines stay near-flat across regimes;
* AH is competitive with CH and wins on the long-range buckets
  (the paper's headline: >50% faster on Q8-Q10).
"""

import pytest

from conftest import BENCH_DATASETS, get_engine, long_range_pairs, mid_range_pairs

ENGINES = ("Dijkstra", "SILC", "CH", "AH")


def _distance_batch(engine, pairs):
    distance = engine.distance
    def run():
        total = 0.0
        for s, t in pairs:
            total += distance(s, t)
        return total
    return run


@pytest.mark.parametrize("dataset_name", BENCH_DATASETS)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_fig8_long_range(benchmark, engine_name, dataset_name):
    """The paper's Q8-Q10 regime (distant endpoints)."""
    engine = get_engine(engine_name, dataset_name)
    pairs = long_range_pairs(dataset_name)
    benchmark.group = f"fig8-long-{dataset_name}"
    benchmark(_distance_batch(engine, pairs))


@pytest.mark.parametrize("dataset_name", BENCH_DATASETS)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_fig8_mid_range(benchmark, engine_name, dataset_name):
    """The paper's Q5-Q6 regime (regional queries)."""
    engine = get_engine(engine_name, dataset_name)
    pairs = mid_range_pairs(dataset_name)
    benchmark.group = f"fig8-mid-{dataset_name}"
    benchmark(_distance_batch(engine, pairs))


def _mean_us(engine, pairs, repeats=5):
    import time

    distance = engine.distance
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for s, t in pairs:
            distance(s, t)
        best = min(best, time.perf_counter() - t0)
    return best / len(pairs) * 1e6


@pytest.mark.parametrize("dataset_name", BENCH_DATASETS)
def test_fig8_shape_dijkstra_loses_long_range(dataset_name):
    """Indexed methods beat Dijkstra decisively on distant pairs."""
    pairs = long_range_pairs(dataset_name)
    dij = _mean_us(get_engine("Dijkstra", dataset_name), pairs)
    ch = _mean_us(get_engine("CH", dataset_name), pairs)
    ah = _mean_us(get_engine("AH", dataset_name), pairs)
    assert ch < dij / 2
    assert ah < dij / 2


@pytest.mark.parametrize("dataset_name", BENCH_DATASETS)
def test_fig8_shape_ah_competitive_with_ch(dataset_name):
    """AH (with elevating edges, §4.3) matches or beats CH on the
    long-range buckets — the paper's headline comparison."""
    pairs = long_range_pairs(dataset_name)
    ch = _mean_us(get_engine("CH", dataset_name), pairs)
    ah = _mean_us(get_engine("AH", dataset_name, elevating=True), pairs)
    # Allow slack for timer noise; the paper reports AH ~2x faster.
    assert ah <= ch * 1.5, f"AH {ah:.1f}us vs CH {ch:.1f}us"


@pytest.mark.parametrize("dataset_name", BENCH_DATASETS)
def test_fig8_indexed_engines_flat_across_regimes(dataset_name):
    """CH/AH latency grows far slower with distance than Dijkstra's."""
    mid = mid_range_pairs(dataset_name)
    long = long_range_pairs(dataset_name)
    for engine_name in ("CH", "AH"):
        engine = get_engine(engine_name, dataset_name)
        growth = _mean_us(engine, long) / max(_mean_us(engine, mid), 1e-9)
        dij = get_engine("Dijkstra", dataset_name)
        dij_growth = _mean_us(dij, long) / max(_mean_us(dij, mid), 1e-9)
        assert growth < max(4.0, dij_growth), (
            f"{engine_name} grew {growth:.1f}x vs Dijkstra {dij_growth:.1f}x"
        )
