"""Shared session-scoped resources for the benchmark modules.

Index construction dominates wall time (AH's level assignment is the
paper's acknowledged heavyweight), so every dataset/engine/workload pair
is built exactly once per session and reused across figure benchmarks.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ENGINE_FACTORIES
from repro.datasets import dataset, generate_workloads

#: Datasets benchmarked by default: the suite's small end, where a full
#: pure-Python sweep (including SILC and FC) finishes in minutes.  The
#: CLI harness (python -m repro.bench) scales the same experiments up.
BENCH_DATASETS = ("DE", "NH")

_ENGINES: dict = {}
_WORKLOADS: dict = {}


def get_graph(name: str):
    """Suite dataset (process-cached by repro.datasets)."""
    return dataset(name)


def get_engine(name: str, dataset_name: str, **kwargs):
    """Session-cached engine instance."""
    key = (name, dataset_name, tuple(sorted(kwargs.items())))
    if key not in _ENGINES:
        _ENGINES[key] = ENGINE_FACTORIES[name](get_graph(dataset_name), **kwargs)
    return _ENGINES[key]


def get_workloads(dataset_name: str, queries_per_bucket: int = 25):
    """Session-cached Q1..Q10 workloads."""
    key = (dataset_name, queries_per_bucket)
    if key not in _WORKLOADS:
        _WORKLOADS[key] = generate_workloads(
            get_graph(dataset_name), queries_per_bucket=queries_per_bucket, seed=17
        )
    return _WORKLOADS[key]


def long_range_pairs(dataset_name: str, count: int = 25):
    """Pairs from the top non-empty buckets (the paper's Q8-Q10 regime)."""
    workloads = get_workloads(dataset_name)
    pairs = []
    for b in reversed(workloads.non_empty_buckets()):
        pairs.extend(workloads.bucket(b))
        if len(pairs) >= count:
            break
    return pairs[:count]


def mid_range_pairs(dataset_name: str, count: int = 25):
    """Pairs from the middle of the distance spectrum."""
    workloads = get_workloads(dataset_name)
    buckets = workloads.non_empty_buckets()
    mid = buckets[len(buckets) // 2]
    pairs = list(workloads.bucket(mid))
    return pairs[:count]


@pytest.fixture(scope="session", params=BENCH_DATASETS)
def bench_dataset(request):
    """Parametrised dataset name shared by the figure benchmarks."""
    return request.param
