"""Table 2 — dataset generation benchmark and characteristics audit."""

import pytest

from repro.bench.experiments import table2
from repro.datasets import dataset, dataset_spec
from repro.graph import analyze_network


@pytest.mark.parametrize("name", ("DE", "NH", "ME"))
def test_table2_generation(benchmark, name):
    """Time to synthesise a suite dataset from scratch."""
    benchmark.group = "table2-generate"
    benchmark.pedantic(
        lambda: dataset(name, use_cache=False), rounds=1, iterations=1
    )


def test_table2_ladder_monotone():
    """Generated sizes follow the paper's increasing ladder."""
    sizes = [dataset(name).n for name in ("DE", "NH", "ME", "CO")]
    assert sizes == sorted(sizes)
    assert sizes[-1] > 3 * sizes[0]


def test_table2_every_dataset_valid():
    """Strong connectivity and bounded degree across the bench ladder.

    Town-centre interchanges accumulate highway spokes on top of their
    grid edges, so the bound is 20 (in+out); real road networks rarely
    exceed undirected degree 8-10, which this corresponds to."""
    for name in ("DE", "NH", "ME", "CO"):
        report = analyze_network(dataset(name))
        assert report.strongly_connected, name
        assert report.max_degree <= 20, name


def test_table2_edge_node_ratio_matches_paper_regime():
    """The paper's datasets have m/n ≈ 2.3-2.5; ours must be road-like
    too (well above tree-like 1.0, below dense 4.0)."""
    for name in ("DE", "NH", "ME"):
        g = dataset(name)
        spec = dataset_spec(name)
        paper_ratio = spec.paper_edges / spec.paper_nodes
        ours = g.m / g.n
        assert 0.5 * paper_ratio <= ours <= 2.0 * paper_ratio


def test_table2_render_contains_all_rows():
    rows = table2.run(["DE", "NH"])
    text = table2.render(rows)
    assert "DE" in text and "NH" in text and "Delaware" in text
