"""Perf guard for the hub-label oracle (PR 2).

Times ``HubLabelIndex.distance`` against ``CHEngine.distance`` on the
``NH`` suite dataset — both engines share one contraction hierarchy, so
the comparison isolates *query scheme* (label merge-join vs
bidirectional upward search) — and times the batched
``distance_table`` fast path against the base-class Dijkstra fallback
on a 100x100 matrix.  Results go to ``BENCH_hl.json`` at the repo root
so future PRs can track the trajectory.

Methodology
-----------
* Queries follow the paper's Figure-8 methodology: one batch per
  distance bucket (on NH the non-empty buckets are exactly Q2..Q10).
  CH query time grows with distance (bigger upward search spaces);
  HL's merge-join cost is bounded by label size, so the win widens
  toward Q10 — the recorded per-bucket ratios document that shape.
* Exactness is asserted against plain Dijkstra before any clock starts;
  a fast wrong oracle is worthless.
* ``--check`` runs the build + exactness phase only and writes a
  timing-free JSON — what CI runs, immune to noisy-runner flake, while
  still proving the index builds and answers correctly.

Run directly (``python benchmarks/test_hl_speed.py``) to refresh
``BENCH_hl.json``; under pytest the same measurement doubles as a
regression guard with deliberately conservative thresholds.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from repro.baselines import CHEngine, HubLabelIndex, QueryEngine
from repro.datasets import dataset, generate_workloads
from repro.graph.traversal import distance_query

INF = float("inf")
DATASET = "NH"
REPEATS = 7
TABLE_SIDE = 100


def _mean_us(fn, pairs, repeats=REPEATS, min_sample_s=0.005):
    """Best-of-``repeats`` mean latency, with each timed sample stretched
    to at least ``min_sample_s`` by cycling the batch (2 µs queries over
    a 25-pair bucket are otherwise pure scheduler noise)."""
    t0 = time.perf_counter()
    for s, t in pairs:
        fn(s, t)
    once = time.perf_counter() - t0
    inner = 1 if once >= min_sample_s else int(min_sample_s / max(once, 1e-9)) + 1
    best = INF
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        for _ in range(inner):
            for s, t in pairs:
                fn(s, t)
        best = min(best, (time.perf_counter() - t0) / inner)
    return best / len(pairs) * 1e6


def build_and_verify():
    """Build CH + HL on one shared hierarchy; assert HL answers exactly."""
    graph = dataset(DATASET)
    workloads = generate_workloads(graph, queries_per_bucket=25, seed=17)

    t0 = time.perf_counter()
    ch = CHEngine(graph)
    ch_build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    hl = HubLabelIndex(graph, contraction=ch._res)
    hl_label_s = time.perf_counter() - t0

    checked = 0
    for b in workloads.non_empty_buckets():
        for s, t in list(workloads.bucket(b))[:10]:
            want = distance_query(graph, s, t)
            got = hl.distance(s, t)
            assert abs(got - want) <= 1e-9 * max(1.0, want), (s, t, got, want)
            checked += 1
    return graph, workloads, ch, hl, {
        "dataset": DATASET,
        "n": graph.n,
        "m": graph.m,
        "ch_build_s": round(ch_build_s, 3),
        "hl_label_s": round(hl_label_s, 3),
        "avg_label_entries": round(hl.average_label_size(), 2),
        "index_size": hl.index_size(),
        "exactness_checked_pairs": checked,
    }


def run_benchmark():
    graph, workloads, ch, hl, result = build_and_verify()

    buckets = {}
    for b in workloads.non_empty_buckets():
        pairs = list(workloads.bucket(b))
        # Interleave the two engines per bucket so drift hits both.
        ch_us = _mean_us(ch.distance, pairs)
        hl_us = _mean_us(hl.distance, pairs)
        buckets[f"Q{b}"] = {
            "queries": len(pairs),
            "ch_us": round(ch_us, 3),
            "hl_us": round(hl_us, 3),
            "speedup": round(ch_us / hl_us, 3),
        }

    # Batched surface: 100x100 table, HL fast path vs base fallback
    # (one truncated Dijkstra per source).
    rng = random.Random(23)
    sources = [rng.randrange(graph.n) for _ in range(TABLE_SIDE)]
    targets = [rng.randrange(graph.n) for _ in range(TABLE_SIDE)]
    t0 = time.perf_counter()
    fast = hl.distance_table(sources, targets)
    fast_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fallback = QueryEngine.distance_table(hl, sources, targets)
    fallback_s = time.perf_counter() - t0
    for fast_row, fallback_row in zip(fast, fallback):
        for a, b in zip(fast_row, fallback_row):
            if a == b:
                continue  # also covers inf == inf
            assert abs(a - b) <= 1e-9 * max(1.0, b), (a, b)

    speedups = [rec["speedup"] for rec in buckets.values()]
    result.update(
        {
            "method": "shared contraction hierarchy; per-bucket interleaved "
            "A/B; best-of-%d batch means" % REPEATS,
            "headline": {
                "min_bucket_speedup_vs_ch": min(speedups),
                "max_bucket_speedup_vs_ch": max(speedups),
                "table_100x100_speedup_vs_fallback": round(fallback_s / fast_s, 3),
                "note": "CH query cost grows with distance (bigger upward "
                "search spaces); HL merge-join cost is bounded by label "
                "size, so the ratio widens toward Q10",
            },
            "distance_query": buckets,
            "distance_table": {
                "shape": f"{TABLE_SIDE}x{TABLE_SIDE}",
                "hl_fast_path_s": round(fast_s, 4),
                "dijkstra_fallback_s": round(fallback_s, 4),
                "speedup": round(fallback_s / fast_s, 3),
            },
        }
    )
    return result


def run_check():
    """CI mode: build + exactness only — no timing, no flake."""
    _, _, _, hl, result = build_and_verify()
    result["mode"] = "check (build + exactness only; timings omitted)"
    return result


def write_json(result, path=None):
    if path is None:
        # Check-mode output goes to its own (untracked) file so that
        # reproducing CI locally never clobbers the committed timing
        # record in BENCH_hl.json.
        name = "BENCH_hl.check.json" if "mode" in result else "BENCH_hl.json"
        path = Path(__file__).resolve().parent.parent / name
    Path(path).write_text(json.dumps(result, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# Pytest guard
# ----------------------------------------------------------------------
def test_hl_speed():
    """HL must beat CH in every distance bucket and the batched fast
    path must beat the Dijkstra fallback — conservative margins, since
    CI machines are noisy; the recorded JSON carries the real numbers."""
    result = run_benchmark()
    for name, rec in result["distance_query"].items():
        assert rec["speedup"] > 1.0, f"{name}: {rec}"
    # Long-range buckets are HL's home turf; demand a decisive win.
    long_range = [
        rec["speedup"]
        for name, rec in result["distance_query"].items()
        if name in ("Q8", "Q9", "Q10")
    ]
    assert long_range and max(long_range) >= 3.0, long_range
    assert result["distance_table"]["speedup"] > 1.0, result["distance_table"]
    # The committed BENCH_hl.json is refreshed explicitly (run this file
    # directly on a quiet machine); CI gates, it does not overwrite.


if __name__ == "__main__":
    if "--check" in sys.argv[1:]:
        res = run_check()
    else:
        res = run_benchmark()
    out = write_json(res)
    print(json.dumps(res, indent=2))
    print(f"\nwrote {out}")
