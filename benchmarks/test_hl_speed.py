"""Perf guard for the hub-label oracle (PR 2) and its kernels (PR 3).

Times ``HubLabelIndex.distance`` against ``CHEngine.distance`` on the
``NH`` suite dataset — both engines share one contraction hierarchy, so
the comparison isolates *query scheme* (label merge-join vs
bidirectional upward search) — and A/Bs the batched surface across the
**backend dimension**: the native C kernels (PR 10) and the numpy
kernels (PR 3) against PR 2's pure-python label scans, interleaved in
one process, on a 100x100 ``distance_table`` and a 1x1000
``one_to_many`` batch, plus the base-class Dijkstra fallback for
scale.  Results go to ``BENCH_hl.json``
at the repo root with full environment metadata (backend + numpy
version, CPython, platform) so the trajectory stays interpretable.

Methodology
-----------
* Queries follow the paper's Figure-8 methodology: one batch per
  distance bucket (on NH the non-empty buckets are exactly Q2..Q10).
  CH query time grows with distance (bigger upward search spaces);
  HL's merge-join cost is bounded by label size, so the win widens
  toward Q10 — the recorded per-bucket ratios document that shape.
  Per-query ``distance`` is backend-independent (two-pointer scan over
  stdlib label columns), so buckets carry no backend dimension.
* The batched A/B interleaves backends per repeat (numpy, then pure,
  each pass) so machine drift hits both sides equally; best-of-repeats
  suppresses GC/warm-up spikes.  ``pr2_reference`` preserves the
  label-scan timing recorded by PR 2's benchmark run of the *same* pure
  code path (single-shot measurement, same container family).
* Exactness is asserted against plain Dijkstra before any clock starts,
  and the numpy kernels are asserted equal to the pure scans —
  a fast wrong oracle is worthless.
* **Compact columns** (PR 6): the HL2 footprint facts (label-section
  bytes, bytes/entry) are hardware-independent, so the >= 2.5x NH
  shrink bar is asserted *hard* in every mode; the compact-vs-flat
  kernel A/B interleaves the two domains per repeat with parity
  asserted on the exact workload first, and its "no slower" floor is
  CPU-gated like every other timing here.
* ``--check`` runs the build + exactness + kernel-parity +
  compact-parity + footprint-floor phase only and writes a timing-free
  JSON — what CI runs (on both the numpy and the no-numpy matrix leg),
  immune to noisy-runner flake.

Run directly (``python benchmarks/test_hl_speed.py``) to refresh
``BENCH_hl.json``; under pytest the same measurement doubles as a
regression guard with deliberately conservative thresholds.
"""

from __future__ import annotations

import io
import json
import os
import random
import sys
import time
from pathlib import Path

from repro import backend
from repro.baselines import CHEngine, HubLabelIndex, QueryEngine
from repro.bench.harness import environment_metadata
from repro.core.serialize import inspect_bundle, load_hl_index, save_hl_index
from repro.datasets import dataset, generate_workloads
from repro.graph.traversal import distance_query

INF = float("inf")
DATASET = "NH"
REPEATS = 7
TABLE_SIDE = 100
O2M_TARGETS = 1000

#: PR 2's committed measurement of the pure label-scan distance_table
#: (BENCH_hl.json as of PR 2: single-shot 100x100 on NH, same container
#: family) — the baseline the ISSUE's ">=5x" targets.  A post-PR-3
#: checkout can still re-measure the pure path live (it is kept as the
#: fallback), so unlike PR 1's seed_reference this number *is*
#: reproducible — it is pinned here so the recorded trajectory survives
#: machine drift between benchmark runs.
PR2_REFERENCE = {
    "table_100x100_label_scan_s": 0.0028,
    "captured": "PR 2 benchmark run, NH, single-shot 100x100 "
    "distance_table via the pure label-scan path (rng seed 23)",
}


def _fast_tiers():
    """Kernel tiers above pure available in this process, fastest first."""
    return (["native"] if backend.HAS_NATIVE else []) + (
        ["numpy"] if backend.HAS_NUMPY else []
    )


def visible_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _mean_us(fn, pairs, repeats=REPEATS, min_sample_s=0.005):
    """Best-of-``repeats`` mean latency, with each timed sample stretched
    to at least ``min_sample_s`` by cycling the batch (2 µs queries over
    a 25-pair bucket are otherwise pure scheduler noise)."""
    t0 = time.perf_counter()
    for s, t in pairs:
        fn(s, t)
    once = time.perf_counter() - t0
    inner = 1 if once >= min_sample_s else int(min_sample_s / max(once, 1e-9)) + 1
    best = INF
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        for _ in range(inner):
            for s, t in pairs:
                fn(s, t)
        best = min(best, (time.perf_counter() - t0) / inner)
    return best / len(pairs) * 1e6


def _best_s(fn, repeats=REPEATS):
    """Best-of-``repeats`` wall time of one call."""
    best = INF
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _assert_tables_match(fast, slow):
    for fast_row, slow_row in zip(fast, slow):
        for a, b in zip(fast_row, slow_row):
            if a == b:
                continue  # also covers inf == inf
            assert abs(a - b) <= 1e-9 * max(1.0, b), (a, b)


def build_and_verify():
    """Build CH + HL on one shared hierarchy; assert HL answers exactly."""
    graph = dataset(DATASET)
    workloads = generate_workloads(graph, queries_per_bucket=25, seed=17)

    t0 = time.perf_counter()
    ch = CHEngine(graph)
    ch_build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    hl = HubLabelIndex(graph, contraction=ch._res)
    hl_label_s = time.perf_counter() - t0

    checked = 0
    for b in workloads.non_empty_buckets():
        for s, t in list(workloads.bucket(b))[:10]:
            want = distance_query(graph, s, t)
            got = hl.distance(s, t)
            assert abs(got - want) <= 1e-9 * max(1.0, want), (s, t, got, want)
            checked += 1

    # Kernel parity: the vectorised batch paths must equal PR 2's scans,
    # and since PR 10 the native C kernels must too — bit-identical,
    # before any clock runs.
    rng = random.Random(41)
    sources = [rng.randrange(graph.n) for _ in range(20)]
    targets = [rng.randrange(graph.n) for _ in range(20)] + [sources[0]]
    for tier in _fast_tiers():
        with backend.forced(tier):
            assert hl.one_to_many(sources[0], targets) == hl._one_to_many_pure(
                sources[0], targets
            ), tier
            assert hl.distance_table(sources, targets) == hl._distance_table_pure(
                sources, targets
            ), tier

    # Compact label columns (PR 6).  The footprint facts are
    # hardware-independent, so the ISSUE's >= 2.5x NH bar is a *hard*
    # assertion (check mode included) — and the compact-domain kernels
    # must answer bit-identically, on both backends, before any clock
    # runs against them.
    flat_buf = io.BytesIO()
    save_hl_index(hl, flat_buf, compact=False)
    comp_buf = io.BytesIO()
    save_hl_index(hl, comp_buf)
    flat_sec = inspect_bundle(flat_buf.getvalue())[0]["detail"]
    comp_sec = inspect_bundle(comp_buf.getvalue())[0]["detail"]
    size_ratio = flat_sec["label_bytes"] / comp_sec["label_bytes"]
    assert size_ratio >= 2.5, (
        f"NH label sections shrank only {size_ratio:.2f}x "
        f"({flat_sec['label_bytes']} -> {comp_sec['label_bytes']} bytes)"
    )
    comp_buf.seek(0)
    hlc = load_hl_index(comp_buf, graph)
    pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(50)]
    for name in _fast_tiers() + ["pure"]:
        with backend.forced(name):
            for s, t in pairs[:20]:
                assert hlc.distance(s, t) == hl.distance(s, t), (name, s, t)
            assert hlc.one_to_many(sources[0], targets) == hl.one_to_many(
                sources[0], targets
            )
            assert hlc.distance_table(sources, targets) == hl.distance_table(
                sources, targets
            )

    return graph, workloads, ch, hl, hlc, {
        "dataset": DATASET,
        "n": graph.n,
        "m": graph.m,
        "environment": environment_metadata(),
        "ch_build_s": round(ch_build_s, 3),
        "hl_label_s": round(hl_label_s, 3),
        "avg_label_entries": round(hl.average_label_size(), 2),
        "index_size": hl.index_size(),
        "exactness_checked_pairs": checked,
        "label_bytes_per_entry": comp_sec["bytes_per_entry"],
        "label_footprint": {
            "flat": {
                "label_bytes": flat_sec["label_bytes"],
                "bytes_per_entry": flat_sec["bytes_per_entry"],
            },
            "compact": {
                "label_bytes": comp_sec["label_bytes"],
                "bytes_per_entry": comp_sec["bytes_per_entry"],
                "dist_encoding": comp_sec["dist_encoding"],
            },
            "compact_vs_flat_size_ratio": round(size_ratio, 3),
        },
    }


def _bench_batched(graph, hl):
    """A/B the batched surface across backends (the PR 3 dimension)."""
    rng = random.Random(23)
    sources = [rng.randrange(graph.n) for _ in range(TABLE_SIDE)]
    targets = [rng.randrange(graph.n) for _ in range(TABLE_SIDE)]
    o2m_targets = [rng.randrange(graph.n) for _ in range(O2M_TARGETS)]

    def dijkstra_fallback():
        # The true index-free fallback: one target-pruned Dijkstra per
        # source.  (Calling QueryEngine.distance_table on an HL index
        # would route through HL's *overridden* one_to_many and time
        # the label kernels, not the fallback.)
        return [QueryEngine.one_to_many(hl, s, targets) for s in sources]

    # Correctness before clocks, fallback included.
    pure_table = hl._distance_table_pure(sources, targets)
    _assert_tables_match(pure_table, dijkstra_fallback())

    # Interleave tiers per repeat so drift hits all sides equally.  The
    # target-inversion memo (PR 4) is cleared before every timed table
    # call: this guard records the *cold* kernel, same quantity as the
    # PR 2/3 baselines it is compared against (the serving benchmark,
    # BENCH_serve.json, is where the warm-memo win is recorded).  The
    # native C kernels (PR 10) join the rotation as a third lane.
    lanes = _fast_tiers()
    table_s = {name: INF for name in lanes + ["pure-python"]}
    o2m_s = {name: INF for name in lanes + ["pure-python"]}
    for _ in range(REPEATS):
        for tier in lanes:
            with backend.forced(tier):
                hl.clear_target_inversions()
                t0 = time.perf_counter()
                fast = hl.distance_table(sources, targets)
                table_s[tier] = min(table_s[tier], time.perf_counter() - t0)
                t0 = time.perf_counter()
                hl.one_to_many(sources[0], o2m_targets)
                o2m_s[tier] = min(o2m_s[tier], time.perf_counter() - t0)
                assert fast == pure_table
        hl.clear_target_inversions()
        t0 = time.perf_counter()
        hl._distance_table_pure(sources, targets)
        table_s["pure-python"] = min(
            table_s["pure-python"], time.perf_counter() - t0
        )
        t0 = time.perf_counter()
        hl._one_to_many_pure(sources[0], o2m_targets)
        o2m_s["pure-python"] = min(o2m_s["pure-python"], time.perf_counter() - t0)

    fallback_s = _best_s(dijkstra_fallback, repeats=3)

    pr2_s = PR2_REFERENCE["table_100x100_label_scan_s"]
    table = {
        "shape": f"{TABLE_SIDE}x{TABLE_SIDE}",
        "backends": {
            name: {"seconds": round(s, 5)}
            for name, s in table_s.items()
            if s is not INF
        },
        "dijkstra_fallback_s": round(fallback_s, 4),
        "pure_vs_fallback_speedup": round(fallback_s / table_s["pure-python"], 3),
        "pr2_reference": PR2_REFERENCE,
    }
    o2m = {
        "shape": f"1x{O2M_TARGETS}",
        "backends": {
            name: {"seconds": round(s, 6)}
            for name, s in o2m_s.items()
            if s is not INF
        },
    }
    if backend.HAS_NUMPY:
        table["numpy_vs_pure_speedup"] = round(
            table_s["pure-python"] / table_s["numpy"], 3
        )
        table["numpy_vs_pr2_recorded_speedup"] = round(pr2_s / table_s["numpy"], 3)
        o2m["numpy_vs_pure_speedup"] = round(
            o2m_s["pure-python"] / o2m_s["numpy"], 3
        )
    if backend.HAS_NATIVE:
        table["native_vs_pure_speedup"] = round(
            table_s["pure-python"] / table_s["native"], 3
        )
        o2m["native_vs_pure_speedup"] = round(
            o2m_s["pure-python"] / o2m_s["native"], 3
        )
        if backend.HAS_NUMPY:
            table["native_vs_numpy_speedup"] = round(
                table_s["numpy"] / table_s["native"], 3
            )
            o2m["native_vs_numpy_speedup"] = round(
                o2m_s["numpy"] / o2m_s["native"], 3
            )
    return table, o2m


def _bench_compact(graph, hl, hlc):
    """Compact-domain vs flat-domain kernels, interleaved per repeat.

    Same index, two storage domains: the int32/varint-decoded columns
    (``hlc``) against the flat int64/float64 ones (``hl``).  Parity is
    asserted on the exact benchmark workload before any clock; the two
    domains alternate within each repeat so machine drift hits both.
    Runs under the ambient backend (numpy when available — the domain
    where the int32 gathers matter; ``distance`` itself is
    backend-independent).
    """
    rng = random.Random(29)
    pairs = [(rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(100)]
    sources = [rng.randrange(graph.n) for _ in range(TABLE_SIDE)]
    targets = [rng.randrange(graph.n) for _ in range(TABLE_SIDE)]
    o2m_targets = [rng.randrange(graph.n) for _ in range(O2M_TARGETS)]

    # Parity before clocks, on this exact workload.
    assert hlc.distance_table(sources, targets) == hl.distance_table(
        sources, targets
    )
    assert hlc.one_to_many(sources[0], o2m_targets) == hl.one_to_many(
        sources[0], o2m_targets
    )

    flat_us = _mean_us(hl.distance, pairs)
    compact_us = _mean_us(hlc.distance, pairs)

    table_s = {"flat": INF, "compact": INF}
    o2m_s = {"flat": INF, "compact": INF}
    for _ in range(REPEATS):
        for key, idx in (("flat", hl), ("compact", hlc)):
            idx.clear_target_inversions()
            t0 = time.perf_counter()
            idx.distance_table(sources, targets)
            table_s[key] = min(table_s[key], time.perf_counter() - t0)
            t0 = time.perf_counter()
            idx.one_to_many(sources[0], o2m_targets)
            o2m_s[key] = min(o2m_s[key], time.perf_counter() - t0)
    return {
        "backend": backend.active(),
        "distance_us": {
            "flat": round(flat_us, 3),
            "compact": round(compact_us, 3),
        },
        "table_100x100_s": {k: round(v, 5) for k, v in table_s.items()},
        "one_to_many_1000_s": {k: round(v, 6) for k, v in o2m_s.items()},
        "distance_compact_vs_flat": round(flat_us / compact_us, 3),
        "table_compact_vs_flat": round(table_s["flat"] / table_s["compact"], 3),
        "o2m_compact_vs_flat": round(o2m_s["flat"] / o2m_s["compact"], 3),
    }


def run_benchmark():
    graph, workloads, ch, hl, hlc, result = build_and_verify()

    buckets = {}
    for b in workloads.non_empty_buckets():
        pairs = list(workloads.bucket(b))
        # Interleave the two engines per bucket so drift hits both.
        ch_us = _mean_us(ch.distance, pairs)
        hl_us = _mean_us(hl.distance, pairs)
        buckets[f"Q{b}"] = {
            "queries": len(pairs),
            "ch_us": round(ch_us, 3),
            "hl_us": round(hl_us, 3),
            "speedup": round(ch_us / hl_us, 3),
        }

    table, o2m = _bench_batched(graph, hl)
    compact = _bench_compact(graph, hl, hlc)

    speedups = [rec["speedup"] for rec in buckets.values()]
    headline = {
        "min_bucket_speedup_vs_ch": min(speedups),
        "max_bucket_speedup_vs_ch": max(speedups),
        "note": "CH query cost grows with distance (bigger upward "
        "search spaces); HL merge-join cost is bounded by label "
        "size, so the ratio widens toward Q10.  Per-bucket distance "
        "runs under the ambient tier — with the native extension "
        "built, hl_us is the C merge-join, which is why the "
        "vs-CH ratios stepped up at PR 10.  Batched-surface numbers "
        "carry the full backend dimension: native C kernels and "
        "numpy kernels vs PR 2's pure label scans, interleaved "
        "in-process.",
    }
    if backend.HAS_NUMPY:
        headline["table_numpy_vs_pure"] = table["numpy_vs_pure_speedup"]
        headline["table_numpy_vs_pr2_recorded"] = table[
            "numpy_vs_pr2_recorded_speedup"
        ]
        headline["one_to_many_numpy_vs_pure"] = o2m["numpy_vs_pure_speedup"]
    if backend.HAS_NATIVE:
        headline["table_native_vs_pure"] = table["native_vs_pure_speedup"]
        headline["one_to_many_native_vs_pure"] = o2m["native_vs_pure_speedup"]
        if backend.HAS_NUMPY:
            headline["table_native_vs_numpy"] = table["native_vs_numpy_speedup"]
            headline["one_to_many_native_vs_numpy"] = o2m[
                "native_vs_numpy_speedup"
            ]
    headline["label_compact_vs_flat_size"] = result["label_footprint"][
        "compact_vs_flat_size_ratio"
    ]
    headline["table_compact_vs_flat"] = compact["table_compact_vs_flat"]
    result.update(
        {
            "method": "shared contraction hierarchy; per-bucket interleaved "
            "A/B; backend A/B interleaved per repeat; compact-vs-flat "
            "domains interleaved per repeat; best-of-%d" % REPEATS,
            "headline": headline,
            "distance_query": buckets,
            "distance_table": table,
            "one_to_many": o2m,
            "compact_vs_flat": compact,
        }
    )
    return result


def run_check():
    """CI mode: build + exactness + kernel/compact parity + the hard
    footprint floor — no timing, no flake."""
    _, _, _, _, _, result = build_and_verify()
    result["mode"] = (
        "check (build + exactness + three-tier kernel parity + "
        "compact-domain parity + >=2.5x label-footprint floor; "
        "timings omitted)"
    )
    return result


def write_json(result, path=None):
    if path is None:
        # Check-mode output goes to its own (untracked) file so that
        # reproducing CI locally never clobbers the committed timing
        # record in BENCH_hl.json.
        name = "BENCH_hl.check.json" if "mode" in result else "BENCH_hl.json"
        path = Path(__file__).resolve().parent.parent / name
    Path(path).write_text(json.dumps(result, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# Pytest guard
# ----------------------------------------------------------------------
def test_hl_speed():
    """HL must beat CH in every distance bucket, the batched pure path
    must beat the Dijkstra fallback, and the numpy kernels must beat the
    pure scans — conservative margins, since CI machines are noisy; the
    recorded JSON carries the real numbers."""
    result = run_benchmark()
    # Timing floors only where the clock is physical: a starved 1-CPU
    # container time-shares both sides of every A/B and the ratios
    # measure scheduler noise (ROADMAP measurement discipline).  The
    # recorded JSON carries every number on every box either way.
    if visible_cpus() >= 2:
        for name, rec in result["distance_query"].items():
            assert rec["speedup"] > 1.0, f"{name}: {rec}"
        # Long-range buckets are HL's home turf; demand a decisive win.
        long_range = [
            rec["speedup"]
            for name, rec in result["distance_query"].items()
            if name in ("Q8", "Q9", "Q10")
        ]
        assert long_range and max(long_range) >= 3.0, long_range
        table = result["distance_table"]
        assert table["pure_vs_fallback_speedup"] > 1.0, table
        if backend.HAS_NUMPY:
            # Real ratios on a quiet machine run ~2-4x (table) and ~10x
            # (one_to_many); the guard only has to catch a vectorisation
            # path that silently fell back or regressed.
            assert table["numpy_vs_pure_speedup"] >= 1.3, table
            assert result["one_to_many"]["numpy_vs_pure_speedup"] >= 3.0, result[
                "one_to_many"
            ]
        if backend.HAS_NATIVE and backend.HAS_NUMPY:
            # ISSUE 10's hard floor: the C scatter-min must clear 2x
            # over the numpy co-occurrence join on NH.  CPU-gated like
            # every timing here — on a 1-CPU box the ratio is scheduler
            # noise, and the recorded JSON carries it either way.
            assert table["native_vs_numpy_speedup"] >= 2.0, table
    # PR 6: the footprint floor is hardware-independent — always hard
    # (build_and_verify also asserts it, so check mode gates too).
    assert result["label_footprint"]["compact_vs_flat_size_ratio"] >= 2.5
    if visible_cpus() >= 4:
        # Compact kernels must not pay for their footprint: the table
        # join over int32 gathers should match or beat the flat one.
        # Timing floor, so gated like PR 5's — only where it is physical
        # (1-CPU CI boxes time-share and the clock is scheduler noise).
        assert result["compact_vs_flat"]["table_compact_vs_flat"] >= 0.85, (
            result["compact_vs_flat"]
        )
    # The committed BENCH_hl.json is refreshed explicitly (run this file
    # directly on a quiet machine); CI gates, it does not overwrite.


if __name__ == "__main__":
    if "--check" in sys.argv[1:]:
        res = run_check()
    else:
        res = run_benchmark()
    out = write_json(res)
    print(json.dumps(res, indent=2))
    print(f"\nwrote {out}")
