"""Fault-episode perf guard for the resilience layer (PR 8).

Three scripted-outage A/Bs on ``NH``, all **parity-asserted against the
direct planner before any clock** (resilience that changes answers is
not resilience):

* **Kill episode**: per-dispatch latency while a :class:`FaultPlan`
  kills one worker mid-batch at scripted dispatches, vs the same
  workload with no plan.  The p99 delta prices detection + respawn +
  retry; the *steady* numbers double as the "fault hooks are free when
  off" baseline.
* **Straggler tail, hedged vs not**: one worker stalls at scripted
  dispatches.  Unhedged, every stalled dispatch eats the full stall;
  with ``hedge_after_s`` set, the idle replica answers and the episode
  p99 collapses toward steady state.  The reduction is sleep-dominated
  rather than CPU-dominated, so a *qualitative* floor (hedged tail
  strictly below unhedged) holds even on one core; the quantitative
  floor is gated on ``visible_cpus``.
* **Breaker-degraded throughput**: every slot quarantined by a
  tripped-open :class:`CircuitBreaker`, the pool serving through its
  in-dispatcher planner fallback — recorded against normal pool
  throughput to price the documented degraded mode (no floor: the
  ratio measures one core doing two tiers' work).

Results go to ``BENCH_faults.json`` with environment metadata plus the
visible CPU count.  ``--check`` (CI, both backend legs) runs a small
workload through every scenario asserting parity, typed-failure
accounting (watchdog/retry/hedge/breaker counters actually moved) and
leak-freedom only — no timing — and writes ``BENCH_faults.check.json``
so the committed timing record is never clobbered by a CI run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro import backend
from repro.baselines import HubLabelIndex
from repro.baselines.base import DistanceRequest, OneToManyRequest, QueryPlanner
from repro.bench.harness import (
    FaultEpisodeRecord,
    environment_metadata,
    episode_percentiles,
)
from repro.core.serialize import bundle_bytes
from repro.datasets import dataset
from repro.serve import CircuitBreaker, FaultPlan, WorkerPool
from repro.serve import faults

DATASET = "NH"
WORKERS = 2
DISPATCHES = 60
BATCH = 48
KILL_AT = (10, 25, 40)
STALL_AT = tuple(range(6, DISPATCHES, 9))
STALL_S = 0.1
HEDGE_AFTER_S = 0.02
#: Dispatch spacing for the straggler A/B: with first-answer-wins the
#: loser's duplicate drains *between* dispatches, so back-to-back
#: dispatches would keep the straggling slot sidelined past the next
#: scripted stall.  25ms spacing (a 40 req/s arrival process) lets each
#: stall finish draining before the next one is due on the schedule.
PACE_S = 0.025


def visible_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_workload(graph, dispatches=DISPATCHES, batch=BATCH):
    """``dispatches`` fixed batches of point + one-to-many requests."""
    n = graph.n
    out = []
    for d in range(dispatches):
        reqs = [
            DistanceRequest((d * 131 + i * 17) % n, (d * 37 + i * 101) % n)
            for i in range(batch - 2)
        ]
        reqs.append(OneToManyRequest((d * 13) % n, tuple((d + j * 7) % n for j in range(8))))
        reqs.append(OneToManyRequest((d * 29 + 5) % n, tuple((d + j * 11) % n for j in range(8))))
        out.append(reqs)
    return out


def reference_answers(hl, batches):
    planner = QueryPlanner(hl)
    return [planner.execute(b) for b in batches]


def _timed_run(pool, batches, reference, pace_s=0.0):
    """Per-dispatch latencies; every answer parity-checked off the clock.

    ``pace_s`` spaces dispatches like an arrival process (the sleep sits
    outside the clocked window) — without it, 60 dispatches finish in
    milliseconds and a straggler can never drain between them.
    """
    latencies = []
    for batch, want in zip(batches, reference):
        t0 = time.perf_counter()
        got = pool.execute(batch)
        latencies.append(time.perf_counter() - t0)
        assert got == want, "served batch != direct planner"
        if pace_s:
            time.sleep(pace_s)
    return latencies


def _steady_run(blob, batches, reference, pace_s=0.0, **pool_kwargs):
    with WorkerPool(blob, workers=WORKERS, **pool_kwargs) as pool:
        latencies = _timed_run(pool, batches, reference, pace_s)
        stats = pool.stats()
    return latencies, stats


def _assert_no_leaked_lanes(names):
    from multiprocessing import shared_memory

    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        raise AssertionError(f"reply lane {name} outlived its pool")


def bench_kill_episode(blob, batches, reference, steady):
    """Latency through scripted kill-one-worker outages, vs steady."""
    plan = FaultPlan.scripted(
        {(d, d % WORKERS): faults.kill() for d in KILL_AT}
    )
    latencies, stats = _steady_run(
        blob, batches, reference, fault_plan=plan
    )
    assert plan.injected == len(KILL_AT), plan
    res = stats["resilience"]
    assert res["retry"]["attempts"] >= len(KILL_AT), res
    record = FaultEpisodeRecord(
        scenario="kill",
        dispatches=len(batches),
        faults_injected=plan.injected,
        steady_p50_ms=steady["p50_ms"],
        steady_p99_ms=steady["p99_ms"],
        episode_p50_ms=episode_percentiles(latencies)["p50_ms"],
        episode_p99_ms=episode_percentiles(latencies)["p99_ms"],
        recovered=True,  # parity held through and after the outage
    )
    return {
        "kills_at": list(KILL_AT),
        "episode": episode_percentiles(latencies),
        "retry_attempts": res["retry"]["attempts"],
        "respawns": stats["respawns"],
        "record": asdict(record),
    }


def bench_straggler_tail(blob, batches, reference, steady):
    """Stalled-worker tail with and without hedged re-dispatch."""
    out = {}
    for label, kwargs in (
        ("unhedged", {"recv_timeout_s": 30.0}),
        (
            "hedged",
            {
                "recv_timeout_s": 30.0,
                "hedge_after_s": HEDGE_AFTER_S,
                "hedge_grace_s": 2.0,
            },
        ),
    ):
        plan = FaultPlan.scripted(
            {(d, 1): faults.stall(STALL_S) for d in STALL_AT}
        )
        latencies, stats = _steady_run(
            blob, batches, reference, pace_s=PACE_S, fault_plan=plan, **kwargs
        )
        assert plan.injected == len(STALL_AT), plan
        h = stats["resilience"]["hedge"]
        if label == "hedged":
            assert h["hedges"] >= 1, stats["resilience"]
            assert h["mismatches"] == 0, stats["resilience"]
        out[label] = {
            "episode": episode_percentiles(latencies),
            "hedges": h["hedges"],
            "hedge_wins": h["wins"],
            "hedge_parity_checks": h["parity_checks"],
        }
    unhedged_p99 = out["unhedged"]["episode"]["p99_ms"]
    hedged_p99 = out["hedged"]["episode"]["p99_ms"]
    record = FaultEpisodeRecord(
        scenario="stall-hedged",
        dispatches=len(batches),
        faults_injected=len(STALL_AT),
        steady_p50_ms=steady["p50_ms"],
        steady_p99_ms=steady["p99_ms"],
        episode_p50_ms=out["hedged"]["episode"]["p50_ms"],
        episode_p99_ms=hedged_p99,
        recovered=True,
    )
    return {
        "stalls_at": list(STALL_AT),
        "stall_s": STALL_S,
        "hedge_after_s": HEDGE_AFTER_S,
        "pace_s": PACE_S,
        "p99_reduction": round(unhedged_p99 / max(hedged_p99, 1e-9), 2),
        "sides": out,
        "record": asdict(record),
    }


def bench_breaker_degraded(blob, batches, reference, steady_latencies):
    """Throughput with every slot quarantined (planner fallback) vs pool."""
    breaker = CircuitBreaker(
        WORKERS, threshold=1, cooldown_s=3600.0, cooldown_cap_s=7200.0
    )
    with WorkerPool(blob, workers=WORKERS, breaker=breaker) as pool:
        for slot in range(WORKERS):
            breaker.record_failure(slot)
        latencies = _timed_run(pool, batches, reference)
        stats = pool.stats()
    res = stats["resilience"]["breaker"]
    assert res["fallback_batches"] == len(batches), res
    requests = sum(len(b) for b in batches)
    pool_s = sum(steady_latencies)
    degraded_s = sum(latencies)
    return {
        "episode": episode_percentiles(latencies),
        "fallback_batches": res["fallback_batches"],
        "quarantine_skips": res["quarantine_skips"],
        "pool_req_per_s": round(requests / pool_s, 1),
        "degraded_req_per_s": round(requests / degraded_s, 1),
        "degraded_vs_pool_throughput": round(pool_s / degraded_s, 3),
    }


def build_and_verify(dispatches=DISPATCHES, batch=BATCH):
    graph = dataset(DATASET)
    hl = HubLabelIndex(graph)
    blob = bundle_bytes(hl)
    batches = build_workload(graph, dispatches, batch)
    reference = reference_answers(hl, batches)
    result = {
        "dataset": DATASET,
        "n": graph.n,
        "m": graph.m,
        "environment": environment_metadata(),
        "visible_cpus": visible_cpus(),
        "workload": {
            "dispatches": dispatches,
            "requests_per_dispatch": batch,
            "shape": "fixed point + one-to-many batches, deterministic "
            "endpoints, served one dispatch at a time",
        },
    }
    return blob, batches, reference, result


def run_benchmark():
    blob, batches, reference, result = build_and_verify()
    cpus = visible_cpus()
    backends = {}
    names = (["numpy"] if backend.HAS_NUMPY else []) + ["pure"]
    for name in names:
        with backend.forced(name):
            steady_lat, steady_stats = _steady_run(
                blob, batches, reference, backend_name=name
            )
            assert steady_stats["respawns"] == 0, steady_stats
            steady = episode_percentiles(steady_lat)
            backends[backend.active()] = {
                "steady": steady,
                "kill_episode": bench_kill_episode(
                    blob, batches, reference, steady
                ),
                "straggler": bench_straggler_tail(
                    blob, batches, reference, steady
                ),
                "breaker_degraded": bench_breaker_degraded(
                    blob, batches, reference, steady_lat
                ),
            }
    headline = {
        "note": "every clocked batch parity-asserted against the direct "
        "QueryPlanner (bit-identical answers through kills, stalls and "
        "degraded mode).  Kill-episode p99 prices detection + respawn + "
        "retry; the straggler A/B prices the hedge; breaker-degraded "
        "throughput prices the documented single-process fallback.  "
        "This box exposes %d CPU(s): wall-clock ratios are honest for "
        "this machine, and the quantitative hedging floor only binds "
        "with >= 2 cores." % cpus,
        "visible_cpus": cpus,
    }
    for name, rec in backends.items():
        headline[f"{name}_steady_p99_ms"] = rec["steady"]["p99_ms"]
        headline[f"{name}_kill_episode_p99_ms"] = rec["kill_episode"][
            "episode"
        ]["p99_ms"]
        headline[f"{name}_hedge_p99_reduction"] = rec["straggler"][
            "p99_reduction"
        ]
        headline[f"{name}_degraded_vs_pool_throughput"] = rec[
            "breaker_degraded"
        ]["degraded_vs_pool_throughput"]
    result.update(
        {
            "method": "per-dispatch wall clocks over %d dispatches x %d "
            "requests, fresh pool per scenario, parity before every "
            "clock; scripted FaultPlans (seedless, fully enumerated) so "
            "every run injects the identical outage" % (DISPATCHES, BATCH),
            "headline": headline,
            "scenarios": backends,
        }
    )
    return result


def run_check():
    """CI mode: every scenario exercised, counters verified — no timing."""
    blob, batches, reference, result = build_and_verify(
        dispatches=12, batch=16
    )
    checks = {}
    names = (["numpy"] if backend.HAS_NUMPY else []) + ["pure"]
    for name in names:
        with backend.forced(name):
            # kill + stall + corrupt in one scripted plan, healed exactly
            plan = FaultPlan.scripted(
                {
                    (1, 0): faults.kill(),
                    (3, 1): faults.stall(0.6),
                    (5, 0): faults.corrupt(),
                    (7, 1): faults.truncate(),
                }
            )
            pool = WorkerPool(
                blob,
                workers=WORKERS,
                backend_name=name,
                recv_timeout_s=0.25,
                fault_plan=plan,
            )
            lanes = [ln.name for ln in pool._lanes if ln is not None]
            try:
                for batch, want in zip(batches, reference):
                    assert pool.execute(batch) == want, (
                        f"{name}: served != direct planner under faults"
                    )
                stats = pool.stats()
            finally:
                pool.close()
            _assert_no_leaked_lanes(lanes)
            assert plan.injected == 4 and len(plan) == 0, plan
            res = stats["resilience"]
            assert res["watchdog_timeouts"] >= 1, res  # the stall
            assert res["retry"]["attempts"] >= 3, res
            assert stats["reply_path"]["crc_failures"] >= 2, stats
            checks[backend.active()] = {
                "parity": "bit-identical to the direct planner through "
                "kill/stall/corrupt/truncate",
                "faults_injected": plan.injected,
                "watchdog_timeouts": res["watchdog_timeouts"],
                "retry_attempts": res["retry"]["attempts"],
                "crc_failures": stats["reply_path"]["crc_failures"],
                "respawns": stats["respawns"],
                "no_leaked_segments": True,
            }
    # Breaker-degraded parity (backend-independent: one pass)
    breaker = CircuitBreaker(
        WORKERS, threshold=1, cooldown_s=3600.0, cooldown_cap_s=7200.0
    )
    with WorkerPool(blob, workers=WORKERS, breaker=breaker) as pool:
        for slot in range(WORKERS):
            breaker.record_failure(slot)
        for batch, want in zip(batches[:4], reference[:4]):
            assert pool.execute(batch) == want, "degraded mode != planner"
        fb = pool.stats()["resilience"]["breaker"]["fallback_batches"]
    assert fb == 4, fb
    result["mode"] = (
        "check (parity + fault accounting + leak-freedom; timings omitted)"
    )
    result["scenarios"] = checks
    result["breaker_degraded"] = {"fallback_batches": fb, "parity": True}
    return result


def write_json(result, path=None):
    if path is None:
        name = (
            "BENCH_faults.check.json" if "mode" in result else "BENCH_faults.json"
        )
        path = Path(__file__).resolve().parent.parent / name
    Path(path).write_text(json.dumps(result, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# Pytest guard
# ----------------------------------------------------------------------
def test_fault_speed():
    """Fault episodes: exactness and accounting always; floors when physical.

    Parity through every scenario gates unconditionally (it is asserted
    inside every timed run).  The hedging tail reduction is asserted
    qualitatively everywhere (stalls are sleeps, not CPU work) and
    quantitatively only with >= 2 visible CPUs.
    """
    result = run_benchmark()
    for name, rec in result["scenarios"].items():
        straggler = rec["straggler"]
        unhedged = straggler["sides"]["unhedged"]["episode"]["p99_ms"]
        hedged = straggler["sides"]["hedged"]["episode"]["p99_ms"]
        assert hedged < unhedged, (name, straggler)
        assert rec["breaker_degraded"]["fallback_batches"] > 0
        if result["visible_cpus"] >= 2:
            # The stall is 250ms and the hedge fires at 20ms: even a
            # conservative floor leaves a wide margin over scheduling
            # noise.  The committed BENCH_faults.json carries the real
            # quiet-machine ratio.
            assert straggler["p99_reduction"] >= 2.0, (name, straggler)


if __name__ == "__main__":
    if "--check" in sys.argv[1:]:
        res = run_check()
    else:
        res = run_benchmark()
    out = write_json(res)
    print(json.dumps(res, indent=2))
    print(f"\nwrote {out}")
