"""Ablation benchmarks over AH's design choices (§4.3/§4.4).

Each benchmark isolates one component against the default configuration;
the assertions document the *direction* each choice is supposed to move
performance (with wide tolerances — these are single-machine trends).
Every variant's correctness is enforced in tests/, so only speed is at
stake here.
"""

import time

import pytest

from conftest import get_engine, long_range_pairs

DATASET = "NH"

CONFIGS = {
    "default": {},
    "no-proximity": {"proximity": False},
    "no-downgrade": {"downgrade": False},
    "random-order": {"ordering": "random"},
    "elevating": {"elevating": True},
    "stall": {"stall_on_demand": True},
}


def _mean_us(engine, pairs, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for s, t in pairs:
            engine.distance(s, t)
        best = min(best, time.perf_counter() - t0)
    return best / len(pairs) * 1e6


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_ablation_distance_queries(benchmark, config_name):
    engine = get_engine("AH", DATASET, **CONFIGS[config_name])
    pairs = long_range_pairs(DATASET)
    benchmark.group = "ablation-distance"

    def run():
        for s, t in pairs:
            engine.distance(s, t)

    benchmark(run)


def test_ablation_elevating_speeds_up_long_range():
    """Elevating edges exist to skip the low hierarchy levels; they must
    pay off on distant pairs."""
    pairs = long_range_pairs(DATASET)
    base = _mean_us(get_engine("AH", DATASET), pairs)
    elev = _mean_us(get_engine("AH", DATASET, elevating=True), pairs)
    assert elev <= base * 1.1, f"elevating {elev:.1f}us vs base {base:.1f}us"


def test_ablation_cover_ordering_not_worse_than_random():
    """§4.4's vertex-cover ordering should not lose to a random order in
    index quality (shortcut count is the machine-independent proxy)."""
    cover = get_engine("AH", DATASET)
    rand = get_engine("AH", DATASET, ordering="random")
    assert cover.shortcut_count <= rand.shortcut_count * 1.3


def test_ablation_downgrade_thins_top_levels():
    """Downgrading strictly reduces the population of levels >= 1."""
    on = get_engine("AH", DATASET)
    off = get_engine("AH", DATASET, downgrade=False)
    high_on = sum(1 for lv in on.levels if lv >= 1)
    high_off = sum(1 for lv in off.levels if lv >= 1)
    assert high_on <= high_off
