"""Benchmarks for the §7 future-work extensions and the TNR baseline.

Covers the repository's additions beyond the paper's evaluation:
customization speed vs full rebuild, serialized index size, and Transit
Node Routing's table-lookup queries.
"""

import io
import time

import pytest

from repro.core import AHIndex, index_bytes, load_index, save_index
from repro.graph import GraphBuilder

from conftest import get_engine, get_graph, long_range_pairs

DATASET = "DE"


def _reweighted(graph, factor):
    b = GraphBuilder()
    for u in graph.nodes():
        b.add_node(*graph.coord(u))
    for u, v, w in graph.edges():
        b.add_edge(u, v, w * factor)
    return b.build()


def test_customization_speed(benchmark):
    """with_weights re-runs only contraction; must be >=10x faster than
    the recorded full build."""
    base = get_engine("AH", DATASET)
    jam = _reweighted(get_graph(DATASET), 1.8)
    result = benchmark.pedantic(lambda: base.with_weights(jam), rounds=3, iterations=1)
    assert result.build_times["customization"] * 10 < max(
        0.5, base.build_time()
    )


def test_serialization_roundtrip_speed(benchmark):
    engine = get_engine("AH", DATASET)
    graph = get_graph(DATASET)

    def roundtrip():
        buf = io.BytesIO()
        save_index(engine, buf)
        buf.seek(0)
        return load_index(buf, graph)

    loaded = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    s, t = long_range_pairs(DATASET)[0]
    assert loaded.distance(s, t) == pytest.approx(engine.distance(s, t))


def test_serialized_size_compact():
    """The binary format beats 64 bytes/entry — a realistic Figure-10a
    unit for the paper's 'memory footprint' future-work concern."""
    engine = get_engine("AH", DATASET)
    size = index_bytes(engine)
    assert size / max(1, engine.index_size()) < 64


def test_tnr_distance_queries(benchmark):
    """TNR's far queries are pure table lookups — the fastest regime of
    any engine here (matching Bast et al.'s 'ultrafast' claim)."""
    engine = get_engine("TNR", DATASET)
    pairs = [p for p in long_range_pairs(DATASET) if not engine.is_local(*p)]
    assert pairs, "locality filter never engaged"
    benchmark.group = "extensions-tnr"

    def run():
        total = 0.0
        for s, t in pairs:
            total += engine.distance(s, t)
        return total

    benchmark(run)


def test_tnr_beats_dijkstra_far():
    tnr = get_engine("TNR", DATASET)
    dij = get_engine("Dijkstra", DATASET)
    pairs = [p for p in long_range_pairs(DATASET) if not tnr.is_local(*p)]
    if not pairs:
        pytest.skip("no non-local pairs at this scale")

    def mean_us(engine):
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            for s, t in pairs:
                engine.distance(s, t)
            best = min(best, time.perf_counter() - t0)
        return best / len(pairs) * 1e6

    assert mean_us(tnr) < mean_us(dij)
