"""Table 1 — the paper's bounds for AH, checked as empirical trends.

``O(hn)`` space, ``O(h log h)`` distance queries and ``O(k + h log h)``
path queries cannot be proven by measurement, but their consequences can
be falsified: entries/node tracking h, query latency nearly independent
of n, and per-edge unpacking cost that is small and flat.
"""

import time

import pytest

from conftest import get_engine, get_graph, long_range_pairs

LADDER = ("DE", "NH", "ME")


def _mean_us(fn, pairs, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for s, t in pairs:
            fn(s, t)
        best = min(best, time.perf_counter() - t0)
    return best / len(pairs) * 1e6


@pytest.mark.parametrize("dataset_name", LADDER)
def test_table1_ah_distance_query(benchmark, dataset_name):
    engine = get_engine("AH", dataset_name)
    pairs = long_range_pairs(dataset_name)
    benchmark.group = "table1-distance"

    def run():
        for s, t in pairs:
            engine.distance(s, t)

    benchmark(run)


def test_table1_space_tracks_h_times_n():
    """entries ≈ c · h · n with a stable constant across the ladder."""
    constants = []
    for name in LADDER:
        engine = get_engine("AH", name)
        graph = get_graph(name)
        constants.append(engine.index_size() / (graph.n * max(1, engine.h)))
    assert max(constants) <= 4 * min(constants), constants


def test_table1_query_nearly_flat_in_n():
    """O(h log h) ⇒ tripling n must not triple the query time."""
    small = _mean_us(
        get_engine("AH", LADDER[0]).distance, long_range_pairs(LADDER[0])
    )
    large = _mean_us(
        get_engine("AH", LADDER[-1]).distance, long_range_pairs(LADDER[-1])
    )
    n_ratio = get_graph(LADDER[-1]).n / get_graph(LADDER[0]).n
    assert large / small < n_ratio, (
        f"query grew {large / small:.2f}x for {n_ratio:.2f}x nodes"
    )


def test_table1_unpacking_linear_in_k():
    """Path-query overhead over distance queries is O(k): the per-hop
    unpacking cost stays small."""
    name = "NH"
    engine = get_engine("AH", name)
    pairs = long_range_pairs(name)
    d_us = _mean_us(engine.distance, pairs)
    p_us = _mean_us(engine.shortest_path, pairs)
    hops = [engine.shortest_path(s, t).hop_count for s, t in pairs[:10]]
    mean_k = sum(hops) / len(hops)
    per_hop = (p_us - d_us) / mean_k
    assert per_hop < 30.0, f"unpacking {per_hop:.2f}us per edge"
