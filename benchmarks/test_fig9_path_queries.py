"""Figure 9 — shortest path query latency per engine and regime.

Beyond the Figure-8 comparisons, Figure 9's distinguishing observations
are encoded as assertions:

* AH and CH pay a strictly higher cost for path queries than distance
  queries (they unpack shortcuts afterwards);
* SILC and Dijkstra cost the same for both kinds (they materialise the
  path anyway) — Section 6.3's explanation.
"""

import time

import pytest

from conftest import BENCH_DATASETS, get_engine, long_range_pairs

ENGINES = ("Dijkstra", "SILC", "CH", "AH")


def _path_batch(engine, pairs):
    shortest_path = engine.shortest_path
    def run():
        hops = 0
        for s, t in pairs:
            p = shortest_path(s, t)
            if p is not None:
                hops += p.hop_count
        return hops
    return run


@pytest.mark.parametrize("dataset_name", BENCH_DATASETS)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_fig9_long_range_paths(benchmark, engine_name, dataset_name):
    engine = get_engine(engine_name, dataset_name)
    pairs = long_range_pairs(dataset_name)
    benchmark.group = f"fig9-long-{dataset_name}"
    benchmark(_path_batch(engine, pairs))


def _mean_us(fn, pairs, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for s, t in pairs:
            fn(s, t)
        best = min(best, time.perf_counter() - t0)
    return best / len(pairs) * 1e6


@pytest.mark.parametrize("dataset_name", BENCH_DATASETS)
@pytest.mark.parametrize("engine_name", ("CH", "AH"))
def test_fig9_shape_paths_cost_more_than_distances(engine_name, dataset_name):
    """§6.3: hierarchical engines answer a distance query first, then
    unpack — so path queries are strictly slower."""
    engine = get_engine(engine_name, dataset_name)
    pairs = long_range_pairs(dataset_name)
    d = _mean_us(engine.distance, pairs)
    p = _mean_us(engine.shortest_path, pairs)
    assert p > d


@pytest.mark.parametrize("dataset_name", BENCH_DATASETS)
def test_fig9_shape_silc_distance_equals_path(dataset_name):
    """§6.3: SILC computes the path either way; costs are ~identical."""
    engine = get_engine("SILC", dataset_name)
    pairs = long_range_pairs(dataset_name)
    d = _mean_us(engine.distance, pairs)
    p = _mean_us(engine.shortest_path, pairs)
    assert p <= d * 2.0  # same asymptotics, small constant for Path objects


@pytest.mark.parametrize("dataset_name", BENCH_DATASETS)
def test_fig9_shape_ah_beats_dijkstra(dataset_name):
    engine = get_engine("AH", dataset_name)
    dij = get_engine("Dijkstra", dataset_name)
    pairs = long_range_pairs(dataset_name)
    assert _mean_us(engine.shortest_path, pairs) < _mean_us(
        dij.shortest_path, pairs
    )
