"""Figure 10 — index space and preprocessing time versus n.

Benchmarks each engine's construction on a ladder of suite datasets and
asserts the figure's claims: SILC grows super-linearly in both space and
time, AH grows ~linearly in space, and CH is the most frugal.
"""

import pytest

from repro.baselines import CHEngine, SILCEngine
from repro.bench.experiments.fig10 import growth_exponent
from repro.core import AHIndex

from conftest import get_engine, get_graph

LADDER = ("DE", "NH", "ME")


@pytest.mark.parametrize("dataset_name", ("DE", "NH"))
def test_fig10b_ch_build(benchmark, dataset_name):
    graph = get_graph(dataset_name)
    benchmark.group = f"fig10b-build-{dataset_name}"
    benchmark.pedantic(lambda: CHEngine(graph), rounds=1, iterations=1)


@pytest.mark.parametrize("dataset_name", ("DE", "NH"))
def test_fig10b_silc_build(benchmark, dataset_name):
    graph = get_graph(dataset_name)
    benchmark.group = f"fig10b-build-{dataset_name}"
    benchmark.pedantic(lambda: SILCEngine(graph), rounds=1, iterations=1)


@pytest.mark.parametrize("dataset_name", ("DE", "NH"))
def test_fig10b_ah_build(benchmark, dataset_name):
    graph = get_graph(dataset_name)
    benchmark.group = f"fig10b-build-{dataset_name}"
    benchmark.pedantic(lambda: AHIndex(graph), rounds=1, iterations=1)


def test_fig10a_shape_silc_dwarfs_ch():
    """Panel (a): SILC's index is far larger than CH's at equal n, and
    the gap widens with n (super-linear vs linear)."""
    ratios = []
    for name in ("DE", "NH"):
        silc = get_engine("SILC", name)
        ch = get_engine("CH", name)
        ratios.append(silc.index_size() / ch.index_size())
    assert ratios[0] > 3
    assert ratios[1] > ratios[0]


def test_fig10a_shape_ah_space_linear():
    """Panel (a): AH entries per node stay ~flat across the ladder."""
    per_node = []
    for name in LADDER:
        engine = get_engine("AH", name)
        per_node.append(engine.index_size() / get_graph(name).n)
    assert max(per_node) <= 2.5 * min(per_node), per_node


def test_fig10a_shape_silc_superlinear():
    """Panel (a): SILC space grows faster than linear — and faster than
    AH's.  On the 3-point bench ladder the measured exponent is ~1.13
    (1.18 with CO included, via the CLI harness), so the assertion checks
    both super-linearity and the SILC-vs-AH ordering."""
    sizes, silc_entries, ah_entries = [], [], []
    for name in LADDER:
        graph = get_graph(name)
        sizes.append(graph.n)
        silc_entries.append(get_engine("SILC", name).index_size())
        ah_entries.append(get_engine("AH", name).index_size())
    silc_exp = growth_exponent(sizes, silc_entries)
    ah_exp = growth_exponent(sizes, ah_entries)
    assert silc_exp is not None and silc_exp > 1.08, f"SILC exponent {silc_exp}"
    assert ah_exp is not None and silc_exp > ah_exp, (silc_exp, ah_exp)


def test_fig10_ch_smallest_index():
    """CH stores the least — the paper's 'most space-economic method'."""
    for name in ("DE", "NH"):
        ch = get_engine("CH", name)
        ah = get_engine("AH", name)
        silc = get_engine("SILC", name)
        assert ch.index_size() <= ah.index_size() <= silc.index_size() * 10
