"""Perf guard for the CSR + workspace substrate (PR 1).

Times ``distance_query`` (plain Dijkstra) and ``AHIndex.distance`` on the
``NH`` suite dataset and writes ``BENCH_csr.json`` at the repo root so
future PRs can track the trajectory.

Methodology
-----------
* The pre-refactor implementation (dict-per-query Dijkstra, verbatim copy
  of the seed's ``dijkstra_distances``/``distance_query``) is embedded
  here as ``seed_distance_query`` and timed **in the same process,
  interleaved** with the live implementation, so the recorded speedups
  are apples-to-apples on the machine that ran the benchmark.
* Queries follow the paper's Figure-8 methodology: one batch per
  distance bucket Q1..Q10 (plus a uniform-random batch).  The dict
  implementation's fixed per-query cost (three dict allocations + a set)
  dominates the short buckets, while per-edge dict probing dominates the
  long ones, so the speedup is reported per bucket.
* ``seed_reference`` preserves measurements taken by actually running
  the seed code before the refactor (same container, 150 bucket-ordered
  workload pairs, best of 3 passes) — the only numbers a post-refactor
  checkout cannot reproduce.

Run directly (``python benchmarks/test_csr_speed.py``) to refresh
``BENCH_csr.json``; under pytest the same measurement doubles as a
regression guard with deliberately conservative thresholds (CI machines
are noisy — the recorded JSON, not the guard, carries the real numbers).
"""

from __future__ import annotations

import io
import json
import os
import random
import time
from heapq import heappop, heappush
from pathlib import Path

from repro import backend
from repro.baselines import HubLabelIndex
from repro.bench.harness import environment_metadata
from repro.core import AHIndex
from repro.core.serialize import load_bundle, save_bundle
from repro.datasets import dataset, generate_workloads
from repro.graph.traversal import distance_query

INF = float("inf")
DATASET = "NH"
REPEATS = 7
UNIFORM_PAIRS = 150


def visible_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1

#: Measured by running the seed implementation itself (pre-refactor
#: checkout) in this container: mean µs over the first 150 bucket-ordered
#: workload pairs, best of 3 passes; AH build in seconds.
SEED_REFERENCE = {
    "distance_query_us": 34.11,
    "ah_distance_us": 33.86,
    "ah_build_s": 13.12,
    "captured": "pre-refactor run, same container, NH, "
    "150 bucket-ordered workload pairs (queries_per_bucket=25, seed=17)",
}


# ----------------------------------------------------------------------
# The seed's dict-per-query implementation, verbatim
# ----------------------------------------------------------------------
def _seed_dijkstra_distances(graph, source, targets=None, cutoff=None, reverse=False):
    adj = graph.inn if reverse else graph.out
    dist = {source: 0.0}
    settled = {}
    pending = set(targets) if targets is not None else None
    heap = [(0.0, source)]
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        if cutoff is not None and d > cutoff:
            break
        settled[u] = d
        if pending is not None:
            pending.discard(u)
            if not pending:
                break
        for v, w in adj[u]:
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    return settled


def seed_distance_query(graph, source, target):
    settled = _seed_dijkstra_distances(graph, source, targets=(target,))
    return settled.get(target, INF)


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def _mean_us(fn, graph, pairs, repeats=REPEATS, min_sample_s=0.005):
    """Best-of-``repeats`` mean latency, with each timed sample stretched
    to at least ``min_sample_s`` by cycling the batch — a 25-query bucket
    of 2 µs queries is otherwise pure scheduler noise."""
    t0 = time.perf_counter()
    for s, t in pairs:
        fn(graph, s, t)
    once = time.perf_counter() - t0
    inner = 1 if once >= min_sample_s else int(min_sample_s / max(once, 1e-9)) + 1
    best = INF
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        for _ in range(inner):
            for s, t in pairs:
                fn(graph, s, t)
        best = min(best, (time.perf_counter() - t0) / inner)
    return best / len(pairs) * 1e6


def run_benchmark():
    graph = dataset(DATASET)
    workloads = generate_workloads(graph, queries_per_bucket=25, seed=17)
    rng = random.Random(7)
    uniform = [
        (rng.randrange(graph.n), rng.randrange(graph.n))
        for _ in range(UNIFORM_PAIRS)
    ]

    batches = {f"Q{b}": list(workloads.bucket(b)) for b in workloads.non_empty_buckets()}
    batches["uniform"] = uniform
    all_pairs = [
        p for name, pairs in batches.items() if name != "uniform" for p in pairs
    ]
    short_heavy = all_pairs[:150]  # the seed_reference pair set

    # AH first, while the process heap is clean: the seed_reference
    # numbers were captured in a fresh process, and an index built after
    # two hundred thousand dict-churning reference queries gets its
    # adjacency tuples scattered across a fragmented heap (measurably
    # slower through no fault of its own).
    t0 = time.perf_counter()
    ah = AHIndex(graph)
    ah_build_s = time.perf_counter() - t0
    # The build saturates the CPU; let any cgroup quota / thermal
    # throttling recover before the clocks start.
    time.sleep(2.0)
    ah_us = _mean_us(lambda g, s, t: ah.distance(s, t), graph, short_heavy, repeats=11)
    csr_ref_us = _mean_us(distance_query, graph, short_heavy, repeats=11)

    # Warm both Dijkstra implementations (view materialisation, workspace
    # pool, bytecode specialisation) before the A/B clocks start.
    for s, t in uniform[:30]:
        assert abs(seed_distance_query(graph, s, t) - distance_query(graph, s, t)) < 1e-9

    dq = {}
    # Interleave seed/new per batch so machine drift hits both equally.
    for name, pairs in batches.items():
        seed_us = _mean_us(seed_distance_query, graph, pairs)
        csr_us = _mean_us(distance_query, graph, pairs)
        dq[name] = {
            "queries": len(pairs),
            "seed_us": round(seed_us, 3),
            "csr_us": round(csr_us, 3),
            "speedup": round(seed_us / csr_us, 3),
        }

    seed_us = _mean_us(seed_distance_query, graph, all_pairs, repeats=3)
    csr_us = _mean_us(distance_query, graph, all_pairs, repeats=3)
    dq["all_buckets"] = {
        "queries": len(all_pairs),
        "seed_us": round(seed_us, 3),
        "csr_us": round(csr_us, 3),
        "speedup": round(seed_us / csr_us, 3),
    }

    bucket_speedups = [
        rec["speedup"] for name, rec in dq.items() if name.startswith("Q")
    ]
    result = {
        "dataset": DATASET,
        "n": graph.n,
        "m": graph.m,
        "environment": environment_metadata(),
        "method": "in-process interleaved A/B vs embedded seed (dict) "
        "implementation; best-of-%d batch means" % REPEATS,
        "headline": {
            "best_bucket_speedup": max(bucket_speedups),
            "mean_bucket_speedup": round(
                sum(bucket_speedups) / len(bucket_speedups), 3
            ),
            "all_buckets_speedup": dq["all_buckets"]["speedup"],
            "note": "dict->workspace wins scale inversely with query "
            "length: the fixed per-query dict/set allocations dominate "
            "short (Q1-Q3) queries, per-edge dict probing the long ones; "
            "heapq C time (identical on both sides) bounds the long-range "
            "ratio",
        },
        "seed_reference": SEED_REFERENCE,
        "distance_query": dq,
        "distance_query_vs_seed_reference": {
            "csr_us": round(csr_ref_us, 3),
            "seed_us": SEED_REFERENCE["distance_query_us"],
            "speedup": round(SEED_REFERENCE["distance_query_us"] / csr_ref_us, 3),
        },
        "ah": {
            "build_s": round(ah_build_s, 3),
            "distance_us": round(ah_us, 3),
            "seed_us": SEED_REFERENCE["ah_distance_us"],
            "speedup_vs_seed_reference": round(
                SEED_REFERENCE["ah_distance_us"] / ah_us, 3
            ),
        },
        "bundle_io": _bench_bundle_io(graph),
    }
    return result


def _naive_label_io_s(hl, repeats=7):
    """Per-entry ``struct`` packing of the label columns — the baseline
    flat-section I/O replaces.  Embedded here (PR-1 methodology: keep
    the slow implementation in the benchmark) so the recorded ratio is
    reproducible on the machine that ran it."""
    import struct as _struct

    cols = (hl.fwd_head, hl.fwd_hub, hl.fwd_dist, hl.fwd_parent,
            hl.bwd_head, hl.bwd_hub, hl.bwd_dist, hl.bwd_parent)
    best = float("inf")
    blob = None
    for _ in range(repeats):
        sink = io.BytesIO()
        t0 = time.perf_counter()
        for col in cols:
            code = "<d" if col.typecode == "d" else "<q"
            for value in col:
                sink.write(_struct.pack(code, value))
        best = min(best, time.perf_counter() - t0)
        blob = sink.getvalue()
    read_best = float("inf")
    for _ in range(repeats):
        src = io.BytesIO(blob)
        t0 = time.perf_counter()
        out = []
        for col in cols:
            code = "<d" if col.typecode == "d" else "<q"
            out.append([
                _struct.unpack(code, src.read(8))[0] for _ in range(len(col))
            ])
        read_best = min(read_best, time.perf_counter() - t0)
    return best, read_best


def _bench_bundle_io(graph, repeats=7):
    """Save/load a full HL bundle per backend — the serialize fast path.

    Flat sections move as whole-column ``tobytes`` blocks either way, so
    both backends are timed side by side (the backend dimension); bytes
    are asserted identical first, because a fast divergent format would
    be a bug, not a win.  The embedded per-entry ``struct`` baseline
    shows what whole-column I/O buys over packing one value at a time.
    """
    hl = HubLabelIndex(graph)
    blobs = {}
    timings = {}
    names = (["numpy"] if backend.HAS_NUMPY else []) + ["pure-python"]
    for name in names:
        with backend.forced(name):
            buf = io.BytesIO()
            save_bundle(hl, buf)
            blobs[name] = buf.getvalue()
            save_best = load_best = float("inf")
            for _ in range(repeats):
                sink = io.BytesIO()
                t0 = time.perf_counter()
                save_bundle(hl, sink)
                save_best = min(save_best, time.perf_counter() - t0)
                src = io.BytesIO(blobs[name])
                t0 = time.perf_counter()
                load_bundle(src)
                load_best = min(load_best, time.perf_counter() - t0)
            timings[name] = {
                "save_s": round(save_best, 5),
                "load_s": round(load_best, 5),
            }
    assert len(set(blobs.values())) == 1, "bundle bytes differ across backends"
    naive_save_s, naive_load_s = _naive_label_io_s(hl, repeats=3)
    flat = timings["numpy" if backend.HAS_NUMPY else "pure-python"]
    return {
        "what": "HL bundle (graph + labels + middles) via BytesIO",
        "bytes": len(next(iter(blobs.values()))),
        "backends": timings,
        "per_entry_struct_baseline": {
            "what": "label columns only, one struct.pack/unpack per entry",
            "save_s": round(naive_save_s, 5),
            "load_s": round(naive_load_s, 5),
            "flat_save_speedup": round(naive_save_s / flat["save_s"], 1),
            "flat_load_speedup": round(naive_load_s / flat["load_s"], 1),
        },
    }


def write_json(result, path=None):
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_csr.json"
    Path(path).write_text(json.dumps(result, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# Pytest guard
# ----------------------------------------------------------------------
def test_csr_substrate_speed():
    """Workspace Dijkstra must beat the dict implementation everywhere,
    decisively on the short buckets, and AH must stay far below plain
    Dijkstra on the same pairs (its whole point)."""
    result = run_benchmark()
    dq = result["distance_query"]
    # Timing floors only where the clock is physical: a starved 1-CPU
    # container time-shares both sides of every A/B and the ratios
    # measure scheduler noise (ROADMAP measurement discipline).  The
    # recorded JSON carries every number on every box either way.
    if visible_cpus() >= 2:
        # Every bucket at least breaks even (generous margin for CI noise).
        for name, rec in dq.items():
            assert rec["speedup"] >= 1.05, f"{name}: {rec}"
        # Short buckets are where the dict implementation's per-query
        # allocations dominate; demand a solid win there.
        short = [dq[q]["speedup"] for q in ("Q1", "Q2", "Q3") if q in dq]
        assert short and max(short) >= 1.3, f"short buckets too slow: {short}"
        # Overall win across the full workload.
        assert dq["all_buckets"]["speedup"] >= 1.15, dq["all_buckets"]
        # AH regression guard: far faster than plain Dijkstra on mixed pairs.
        assert result["ah"]["distance_us"] < dq["all_buckets"]["csr_us"]
    # The committed BENCH_csr.json is refreshed explicitly (run this file
    # directly, on a quiet machine) — a noisy CI box should gate, not
    # overwrite the recorded trajectory.


if __name__ == "__main__":
    res = run_benchmark()
    out = write_json(res)
    print(json.dumps(res, indent=2))
    print(f"\nwrote {out}")
