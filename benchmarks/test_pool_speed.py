"""Perf + parity guard for the multi-process worker tier (PR 5).

Two A/Bs on ``NH``, both **parity-asserted before any clocks**:

* **Pool serving**: the ISSUE-4 skewed closed-loop workload served by a
  4-worker :class:`repro.serve.pool.WorkerPool` behind the same
  :class:`~repro.serve.Server`, against the PR 4 single-process server.
  Pool results must be bit-identical to the single-process results
  (which are themselves pinned bit-identical to per-query engine
  calls).
* **Parallel label build**: ``HubLabelIndex(build_workers=4)`` over a
  shared contraction, against the verbatim serial build.  The flattened
  label columns must be **byte-for-byte identical** (asserted on the
  full serialized bundle) before the timings are recorded.

Results go to ``BENCH_pool.json`` with environment metadata *plus the
visible CPU count* — the speedups here are hardware-gated in a way the
single-process benches are not: on a 1-CPU container N workers
time-share one core and the IPC is pure overhead, so the recorded
ratio documents the machine as much as the code.  The ISSUE's
acceptance bars (pool serving >= 2.5x, parallel build >= 2x, both with
4 workers) are only reachable with >= 4 cores; the pytest guard
therefore asserts parity, dispatch structure and crash-free operation
unconditionally, and timing floors only when the box has enough cores
to make them physical.

``--check`` (CI, both backend legs): 2 workers, small workload, parity
+ byte-identity + "every worker actually served" only — no timing.
Writes ``BENCH_pool.check.json`` so the committed timing record is
never clobbered by a CI reproduction.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro import backend
from repro.baselines import DistanceCache, HubLabelIndex
from repro.baselines.ch import contract_graph
from repro.bench.harness import ServeRecord, environment_metadata, run_closed_loop
from repro.core.serialize import bundle_bytes
from repro.datasets import dataset
from repro.serve import WorkerPool

from test_serve_speed import build_workload, sequential_reference, workload_pairs

INF = float("inf")
DATASET = "NH"
POOL_WORKERS = 4
CLIENTS = 1000
ROUNDS = 3
REPEATS = 3
BUILD_REPEATS = 3


def visible_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _served_flat(per_client):
    return [result for client in per_client for result in client]


def _single_process_run(hl, scripts):
    """One cold-cache single-process served run (the PR 4 tier)."""
    seconds, per_client, stats = run_closed_loop(
        hl, scripts, cache=DistanceCache(1 << 16)
    )
    return seconds, _served_flat(per_client), stats


def _pool_run(blob, scripts, workers):
    """One cold-cache pool-served run; fresh pool (fresh shared cache)."""
    pool = WorkerPool(blob, workers=workers, cache=DistanceCache(1 << 16))
    try:
        seconds, per_client, stats = run_closed_loop(
            None, scripts, pool=pool
        )
    finally:
        pool.close()
    return seconds, _served_flat(per_client), stats


def bench_serving(hl, blob, scripts, reference, requests, workers=POOL_WORKERS):
    """Pool vs single-process closed loop, best-of-``REPEATS`` each."""
    single_s = INF
    single_stats = None
    for _ in range(REPEATS):
        seconds, flat, stats = _single_process_run(hl, scripts)
        assert flat == reference, "single-process served != per-query calls"
        if seconds < single_s:
            single_s, single_stats = seconds, stats

    pool_s = INF
    pool_stats = None
    for _ in range(REPEATS):
        seconds, flat, stats = _pool_run(blob, scripts, workers)
        assert flat == reference, "pool served != per-query calls"
        if seconds < pool_s:
            pool_s, pool_stats = seconds, stats

    record = ServeRecord(
        engine=hl.name,
        dataset=DATASET,
        clients=len(scripts),
        requests=requests,
        seconds=round(pool_s, 5),
        requests_per_s=round(requests / pool_s, 1),
        batches=pool_stats["batches"],
        mean_batch_size=pool_stats["mean_batch_size"],
        cache_hit_rate=round(pool_stats["pool"]["cache"]["hit_rate"], 4),
    )
    tier = pool_stats["pool"]
    return {
        "workers": workers,
        "single_process_s": round(single_s, 5),
        "single_process_req_per_s": round(requests / single_s, 1),
        "pool_s": round(pool_s, 5),
        "pool_req_per_s": round(requests / pool_s, 1),
        "pool_vs_single_speedup": round(single_s / pool_s, 3),
        "single_mean_batch": single_stats["mean_batch_size"],
        "pool_mean_batch": pool_stats["mean_batch_size"],
        "dispatch": {
            "dispatches": tier["dispatches"],
            "mean_imbalance": tier["mean_dispatch_imbalance"],
            "transport": tier["transport"],
            "per_worker_batches": [w["batches"] for w in tier["per_worker"]],
            "per_worker_busy_s": [w["busy_s"] for w in tier["per_worker"]],
        },
        "record": asdict(record),
    }


def bench_build(graph, workers=POOL_WORKERS):
    """Serial vs band-parallel label build over one shared contraction.

    The contraction is excluded from both sides (it is shared in
    deployments that care — the ISSUE's 2x bar is about the label
    phase); byte-identity of the full bundle is asserted before any
    timing is recorded.
    """
    res = contract_graph(graph)
    serial = HubLabelIndex(graph, contraction=res)
    parallel = HubLabelIndex(graph, contraction=res, build_workers=workers)
    assert bundle_bytes(serial) == bundle_bytes(parallel), (
        "parallel-build labels are not byte-identical to the serial build"
    )

    serial_s = INF
    for _ in range(BUILD_REPEATS):
        t0 = time.perf_counter()
        HubLabelIndex(graph, contraction=res)
        serial_s = min(serial_s, time.perf_counter() - t0)
    parallel_s = INF
    build_info = None
    for _ in range(BUILD_REPEATS):
        t0 = time.perf_counter()
        built = HubLabelIndex(graph, contraction=res, build_workers=workers)
        elapsed = time.perf_counter() - t0
        if elapsed < parallel_s:
            parallel_s, build_info = elapsed, built.build_info
    return {
        "workers": workers,
        "byte_identical": True,
        "label_entries": serial.label_count,
        "serial_label_s": round(serial_s, 4),
        "parallel_label_s": round(parallel_s, 4),
        "parallel_vs_serial_speedup": round(serial_s / parallel_s, 3),
        "bands": build_info["bands"],
        "largest_band": build_info["largest_band"],
        "parent_built_nodes": build_info["parent_built_nodes"],
    }


def build_and_verify(clients=CLIENTS, rounds=ROUNDS):
    graph = dataset(DATASET)
    hl = HubLabelIndex(graph)
    blob = bundle_bytes(hl)
    scripts = build_workload(graph, clients=clients, rounds=rounds)
    reference = sequential_reference(hl, scripts)
    result = {
        "dataset": DATASET,
        "n": graph.n,
        "m": graph.m,
        "environment": environment_metadata(),
        "visible_cpus": visible_cpus(),
        "bundle_bytes": len(blob),
        "workload": {
            "clients": clients,
            "requests": clients * rounds,
            "underlying_pairs": workload_pairs(scripts),
            "shape": "ISSUE-4 skewed closed loop (75% one-to-many to hot "
            "order pools, pareto endpoints)",
        },
    }
    return graph, hl, blob, scripts, reference, clients * rounds, result


def run_benchmark():
    graph, hl, blob, scripts, reference, requests, result = build_and_verify()
    cpus = visible_cpus()
    backends = {}
    names = (["numpy"] if backend.HAS_NUMPY else []) + ["pure"]
    for name in names:
        with backend.forced(name):
            backends[backend.active()] = bench_serving(
                hl, blob, scripts, reference, requests
            )
    build = bench_build(graph)
    headline = {
        "note": "pool = Server over a %d-worker WorkerPool (bundle-booted "
        "replicas, group-preserving dispatch, shared dispatcher cache); "
        "single = the PR 4 one-process Server.  Parity asserted before "
        "every clock; parallel-build labels byte-identical to serial.  "
        "The speedups are hardware-gated: this box exposes %d CPU(s), "
        "so N workers time-share and the ISSUE's multicore bars "
        "(>= 2.5x serve, >= 2x build on 4 cores) are not physical here "
        "— the recorded ratio is the honest 1-core cost of the IPC."
        % (POOL_WORKERS, cpus),
        "visible_cpus": cpus,
        "build_parallel_vs_serial": build["parallel_vs_serial_speedup"],
    }
    for name, rec in backends.items():
        headline[f"{name}_pool_vs_single"] = rec["pool_vs_single_speedup"]
        headline[f"{name}_pool_req_per_s"] = rec["pool_req_per_s"]
    result.update(
        {
            "method": "closed-loop, best-of-%d per side, cold cache and "
            "fresh pool per served repeat, backends A/B'd in one process; "
            "build best-of-%d over one shared contraction" % (REPEATS, BUILD_REPEATS),
            "headline": headline,
            "serving": backends,
            "parallel_build": build,
        }
    )
    return result


def run_check(workers=2):
    """CI mode: parity + structure only — no timing, no flake."""
    graph, hl, blob, scripts, reference, requests, result = build_and_verify(
        clients=200, rounds=2
    )
    checks = {}
    names = (["numpy"] if backend.HAS_NUMPY else []) + ["pure"]
    for name in names:
        with backend.forced(name):
            _, flat, stats = _pool_run(blob, scripts, workers)
            assert flat == reference, f"{name}: pool served != per-query calls"
            tier = stats["pool"]
            per_worker = [w["batches"] for w in tier["per_worker"]]
            assert all(b > 0 for b in per_worker), (
                f"{name}: a worker served nothing: {per_worker}"
            )
            assert stats["worker_failed"] == 0, stats
            checks[backend.active()] = {
                "parity": "bit-identical to per-query distance() calls",
                "requests": requests,
                "workers": workers,
                "per_worker_batches": per_worker,
                "mean_dispatch_imbalance": tier["mean_dispatch_imbalance"],
                "respawns": tier["respawns"],
            }
    # Parallel build byte-identity with the check-mode worker count.
    res = contract_graph(graph)
    serial = HubLabelIndex(graph, contraction=res)
    parallel = HubLabelIndex(graph, contraction=res, build_workers=workers)
    assert bundle_bytes(serial) == bundle_bytes(parallel)
    result["parallel_build"] = {
        "workers": workers,
        "byte_identical": True,
        "bands": parallel.build_info["bands"],
    }
    result["mode"] = "check (parity + structure; timings omitted)"
    result["serving"] = checks
    return result


def write_json(result, path=None):
    if path is None:
        name = "BENCH_pool.check.json" if "mode" in result else "BENCH_pool.json"
        path = Path(__file__).resolve().parent.parent / name
    Path(path).write_text(json.dumps(result, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# Pytest guard
# ----------------------------------------------------------------------
def test_pool_speed():
    """Pool tier: exactness and structure always; timing only when physical.

    Parity (pool == single-process == per-query) and build byte-identity
    gate unconditionally.  Timing floors apply only on boxes with >= 4
    visible CPUs, where the parallel ratios mean something; on smaller
    boxes the run still records the honest numbers to BENCH_pool.json's
    shape without asserting them.
    """
    result = run_benchmark()
    build = result["parallel_build"]
    assert build["byte_identical"]
    for rec in result["serving"].values():
        assert rec["dispatch"]["dispatches"] > 0
        assert all(b > 0 for b in rec["dispatch"]["per_worker_batches"]), rec
    if result["visible_cpus"] >= POOL_WORKERS:
        # Deliberately conservative floors (the committed BENCH_pool.json
        # carries the real quiet-machine numbers).
        if backend.HAS_NUMPY:
            assert result["serving"]["numpy"]["pool_vs_single_speedup"] >= 1.5
        assert build["parallel_vs_serial_speedup"] >= 1.3


if __name__ == "__main__":
    if "--check" in sys.argv[1:]:
        res = run_check()
    else:
        res = run_benchmark()
    out = write_json(res)
    print(json.dumps(res, indent=2))
    print(f"\nwrote {out}")
