"""Perf + parity guard for the multi-process worker tier (PR 5).

Two A/Bs on ``NH``, both **parity-asserted before any clocks**:

* **Pool serving**: the ISSUE-4 skewed closed-loop workload served by a
  4-worker :class:`repro.serve.pool.WorkerPool` behind the same
  :class:`~repro.serve.Server`, against the PR 4 single-process server.
  Pool results must be bit-identical to the single-process results
  (which are themselves pinned bit-identical to per-query engine
  calls).
* **Parallel label build**: ``HubLabelIndex(build_workers=4)`` over a
  shared contraction, against the verbatim serial build.  The flattened
  label columns must be **byte-for-byte identical** (asserted on the
  full serialized bundle) before the timings are recorded.

Results go to ``BENCH_pool.json`` with environment metadata *plus the
visible CPU count* — the speedups here are hardware-gated in a way the
single-process benches are not: on a 1-CPU container N workers
time-share one core and the IPC is pure overhead, so the recorded
ratio documents the machine as much as the code.  The ISSUE's
acceptance bars (pool serving >= 2.5x, parallel build >= 2x, both with
4 workers) are only reachable with >= 4 cores; the pytest guard
therefore asserts parity, dispatch structure and crash-free operation
unconditionally, and timing floors only when the box has enough cores
to make them physical.

A third A/B (PR 6) compares the **reply transports**: the same workload
served once over shared-memory reply lanes and once over the plain
pickle-over-pipe path.  Its headline metric — bytes moved over the
reply pipes — is hardware-independent, so the ISSUE's >= 10x reduction
bar is a *hard* assertion in every mode (the wall-clock delta stays
CPU-gated like everything else), and the run verifies that no
``/dev/shm`` segment outlives its pool.

PR 9 adds the two symmetric A/Bs:

* **Request transports**: the same workload dispatched once through the
  shared-memory request rings (packed REQCOL columns + ~60 B control
  frames) and once over pickled-request pipes.  Request pipe bytes are
  deterministic, so the >= 10x reduction bar is hard in every mode.
* **Build pipeline**: ``HubLabelIndex(build_workers=4)`` barrier vs
  pipelined sync fabric, byte-identity vs the serial build asserted on
  both before any clock.  Sync bytes (pickled entry broadcasts vs
  packed LBLCHUNK columns through the shared ring) are deterministic —
  the >= 5x reduction bar is hard — while the pipelined-not-slower
  wall-clock check stays CPU-gated.

``--check`` (CI, both backend legs): 2 workers, small workload, parity
+ byte-identity + reply/request-path byte ratios + build-pipeline sync
ratio + "every worker actually served" only — no timing.  Writes
``BENCH_pool.check.json`` so the committed timing record is never
clobbered by a CI reproduction.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro import backend
from repro.baselines import DistanceCache, HubLabelIndex
from repro.baselines.ch import contract_graph
from repro.bench.harness import ServeRecord, environment_metadata, run_closed_loop
from repro.core.serialize import bundle_bytes
from repro.datasets import dataset
from repro.serve import WorkerPool

from test_serve_speed import build_workload, sequential_reference, workload_pairs

INF = float("inf")
DATASET = "NH"
POOL_WORKERS = 4
CLIENTS = 1000
ROUNDS = 3
REPEATS = 3
BUILD_REPEATS = 3


def visible_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _served_flat(per_client):
    return [result for client in per_client for result in client]


def _single_process_run(hl, scripts):
    """One cold-cache single-process served run (the PR 4 tier)."""
    seconds, per_client, stats = run_closed_loop(
        hl, scripts, cache=DistanceCache(1 << 16)
    )
    return seconds, _served_flat(per_client), stats


def _pool_run(blob, scripts, workers, reply_transport="auto",
              request_transport="auto"):
    """One cold-cache pool-served run; fresh pool (fresh shared cache)."""
    pool = WorkerPool(
        blob,
        workers=workers,
        cache=DistanceCache(1 << 16),
        reply_transport=reply_transport,
        request_transport=request_transport,
    )
    lanes = pool.lane_names()
    try:
        seconds, per_client, stats = run_closed_loop(
            None, scripts, pool=pool
        )
    finally:
        pool.close()
    _assert_no_leaked_lanes(lanes)
    return seconds, _served_flat(per_client), stats


def _assert_no_leaked_lanes(names):
    """Every lane segment (reply and request) dies with its pool."""
    from multiprocessing import shared_memory

    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        raise AssertionError(f"lane {name} outlived its pool")


def bench_reply_path(blob, scripts, reference, requests, workers=POOL_WORKERS):
    """Pipe-vs-shm reply transport A/B on the same served workload.

    Both runs are parity-asserted against the per-query reference.  The
    headline metric is *reply bytes moved over the pipes* — a
    hardware-independent count (control frames vs pickled payload
    blobs), so the >= 10x reduction bar is asserted here, hard, in every
    mode.  Wall times are recorded for the trajectory but not asserted
    (on a 1-CPU box they measure time-sharing, not transport).
    """
    out = {}
    for transport in ("shm", "pipe"):
        seconds, flat, stats = _pool_run(
            blob, scripts, workers, reply_transport=transport
        )
        assert flat == reference, (
            f"{transport}: pool served != per-query calls"
        )
        rp = stats["pool"]["reply_path"]
        assert rp["transport"] == transport
        out[transport] = {
            "seconds": round(seconds, 5),
            "requests_per_s": round(requests / seconds, 1),
            "reply_pipe_bytes": rp["pipe_bytes"],
            "reply_shm_bytes": rp["shm_bytes"],
            "oversized_replies": rp["oversized_replies"],
        }
    ratio = out["pipe"]["reply_pipe_bytes"] / max(
        1, out["shm"]["reply_pipe_bytes"]
    )
    assert ratio >= 10.0, (
        f"shm reply path moved only {ratio:.1f}x fewer pipe bytes: {out}"
    )
    return {
        "workers": workers,
        "pipe_vs_shm_reply_pipe_byte_ratio": round(ratio, 1),
        "no_leaked_segments": True,
        "transports": out,
    }


def bench_request_path(blob, scripts, reference, requests, workers=POOL_WORKERS):
    """Pipe-vs-shm *request* transport A/B — the PR 9 symmetric leg.

    Same contract as :func:`bench_reply_path`, pointed at the dispatch
    side: request bytes over the pipes (control frames vs pickled
    ``List[Request]`` batches) are deterministic, so the >= 10x
    reduction bar is hard in every mode.  Both runs are parity-asserted
    against the per-query reference first.
    """
    out = {}
    for transport in ("shm", "pipe"):
        seconds, flat, stats = _pool_run(
            blob, scripts, workers, request_transport=transport
        )
        assert flat == reference, (
            f"request {transport}: pool served != per-query calls"
        )
        rp = stats["pool"]["request_path"]
        assert rp["transport"] == transport
        assert rp["crc_failures"] == 0
        out[transport] = {
            "seconds": round(seconds, 5),
            "requests_per_s": round(requests / seconds, 1),
            "request_pipe_bytes": rp["pipe_bytes"],
            "request_shm_bytes": rp["shm_bytes"],
            "oversized_batches": rp["oversized_batches"],
            "pickled_batches": rp["pickled_batches"],
        }
    assert out["shm"]["pickled_batches"] == 0, out  # everything packed
    ratio = out["pipe"]["request_pipe_bytes"] / max(
        1, out["shm"]["request_pipe_bytes"]
    )
    assert ratio >= 10.0, (
        f"shm request path moved only {ratio:.1f}x fewer pipe bytes: {out}"
    )
    return {
        "workers": workers,
        "pipe_vs_shm_request_pipe_byte_ratio": round(ratio, 1),
        "no_leaked_segments": True,
        "transports": out,
    }


def bench_build_pipeline(graph, workers=POOL_WORKERS, repeats=BUILD_REPEATS):
    """Barrier vs pipelined band-build sync fabric, one shared contraction.

    Byte-identity of both builds against the serial bundle gates before
    any clock.  Sync bytes are deterministic, so the >= 5x total
    reduction bar (pickled acked entry broadcasts -> packed LBLCHUNK
    columns through the shared ring) asserts here, hard, in every mode;
    the wall-clock comparison is recorded always and asserted only by
    the CPU-gated caller.
    """
    res = contract_graph(graph)
    serial_bytes = bundle_bytes(HubLabelIndex(graph, contraction=res))

    def _one(pipeline):
        best_s = INF
        info = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            built = HubLabelIndex(
                graph,
                contraction=res,
                build_workers=workers,
                build_pipeline=pipeline,
            )
            elapsed = time.perf_counter() - t0
            assert bundle_bytes(built) == serial_bytes, (
                f"{'pipelined' if pipeline else 'barrier'} build is not "
                "byte-identical to the serial build"
            )
            if elapsed < best_s:
                best_s, info = elapsed, built.build_info
        return best_s, info

    barrier_s, barrier_info = _one(False)
    piped_s, piped_info = _one(True)
    barrier_total = (
        barrier_info["sync"]["shm_bytes"] + barrier_info["sync"]["pipe_bytes"]
    )
    piped_total = (
        piped_info["sync"]["shm_bytes"] + piped_info["sync"]["pipe_bytes"]
    )
    ratio = barrier_total / max(1, piped_total)
    assert ratio >= 5.0, (
        f"packed-column sync moved only {ratio:.1f}x fewer bytes "
        f"({barrier_total} -> {piped_total})"
    )
    return {
        "workers": workers,
        "byte_identical": True,
        "barrier_s": round(barrier_s, 4),
        "pipelined_s": round(piped_s, 4),
        "pipelined_vs_barrier_speedup": round(barrier_s / piped_s, 3),
        "sync_byte_reduction": round(ratio, 1),
        "barrier_sync": barrier_info["sync"],
        "pipelined_sync": piped_info["sync"],
        "overlap_fraction": piped_info["sync"]["overlap_fraction"],
    }


def bench_serving(hl, blob, scripts, reference, requests, workers=POOL_WORKERS):
    """Pool vs single-process closed loop, best-of-``REPEATS`` each."""
    single_s = INF
    single_stats = None
    for _ in range(REPEATS):
        seconds, flat, stats = _single_process_run(hl, scripts)
        assert flat == reference, "single-process served != per-query calls"
        if seconds < single_s:
            single_s, single_stats = seconds, stats

    pool_s = INF
    pool_stats = None
    for _ in range(REPEATS):
        seconds, flat, stats = _pool_run(blob, scripts, workers)
        assert flat == reference, "pool served != per-query calls"
        if seconds < pool_s:
            pool_s, pool_stats = seconds, stats

    record = ServeRecord(
        engine=hl.name,
        dataset=DATASET,
        clients=len(scripts),
        requests=requests,
        seconds=round(pool_s, 5),
        requests_per_s=round(requests / pool_s, 1),
        batches=pool_stats["batches"],
        mean_batch_size=pool_stats["mean_batch_size"],
        cache_hit_rate=round(pool_stats["pool"]["cache"]["hit_rate"], 4),
    )
    tier = pool_stats["pool"]
    return {
        "workers": workers,
        "single_process_s": round(single_s, 5),
        "single_process_req_per_s": round(requests / single_s, 1),
        "pool_s": round(pool_s, 5),
        "pool_req_per_s": round(requests / pool_s, 1),
        "pool_vs_single_speedup": round(single_s / pool_s, 3),
        "single_mean_batch": single_stats["mean_batch_size"],
        "pool_mean_batch": pool_stats["mean_batch_size"],
        "dispatch": {
            "dispatches": tier["dispatches"],
            "mean_imbalance": tier["mean_dispatch_imbalance"],
            "transport": tier["transport"],
            "per_worker_batches": [w["batches"] for w in tier["per_worker"]],
            "per_worker_busy_s": [w["busy_s"] for w in tier["per_worker"]],
        },
        "record": asdict(record),
    }


def bench_build(graph, workers=POOL_WORKERS):
    """Serial vs band-parallel label build over one shared contraction.

    The contraction is excluded from both sides (it is shared in
    deployments that care — the ISSUE's 2x bar is about the label
    phase); byte-identity of the full bundle is asserted before any
    timing is recorded.
    """
    res = contract_graph(graph)
    serial = HubLabelIndex(graph, contraction=res)
    parallel = HubLabelIndex(graph, contraction=res, build_workers=workers)
    assert bundle_bytes(serial) == bundle_bytes(parallel), (
        "parallel-build labels are not byte-identical to the serial build"
    )

    serial_s = INF
    for _ in range(BUILD_REPEATS):
        t0 = time.perf_counter()
        HubLabelIndex(graph, contraction=res)
        serial_s = min(serial_s, time.perf_counter() - t0)
    parallel_s = INF
    build_info = None
    for _ in range(BUILD_REPEATS):
        t0 = time.perf_counter()
        built = HubLabelIndex(graph, contraction=res, build_workers=workers)
        elapsed = time.perf_counter() - t0
        if elapsed < parallel_s:
            parallel_s, build_info = elapsed, built.build_info
    return {
        "workers": workers,
        "byte_identical": True,
        "label_entries": serial.label_count,
        "serial_label_s": round(serial_s, 4),
        "parallel_label_s": round(parallel_s, 4),
        "parallel_vs_serial_speedup": round(serial_s / parallel_s, 3),
        "bands": build_info["bands"],
        "largest_band": build_info["largest_band"],
        "parent_built_nodes": build_info["parent_built_nodes"],
    }


def build_and_verify(clients=CLIENTS, rounds=ROUNDS):
    graph = dataset(DATASET)
    hl = HubLabelIndex(graph)
    blob = bundle_bytes(hl)
    scripts = build_workload(graph, clients=clients, rounds=rounds)
    reference = sequential_reference(hl, scripts)
    result = {
        "dataset": DATASET,
        "n": graph.n,
        "m": graph.m,
        "environment": environment_metadata(),
        "visible_cpus": visible_cpus(),
        "bundle_bytes": len(blob),  # compact (HL2) — what workers boot from
        "bundle_bytes_flat": len(bundle_bytes(hl, compact=False)),
        "workload": {
            "clients": clients,
            "requests": clients * rounds,
            "underlying_pairs": workload_pairs(scripts),
            "shape": "ISSUE-4 skewed closed loop (75% one-to-many to hot "
            "order pools, pareto endpoints)",
        },
    }
    return graph, hl, blob, scripts, reference, clients * rounds, result


def run_benchmark():
    graph, hl, blob, scripts, reference, requests, result = build_and_verify()
    cpus = visible_cpus()
    backends = {}
    names = (["numpy"] if backend.HAS_NUMPY else []) + ["pure"]
    for name in names:
        with backend.forced(name):
            backends[backend.active()] = bench_serving(
                hl, blob, scripts, reference, requests
            )
    build = bench_build(graph)
    build_pipeline = bench_build_pipeline(graph)
    reply = bench_reply_path(blob, scripts, reference, requests)
    request = bench_request_path(blob, scripts, reference, requests)
    headline = {
        "note": "pool = Server over a %d-worker WorkerPool (bundle-booted "
        "replicas, group-preserving dispatch, shared dispatcher cache); "
        "single = the PR 4 one-process Server.  Parity asserted before "
        "every clock; parallel-build labels byte-identical to serial.  "
        "The speedups are hardware-gated: this box exposes %d CPU(s), "
        "so N workers time-share and the ISSUE's multicore bars "
        "(>= 2.5x serve, >= 2x build on 4 cores) are not physical here "
        "— the recorded ratio is the honest 1-core cost of the IPC."
        % (POOL_WORKERS, cpus),
        "visible_cpus": cpus,
        "build_parallel_vs_serial": build["parallel_vs_serial_speedup"],
        "build_sync_byte_reduction": build_pipeline["sync_byte_reduction"],
        "build_overlap_fraction": build_pipeline["overlap_fraction"],
        "reply_pipe_byte_reduction": reply["pipe_vs_shm_reply_pipe_byte_ratio"],
        "request_pipe_byte_reduction": request[
            "pipe_vs_shm_request_pipe_byte_ratio"
        ],
    }
    for name, rec in backends.items():
        headline[f"{name}_pool_vs_single"] = rec["pool_vs_single_speedup"]
        headline[f"{name}_pool_req_per_s"] = rec["pool_req_per_s"]
    result.update(
        {
            "method": "closed-loop, best-of-%d per side, cold cache and "
            "fresh pool per served repeat, backends A/B'd in one process; "
            "build best-of-%d over one shared contraction; reply "
            "transports A/B'd on the identical workload" % (REPEATS, BUILD_REPEATS),
            "headline": headline,
            "serving": backends,
            "parallel_build": build,
            "build_pipeline": build_pipeline,
            "reply_path": reply,
            "request_path": request,
        }
    )
    return result


def run_check(workers=2):
    """CI mode: parity + structure only — no timing, no flake."""
    graph, hl, blob, scripts, reference, requests, result = build_and_verify(
        clients=200, rounds=2
    )
    checks = {}
    names = (["numpy"] if backend.HAS_NUMPY else []) + ["pure"]
    for name in names:
        with backend.forced(name):
            _, flat, stats = _pool_run(blob, scripts, workers)
            assert flat == reference, f"{name}: pool served != per-query calls"
            tier = stats["pool"]
            per_worker = [w["batches"] for w in tier["per_worker"]]
            assert all(b > 0 for b in per_worker), (
                f"{name}: a worker served nothing: {per_worker}"
            )
            assert stats["worker_failed"] == 0, stats
            checks[backend.active()] = {
                "parity": "bit-identical to per-query distance() calls",
                "requests": requests,
                "workers": workers,
                "per_worker_batches": per_worker,
                "mean_dispatch_imbalance": tier["mean_dispatch_imbalance"],
                "respawns": tier["respawns"],
            }
    # Parallel build byte-identity with the check-mode worker count
    # (compact and flat images both).
    res = contract_graph(graph)
    serial = HubLabelIndex(graph, contraction=res)
    parallel = HubLabelIndex(graph, contraction=res, build_workers=workers)
    assert bundle_bytes(serial) == bundle_bytes(parallel)
    assert bundle_bytes(serial, compact=False) == bundle_bytes(
        parallel, compact=False
    )
    result["parallel_build"] = {
        "workers": workers,
        "byte_identical": True,
        "bands": parallel.build_info["bands"],
    }
    # Transport A/Bs: parity + the hard >= 10x pipe-byte bars on both
    # sides (byte counts are deterministic, so check mode gates them
    # too), plus the pipelined-build sync fabric with the full 4-worker
    # count (sync bytes are deterministic as well; timings untouched).
    result["reply_path"] = bench_reply_path(
        blob, scripts, reference, requests, workers=workers
    )
    result["request_path"] = bench_request_path(
        blob, scripts, reference, requests, workers=workers
    )
    result["build_pipeline"] = bench_build_pipeline(
        graph, workers=POOL_WORKERS, repeats=1
    )
    result["mode"] = (
        "check (parity + structure + reply/request-path byte ratios + "
        "build-pipeline sync ratio; timings omitted)"
    )
    result["serving"] = checks
    return result


def write_json(result, path=None):
    if path is None:
        name = "BENCH_pool.check.json" if "mode" in result else "BENCH_pool.json"
        path = Path(__file__).resolve().parent.parent / name
    Path(path).write_text(json.dumps(result, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# Pytest guard
# ----------------------------------------------------------------------
def test_pool_speed():
    """Pool tier: exactness and structure always; timing only when physical.

    Parity (pool == single-process == per-query) and build byte-identity
    gate unconditionally.  Timing floors apply only on boxes with >= 4
    visible CPUs, where the parallel ratios mean something; on smaller
    boxes the run still records the honest numbers to BENCH_pool.json's
    shape without asserting them.
    """
    result = run_benchmark()
    build = result["parallel_build"]
    assert build["byte_identical"]
    for rec in result["serving"].values():
        assert rec["dispatch"]["dispatches"] > 0
        assert all(b > 0 for b in rec["dispatch"]["per_worker_batches"]), rec
    # PR 6 + PR 9: bytes-moved is hardware-independent — always hard.
    reply = result["reply_path"]
    assert reply["pipe_vs_shm_reply_pipe_byte_ratio"] >= 10.0, reply
    assert reply["no_leaked_segments"]
    request = result["request_path"]
    assert request["pipe_vs_shm_request_pipe_byte_ratio"] >= 10.0, request
    assert request["no_leaked_segments"]
    pipeline = result["build_pipeline"]
    assert pipeline["byte_identical"]
    assert pipeline["sync_byte_reduction"] >= 5.0, pipeline
    if result["visible_cpus"] >= POOL_WORKERS:
        # Deliberately conservative floors (the committed BENCH_pool.json
        # carries the real quiet-machine numbers).
        if backend.HAS_NUMPY:
            assert result["serving"]["numpy"]["pool_vs_single_speedup"] >= 1.5
        assert build["parallel_vs_serial_speedup"] >= 1.3
        # Overlapping sync with compute must not lose to the barrier.
        assert pipeline["pipelined_s"] <= pipeline["barrier_s"], pipeline


if __name__ == "__main__":
    if "--check" in sys.argv[1:]:
        res = run_check()
    else:
        res = run_benchmark()
    out = write_json(res)
    print(json.dumps(res, indent=2))
    print(f"\nwrote {out}")
