"""Perf guard for the serving layer (PR 4): coalescing vs sequential.

Drives the ISSUE-4 acceptance workload — a skewed closed-loop serving
load on ``NH``, 1000 concurrent clients — through the asyncio
:class:`repro.serve.Server` and compares throughput against the
*sequential per-query baseline*: the same request stream answered by a
plain loop of ``engine.distance(s, t)`` calls, one per underlying pair
(what a naive service without a batching front-end does).  Results go to
``BENCH_serve.json`` at the repo root with full environment metadata.

Workload shape (the dispatch/ETA pattern the batched kernels exist for):

* 1000 closed-loop clients, 3 requests each, awaiting every answer
  before the next request — offered concurrency = live clients.
* 75% of requests are ``one_to_many`` rows from a skewed source to one
  of four hot 40-target "order pools" (serving workloads reuse target
  sets — exactly what HL's memoized target inversion amortises); the
  pool choice is Pareto-skewed, so one pool dominates.
* 25% are point-to-point distances over Pareto-skewed hot endpoints —
  the traffic the shared :class:`DistanceCache` absorbs.

Methodology
-----------
* Parity before clocks: the served results must be **bit-identical** to
  the sequential per-query baseline on every backend (the planner's
  exactness contract; a fast wrong server is worthless).
* Both sides run best-of-``REPEATS``; each served repeat builds a fresh
  server (cold cache — the recorded hit rate is earned inside the run,
  not carried between repeats).  The backend dimension is A/B'd in one
  process via ``backend.forced``, same as ``test_hl_speed.py``.
* ``--check`` runs a smaller workload and asserts parity + that
  coalescing actually happened (mean batch size > 1) — no timing
  assertions, so CI (both the numpy and the no-numpy leg) stays immune
  to noisy-runner flake.  It writes ``BENCH_serve.check.json`` so the
  committed timing record is never clobbered.

Run directly (``python benchmarks/test_serve_speed.py``) to refresh
``BENCH_serve.json``; under pytest the same measurement doubles as a
regression guard with deliberately conservative thresholds.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro import backend
from repro.baselines import (
    DistanceCache,
    DistanceRequest,
    HubLabelIndex,
    OneToManyRequest,
)
from repro.bench.harness import (
    OpenLoopRecord,
    ServeRecord,
    environment_metadata,
    latency_percentile,
    run_closed_loop,
    run_open_loop,
)
from repro.datasets import dataset

INF = float("inf")
DATASET = "NH"
CLIENTS = 1000


def visible_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1
ROUNDS = 3
POOLS = 4
POOL_SIZE = 40
O2M_FRACTION = 0.75
HOT_NODES = 64
REPEATS = 3
SEED = 99

#: Open-loop sweep: offered arrival rates (requests/second) crossed with
#: two coalescing policies, so BENCH_serve records how p50/p99 move with
#: load under each side of the window_s/max_batch trade-off (the ROADMAP
#: "open-loop load + latency SLOs" item).
OPEN_RATES = (2000, 8000, 32000)
OPEN_POLICIES = {
    # Natural batching only: a request never waits for company, so p50
    # stays near the kernel time at low load.
    "natural": {"window_s": 0.0, "max_batch": 1024},
    # A 2 ms window trades per-request latency for wider batches — the
    # knob a throughput-bound deployment turns; the sweep shows what it
    # costs at low load and what it buys near saturation.
    "window-2ms": {"window_s": 0.002, "max_batch": 1024},
}
OPEN_REQUESTS = 3000
BURST_SIZE = 64


def build_workload(graph, clients=CLIENTS, rounds=ROUNDS, seed=SEED):
    """Per-client request scripts for the skewed closed-loop load."""
    rng = random.Random(seed)
    n = graph.n
    pools = [
        tuple(rng.randrange(n) for _ in range(POOL_SIZE)) for _ in range(POOLS)
    ]
    hot = [rng.randrange(n) for _ in range(HOT_NODES)]

    def skewed_node():
        # Pareto-ranked hot set with a uniform tail: the "millions of
        # users, few hot stations" shape skewed serving traffic has.
        if rng.random() < 0.8:
            return hot[min(int(rng.paretovariate(1.2)) - 1, HOT_NODES - 1)]
        return rng.randrange(n)

    scripts = []
    for _ in range(clients):
        script = []
        for _ in range(rounds):
            if rng.random() < O2M_FRACTION:
                pool = pools[min(int(rng.paretovariate(1.5)) - 1, POOLS - 1)]
                script.append(OneToManyRequest(skewed_node(), pool))
            else:
                script.append(DistanceRequest(skewed_node(), skewed_node()))
        scripts.append(script)
    return scripts


def workload_pairs(scripts) -> int:
    """Underlying (source, target) pairs the sequential baseline answers."""
    return sum(
        len(req.targets) if isinstance(req, OneToManyRequest) else 1
        for script in scripts
        for req in script
    )


def sequential_reference(engine, scripts):
    """The per-query baseline: one ``distance()`` call per pair.

    Returns the flat per-request results in script order — a float for
    a point request, a list for a one-to-many row — which is also the
    parity reference the served results must match bit-for-bit.
    """
    distance = engine.distance
    results = []
    for script in scripts:
        for req in script:
            if isinstance(req, OneToManyRequest):
                results.append([distance(req.source, t) for t in req.targets])
            else:
                results.append(distance(req.source, req.target))
    return results


def _served_flat(per_client):
    return [result for client in per_client for result in client]


def _serve_once(hl, scripts):
    """One cold-cache served run; returns (seconds, flat results, stats)."""
    seconds, per_client, stats = run_closed_loop(
        hl, scripts, cache=DistanceCache(1 << 16)
    )
    return seconds, _served_flat(per_client), stats


def _bench_backend(hl, scripts, reference, requests):
    """Best-of-REPEATS sequential and served timings on the active backend."""
    seq_s = INF
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        got = sequential_reference(hl, scripts)
        seq_s = min(seq_s, time.perf_counter() - t0)
    assert got == reference  # backend-independent by the parity contract

    served_s = INF
    stats = None
    for _ in range(REPEATS):
        seconds, flat, run_stats = _serve_once(hl, scripts)
        assert flat == reference, "served results diverged from per-query calls"
        if seconds < served_s:
            served_s = seconds
            stats = run_stats
    record = ServeRecord(
        engine=hl.name,
        dataset=DATASET,
        clients=len(scripts),
        requests=requests,
        seconds=round(served_s, 5),
        requests_per_s=round(requests / served_s, 1),
        batches=stats["batches"],
        mean_batch_size=stats["mean_batch_size"],
        cache_hit_rate=round(stats["planner"]["cache"]["hit_rate"], 4),
    )
    return {
        "sequential_s": round(seq_s, 5),
        "sequential_req_per_s": round(requests / seq_s, 1),
        "served_s": round(served_s, 5),
        "served_req_per_s": round(requests / served_s, 1),
        "coalesced_vs_sequential_speedup": round(seq_s / served_s, 3),
        "largest_batch": stats["largest_batch"],
        "batch_size_histogram": stats["batch_size_histogram"],
        "kernels": stats["planner"]["kernels"],
        "target_inversion": hl.target_inversion_stats(),
        "record": asdict(record),
    }


def poisson_arrivals(count, rate, seed=SEED):
    """Cumulative exponential gaps: a Poisson arrival process at ``rate``."""
    rng = random.Random(seed)
    at = 0.0
    out = []
    for _ in range(count):
        at += rng.expovariate(rate)
        out.append(at)
    return out


def bursty_arrivals(count, rate, burst=BURST_SIZE):
    """``burst`` simultaneous requests every ``burst/rate`` seconds.

    Same average offered load as the Poisson process, maximally lumpy —
    the arrival shape that separates a natural-batching server (absorbs
    the lump as one batch) from a per-request one (queues it).
    """
    period = burst / rate
    return [(i // burst) * period for i in range(count)]


def _open_loop_requests(graph, count=OPEN_REQUESTS, seed=SEED + 1):
    """Flat request stream with the closed-loop workload's shape."""
    scripts = build_workload(graph, clients=count, rounds=1, seed=seed)
    return [script[0] for script in scripts]


def _latency_summary(latencies, duration, arrival, rate, engine_name):
    """Fold one run's latencies into an OpenLoopRecord."""
    answered = sorted(lat for lat in latencies if lat is not None)
    expired = sum(1 for lat in latencies if lat is None)
    record = OpenLoopRecord(
        engine=engine_name,
        dataset=DATASET,
        arrival=arrival,
        offered_rps=rate,
        requests=len(latencies),
        completed=len(answered),
        expired=expired,
        duration_s=round(duration, 4),
        p50_ms=round(latency_percentile(answered, 0.50) * 1e3, 4),
        p99_ms=round(latency_percentile(answered, 0.99) * 1e3, 4),
        mean_ms=round(
            (sum(answered) / len(answered) * 1e3) if answered else 0.0, 4
        ),
        max_ms=round((answered[-1] * 1e3) if answered else 0.0, 4),
    )
    return record


def run_open_loop_bench(hl, graph, rates=OPEN_RATES, count=OPEN_REQUESTS):
    """p50/p99 latency vs offered load, per arrival process and policy.

    Each cell fires the same request stream on a fixed arrival schedule
    and measures answer latency from the *scheduled* arrival (so a
    lagging server accrues queueing delay — no coordinated omission).
    One run per cell: open-loop latency distributions are the
    measurement, best-of repeats would censor exactly the queueing
    noise the bench exists to expose.
    """
    requests = _open_loop_requests(graph, count=count)
    sweep = {}
    for arrival in ("poisson", "bursty"):
        by_rate = {}
        for rate in rates:
            arrivals = (
                poisson_arrivals(count, rate)
                if arrival == "poisson"
                else bursty_arrivals(count, rate)
            )
            by_policy = {}
            for policy_name, policy in OPEN_POLICIES.items():
                latencies, duration, stats = run_open_loop(
                    hl,
                    requests,
                    arrivals,
                    cache=DistanceCache(1 << 16),
                    **policy,
                )
                record = _latency_summary(latencies, duration, arrival, rate, hl.name)
                by_policy[policy_name] = {
                    "p50_ms": record.p50_ms,
                    "p99_ms": record.p99_ms,
                    "mean_ms": record.mean_ms,
                    "max_ms": record.max_ms,
                    "completed": record.completed,
                    "mean_batch_size": stats["mean_batch_size"],
                    "batches": stats["batches"],
                    "record": asdict(record),
                }
            by_rate[f"{rate}_rps"] = by_policy
        sweep[arrival] = by_rate
    sweep["note"] = (
        "open loop: requests fire on a fixed arrival schedule (poisson "
        "gaps / %d-request bursts), latency measured from the scheduled "
        "arrival so queueing delay is charged to the server, never to "
        "the clock.  The window_s trade-off is the point: the 2 ms "
        "window widens batches (throughput headroom) at the price of "
        "floor latency at low load." % BURST_SIZE
    )
    return sweep


def build_and_verify(clients=CLIENTS, rounds=ROUNDS):
    """Build HL on NH, generate the workload, pin served == sequential."""
    graph = dataset(DATASET)
    t0 = time.perf_counter()
    hl = HubLabelIndex(graph)
    build_s = time.perf_counter() - t0
    scripts = build_workload(graph, clients=clients, rounds=rounds)
    requests = clients * rounds
    reference = sequential_reference(hl, scripts)

    result = {
        "dataset": DATASET,
        "n": graph.n,
        "m": graph.m,
        "environment": environment_metadata(),
        "hl_build_s": round(build_s, 3),
        "workload": {
            "clients": clients,
            "requests": requests,
            "rounds_per_client": rounds,
            "one_to_many_fraction": O2M_FRACTION,
            "order_pools": POOLS,
            "pool_size": POOL_SIZE,
            "underlying_pairs": workload_pairs(scripts),
            "skew": "pareto hot-node sampling (80%% from a 64-node hot "
            "set), pareto-ranked pool choice; seed %d" % SEED,
        },
    }
    return hl, scripts, reference, requests, result


def run_benchmark():
    hl, scripts, reference, requests, result = build_and_verify()
    backends = {}
    if backend.HAS_NUMPY:
        with backend.forced("numpy"):
            backends["numpy"] = _bench_backend(hl, scripts, reference, requests)
    with backend.forced("pure"):
        backends["pure-python"] = _bench_backend(hl, scripts, reference, requests)
    headline = {
        "note": "coalesced = asyncio Server (natural batching, shared "
        "DistanceCache, planner kernel routing); sequential = one "
        "distance() call per underlying pair, no front-end.  Both "
        "sides answer bit-identically (asserted before recording).",
    }
    for name, rec in backends.items():
        headline[f"{name}_speedup"] = rec["coalesced_vs_sequential_speedup"]
        headline[f"{name}_served_req_per_s"] = rec["record"]["requests_per_s"]
    result.update(
        {
            "method": "closed-loop, best-of-%d per side, cold cache per "
            "served repeat, backends A/B'd in one process" % REPEATS,
            "headline": headline,
            "backends": backends,
        }
    )
    # Open-loop latency sweep on the default backend (the latency story
    # is policy/arrival-shaped; the backend dimension is covered by the
    # closed-loop A/B above).
    result["open_loop"] = {
        "backend": backend.active(),
        **run_open_loop_bench(hl, hl.graph),
    }
    return result


def run_check():
    """CI mode: parity + coalescing evidence only — no timing, no flake."""
    hl, scripts, reference, requests, result = build_and_verify(
        clients=200, rounds=2
    )
    checks = {}
    names = (["numpy"] if backend.HAS_NUMPY else []) + ["pure"]
    for name in names:
        with backend.forced(name):
            _, flat, stats = _serve_once(hl, scripts)
            assert flat == reference, f"{name}: served != per-query results"
            assert stats["mean_batch_size"] > 1.0, (
                f"{name}: no coalescing happened: {stats}"
            )
            checks[backend.active()] = {
                "parity": "bit-identical to per-query distance() calls",
                "requests": requests,
                "batches": stats["batches"],
                "mean_batch_size": stats["mean_batch_size"],
                "cache_hit_rate": round(stats["planner"]["cache"]["hit_rate"], 4),
            }
    # Open-loop smoke: one small Poisson run must answer everything.
    requests = _open_loop_requests(hl.graph, count=300)
    latencies, duration, _ = run_open_loop(
        hl, requests, poisson_arrivals(300, 4000), cache=DistanceCache(1 << 12)
    )
    assert all(lat is not None for lat in latencies), "open-loop requests shed"
    result["open_loop_smoke"] = {
        "requests": len(requests),
        "completed": len(latencies),
        "arrival": "poisson@4000rps",
    }
    result["mode"] = "check (parity + coalescing evidence; timings omitted)"
    result["backends"] = checks
    return result


def write_json(result, path=None):
    if path is None:
        # Check-mode output goes to its own (untracked) file so that
        # reproducing CI locally never clobbers the committed timing
        # record in BENCH_serve.json.
        name = "BENCH_serve.check.json" if "mode" in result else "BENCH_serve.json"
        path = Path(__file__).resolve().parent.parent / name
    Path(path).write_text(json.dumps(result, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# Pytest guard
# ----------------------------------------------------------------------
def test_serve_speed():
    """Coalesced serving must beat the sequential per-query loop.

    Quiet-machine runs measure ~5x (numpy) and ~4x (pure) on this
    workload; the pytest thresholds are deliberately conservative so a
    noisy CI box cannot flake them, and the committed BENCH_serve.json
    carries the real numbers (the ISSUE's >= 3x acceptance bar is
    checked against that recorded, quiet-machine measurement).
    """
    result = run_benchmark()
    backends = result["backends"]
    # Timing floors gate on cores — a starved 1-CPU box times the event
    # loop's time-slicing, not coalescing (ROADMAP measurement
    # discipline).  Batch-size facts are scheduling evidence, not clocks,
    # and stay hard on every box.
    if visible_cpus() >= 2:
        if backend.HAS_NUMPY:
            assert (
                backends["numpy"]["coalesced_vs_sequential_speedup"] >= 2.0
            ), backends
        # The pure fallback must also profit from coalescing (bucket-scan
        # tables + inversion memo + cache), not merely tolerate it.
        assert (
            backends["pure-python"]["coalesced_vs_sequential_speedup"] >= 1.3
        ), backends
    if backend.HAS_NUMPY:
        assert backends["numpy"]["record"]["mean_batch_size"] > 10.0, backends
    assert backends["pure-python"]["record"]["mean_batch_size"] > 10.0, backends
    # Open-loop sweep sanity (shape only — latency values are recorded,
    # not asserted, so a noisy box cannot flake this guard): nothing
    # shed, distributions ordered.
    for arrival in ("poisson", "bursty"):
        for rate_cell in result["open_loop"][arrival].values():
            for cell in rate_cell.values():
                assert cell["completed"] == cell["record"]["requests"], cell
                assert cell["p50_ms"] <= cell["p99_ms"] + 1e-9, cell
    # The committed BENCH_serve.json is refreshed explicitly (run this
    # file directly on a quiet machine); CI gates, it does not overwrite.


if __name__ == "__main__":
    if "--check" in sys.argv[1:]:
        res = run_check()
    else:
        res = run_benchmark()
    out = write_json(res)
    print(json.dumps(res, indent=2))
    print(f"\nwrote {out}")
