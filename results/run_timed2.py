import time
from repro.bench.experiments import ablation, fig89, table1

def save(name, text):
    with open(f"results/{name}.txt", "w") as fh:
        fh.write(text + "\n")
    print(f"[{time.strftime('%H:%M:%S')}] wrote results/{name}.txt", flush=True)

DATASETS = ["DE", "NH", "ME", "CO"]
save("fig8", fig89.render(fig89.run(DATASETS, kind="distance", queries_per_bucket=40,
                                    engine_kwargs={"AH": {"elevating": True}})))
save("fig9", fig89.render(fig89.run(DATASETS, kind="path", queries_per_bucket=30,
                                    engine_kwargs={"AH": {"elevating": True}})))
save("table1", table1.render(table1.run(DATASETS, queries=60)))
save("ablation", ablation.render(ablation.run("NH", queries=60)))
print("done")
