"""Archive a full harness run: every table/figure panel into results/.

Usage: python results/run_all.py [--big]
"""
import sys
import time

from repro.bench.experiments import ablation, fig3, fig10, fig89, table1, table2

BIG = "--big" in sys.argv
F89 = ["DE", "NH", "ME", "CO"] if BIG else ["DE", "NH", "ME"]
LADDER = ["DE", "NH", "ME", "CO"]


def save(name, text):
    path = f"results/{name}.txt"
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"[{time.strftime('%H:%M:%S')}] wrote {path}", flush=True)


save("table2", table2.render(table2.run(["DE", "NH", "ME", "CO", "FL", "CA"])))
save(
    "fig3_exact",
    fig3.render(fig3.run(["DE", "NH"], mode="exact", max_region_nodes=2500)),
)
save("fig3_reduced", fig3.render(fig3.run(["ME", "CO"], mode="reduced")))
save(
    "fig8",
    fig89.render(
        fig89.run(
            F89,
            kind="distance",
            queries_per_bucket=40,
            engine_kwargs={"AH": {"elevating": True}},
        )
    ),
)
save(
    "fig9",
    fig89.render(
        fig89.run(
            F89,
            kind="path",
            queries_per_bucket=30,
            engine_kwargs={"AH": {"elevating": True}},
        )
    ),
)
save("fig10", fig10.render(fig10.run(LADDER)))
save("table1", table1.render(table1.run(LADDER, queries=60)))
save("ablation", ablation.render(ablation.run("NH", queries=60)))
print("all experiments archived")
