"""Assemble EXPERIMENTS.md from the archived harness panels."""

INTRO = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (Section 6), regenerated
with this repository's harness on the scaled synthetic suite (see
DESIGN.md for the substitution rationale).  Absolute numbers are
pure-Python on laptop-scale networks; the comparisons below therefore
focus on *shape*: who wins, by roughly what factor, and where behaviour
changes.  Raw panels live in `results/` and are reproducible with
`python results/run_all.py` (or per-panel via `python -m repro.bench ...`).

Environment: CPython 3.11, single core, no C extensions.
Workloads: paper-style `Q1..Q10` distance-stratified pairs
(`repro.datasets.workloads`); `Q1` (and sometimes `Q2`) is empty on the
scaled networks because the shortest band lies below the minimum edge
travel time — the harness reports only populated buckets.

## Summary of outcomes

| Experiment | Paper's finding | Measured here | Verdict |
|---|---|---|---|
| Table 1 | AH: O(hn) space, O(h log h) distance query | entries/n flat at ~7.3-7.9 across a 5x ladder; long-range query time roughly flat in n | shape reproduced |
| Table 2 | ten-network ladder, m/n ≈ 2.4 | same ladder shape at 1/80 scale, m/n ≈ 3.6 | reproduced (scaled) |
| Figure 3 | arterial dimension small (max 97, q99 <= 60) at every resolution and size | max 38 across all datasets/resolutions; means <= 12; no growth with n | reproduced |
| Figure 8 | AH fastest on distance queries; >50% faster than CH/SILC on Q8-Q10; Dijkstra worst | AH beats CH by 27-40% on Q8-Q10 (Q10: 16 vs 27, 24 vs 33, 39 vs 62, 27 vs 46 us across the ladder); Dijkstra loses 15-90x | reproduced for AH-vs-CH and AH-vs-Dijkstra; see deviation (1) for SILC |
| Figure 9 | same ordering for path queries; AH/CH pay extra for unpacking, SILC/Dijkstra identical to Fig. 8 | path > distance for AH/CH (unpacking), SILC/Dijkstra unchanged; AH ~30x faster than Dijkstra on Q10 | reproduced |
| Figure 10a | SILC space super-linear and huge; AH linear & moderate; CH smallest | SILC n^1.18 and ~9x AH; AH n^1.03; CH smallest (n^1.01) | reproduced |
| Figure 10b | SILC prep super-linear (>1 week at 435k); AH ~linear in practice; CH minimal | SILC n^2.18; AH n^1.34 (see deviation 2); CH n^0.92 | reproduced (AH mildly super-linear, see deviation 2) |

### Deviations and their causes

1. **SILC is the fastest engine on our small networks** (it was only
   fastest on the paper's smallest dataset, DE).  At 600-3,000 nodes a
   SILC query is a handful of quadtree descents with tiny constants,
   while its super-linear space/preprocessing — the reason the paper
   drops it beyond 500k nodes — has not had room to bite.  The
   crossover the paper observed at larger n is exactly what Figure 10's
   measured growth exponents (space n^1.18, time n^2.18 vs AH's n^1.03)
   extrapolate to.
2. **AH preprocessing measures n^1.34, not the paper's observed ~linear.**
   Our level assignment is the paper's O(hn^2) algorithm implemented in
   pure Python on networks 1,000x smaller; at this scale the working-
   graph reduction (alive-set shrinkage) has not reached its asymptotic
   regime, so region sizes grow with n.  The shape-relevant claims —
   AH builds in minutes where SILC's trend points to hours, and the
   *index* stays linear — hold.
3. **AH trails CH on short/mid-range queries** (the paper wins
   everywhere).  Two Python-specific constants dominate there: the
   per-relaxation proximity test and the fatter low levels produced by
   tie-inclusive marking (DESIGN.md §4-5).  On the long-range buckets —
   the regime the paper headlines — AH's elevating edges skip those
   levels entirely and the paper's ordering is restored.  The ablation
   panel quantifies this: at 1k nodes the proximity check costs more
   than it prunes (28.8 us without vs 43.4 us with), while elevating
   edges repay their index overhead (27.1 us).  Both effects would
   invert at the paper's scales, where the pruned search space, not the
   per-edge test, dominates.
4. **Q1 (and on some datasets Q2) buckets are empty** — at 1/80 scale
   the shortest dyadic band falls below one edge's travel time.  The
   harness reports populated buckets only.

## Correctness evidence (beyond timing)

* 390+ tests green, including hypothesis property tests: every engine
  (AH in all constraint configurations, FC, CH, SILC, TNR, ALT, A*,
  bidirectional) equals Dijkstra on randomized road networks; every
  reported path revalidates edge-by-edge against the graph.
* A 36-network stress sweep (mixed towns/grid/geometric topologies,
  one-way streets, pruning; 7 engine configs x 30 queries each) found
  zero mismatches.
* The paper's lemmas hold executably on the built indexes: Lemma 3's
  covering property (no sampled violation in 200+ far pairs per
  network) and Lemma 4's density bound (`repro.core.lemmas`).
* The Figure 1/2/4 running example reproduces the paper's narrative
  exactly (arterial edges <v6,v10> and <v11,v7>, border-node sets,
  dist(v1,v10)=4, the v9->v10 route through v6).

## Archived panels

The sections below are the verbatim harness outputs.
"""

SECTIONS = [
    ("Table 1 — asymptotic bounds and measured consequences", "table1"),
    ("Table 2 — dataset suite", "table2"),
    ("Figure 3 — arterial dimension (exact mode, small datasets)", "fig3_exact"),
    ("Figure 3 — arterial dimension (reduced mode, larger datasets)", "fig3_reduced"),
    ("Figure 8 — distance query time vs Q-bucket", "fig8"),
    ("Figure 9 — shortest path query time vs Q-bucket", "fig9"),
    ("Figure 10 — index space and preprocessing time vs n", "fig10"),
    ("Ablations — AH design choices (extension)", "ablation"),
]

OUTRO = """
## Reproduction instructions

```bash
pip install -e . --no-build-isolation   # or: python setup.py develop
pytest tests/                           # full correctness suite
pytest benchmarks/ --benchmark-only     # timed suites + shape assertions
python results/run_all.py               # regenerate every panel above
```
"""

parts = [INTRO]
for title, name in SECTIONS:
    with open(f"results/{name}.txt") as fh:
        body = fh.read().rstrip()
    parts.append(f"### {title}\n\n```text\n{body}\n```\n")
parts.append(OUTRO)
with open("EXPERIMENTS.md", "w") as fh:
    fh.write("\n".join(parts))
print("EXPERIMENTS.md written")
