"""SILC: Spatially Induced Linkage Cognizance (Samet et al., SIGMOD 2008).

Reference [21] of the paper — "one of the most advanced worst-case
efficient indices".  SILC precomputes, for every source node ``u``, the
*first move* (the neighbour of ``u`` that begins a shortest path) toward
every other node, and compresses that n-way colouring into a region
quadtree over the node coordinates: contiguous areas whose nodes share
the same first move collapse into single quadtree blocks.  Queries walk
from the source, looking up one quadtree block per path node — ``O(k log
n)`` for a ``k``-edge path — and a distance query simply accumulates the
weights along the walk, which is why the paper measures identical SILC
timings for distance and path queries (Section 6.3).

Faithfulness notes:

* preprocessing runs one full Dijkstra tree per node — Θ(n² log n) — and
  total quadtree size is empirically ≈ O(n^1.5); both match the paper's
  narrative that SILC is unusable beyond mid-size inputs (it is excluded
  from datasets over 500 k nodes in the paper; our harness excludes it
  beyond a few thousand).
* the optional distance-interval refinement of the original SILC (min /
  max network-to-Euclidean ratios per block) accelerates *approximate*
  distance browsing and is orthogonal to the exact queries benchmarked
  here; we implement the exact first-move core.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..graph.graph import Graph
from ..graph.path import Path
from ..graph.workspace import acquire, release
from ..spatial.geometry import bounding_square
from .base import QueryEngine

__all__ = ["SILCEngine"]

# A quadtree is either a uniform leaf ('c', color), a mixed fallback leaf
# ('m', {(x, y): color}), or an internal node ('i', [sw, se, nw, ne]).
_QuadTree = Tuple[str, object]

_MAX_DEPTH = 48


def _build_quadtree(
    points: List[Tuple[float, float, int]], depth: int = 0
) -> Optional[_QuadTree]:
    """Recursively collapse same-colour areas into blocks.

    ``points`` carry ``(x_rel, y_rel, colour)`` with coordinates already
    normalised to the current block's ``[0, 1)²``; children renormalise.
    """
    if not points:
        return None
    first = points[0][2]
    if all(p[2] == first for p in points):
        return ("c", first)
    if depth >= _MAX_DEPTH:
        return ("m", {(x, y): c for x, y, c in points})
    quadrants: List[List[Tuple[float, float, int]]] = [[], [], [], []]
    for x, y, c in points:
        qx = 1 if x >= 0.5 else 0
        qy = 1 if y >= 0.5 else 0
        quadrants[qy * 2 + qx].append(
            (x * 2 - qx, y * 2 - qy, c)
        )
    return ("i", [_build_quadtree(q, depth + 1) for q in quadrants])


def _lookup(tree: _QuadTree, x: float, y: float) -> int:
    """Colour of the block containing normalised point ``(x, y)``."""
    while True:
        kind, payload = tree
        if kind == "c":
            return payload  # type: ignore[return-value]
        if kind == "m":
            return payload[(x, y)]  # type: ignore[index]
        qx = 1 if x >= 0.5 else 0
        qy = 1 if y >= 0.5 else 0
        child = payload[qy * 2 + qx]  # type: ignore[index]
        if child is None:
            raise KeyError("lookup fell into an empty quadtree block")
        tree = child
        x = x * 2 - qx
        y = y * 2 - qy


def _count_blocks(tree: Optional[_QuadTree]) -> int:
    if tree is None:
        return 0
    kind, payload = tree
    if kind == "i":
        return 1 + sum(_count_blocks(c) for c in payload)  # type: ignore[arg-type]
    return 1


class SILCEngine(QueryEngine):
    """First-move quadtree index with path-following queries."""

    name = "SILC"

    #: Refuse to build beyond this size by default: preprocessing is
    #: quadratic, mirroring the paper's exclusion of SILC on large data.
    DEFAULT_MAX_NODES = 20_000

    def __init__(self, graph: Graph, max_nodes: Optional[int] = None) -> None:
        super().__init__(graph)
        limit = self.DEFAULT_MAX_NODES if max_nodes is None else max_nodes
        if graph.n > limit:
            raise ValueError(
                f"SILC preprocessing is quadratic; {graph.n} nodes exceeds the "
                f"limit of {limit} (pass max_nodes to override)"
            )
        ox, oy, side = bounding_square(zip(graph.xs, graph.ys))
        # Normalise all coordinates once; quadtrees work in [0, 1)².
        self._norm: List[Tuple[float, float]] = [
            (
                min((graph.xs[u] - ox) / side, 1.0 - 1e-12),
                min((graph.ys[u] - oy) / side, 1.0 - 1e-12),
            )
            for u in graph.nodes()
        ]
        self._trees: List[Optional[_QuadTree]] = []
        self._weights: Dict[Tuple[int, int], float] = graph._weight_map()
        for u in graph.nodes():
            self._trees.append(self._build_for(u))

    def _build_for(self, u: int) -> Optional[_QuadTree]:
        """One full Dijkstra from ``u`` propagating first moves inline.

        When a node settles, its final parent is settled already, so its
        first move is inherited on the spot — no second distance-sorted
        pass over the tree, and the n-per-node preprocessing loop runs
        entirely on the shared workspace arrays.  ``first_move`` entries
        are written at settle time only, which makes them valid exactly
        for settled nodes.
        """
        graph = self.graph
        adj = graph.out
        norm = self._norm
        ws = acquire(graph)
        try:
            c = ws.begin()
            dist = ws.dist
            visit = ws.visit
            parent = ws.parent
            first_move = [0] * graph.n
            dist[u] = 0.0
            visit[u] = c
            parent[u] = -1
            points: List[Tuple[float, float, int]] = []
            heap: List[Tuple[float, int]] = [(0.0, u)]
            while heap:
                d, x = heappop(heap)
                if d > dist[x]:
                    continue
                if x != u:
                    p = parent[x]
                    mv = x if p == u else first_move[p]
                    first_move[x] = mv
                    nx, ny = norm[x]
                    points.append((nx, ny, mv))
                for y, w in adj[x]:
                    nd = d + w
                    if visit[y] != c:
                        visit[y] = c
                        dist[y] = nd
                        parent[y] = x
                        heappush(heap, (nd, y))
                    elif nd < dist[y]:
                        dist[y] = nd
                        parent[y] = x
                        heappush(heap, (nd, y))
            return _build_quadtree(points)
        finally:
            release(graph, ws)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Total quadtree blocks across all sources (Figure 10a metric)."""
        return sum(_count_blocks(t) for t in self._trees)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _first_move(self, u: int, target: int) -> Optional[int]:
        tree = self._trees[u]
        if tree is None:
            return None
        x, y = self._norm[target]
        try:
            return _lookup(tree, x, y)
        except KeyError:
            return None

    def _follow(self, source: int, target: int) -> Optional[Tuple[List[int], float]]:
        if source == target:
            return [source], 0.0
        nodes = [source]
        total = 0.0
        u = source
        weights = self._weights
        for _ in range(self.graph.n):
            nxt = self._first_move(u, target)
            if nxt is None:
                return None
            total += weights[(u, nxt)]
            nodes.append(nxt)
            if nxt == target:
                return nodes, total
            u = nxt
        raise RuntimeError("first-move walk did not terminate; index corrupt")

    def distance(self, source: int, target: int) -> float:
        """Distance by walking the first-move chain and summing weights."""
        res = self._follow(source, target)
        return res[1] if res is not None else float("inf")

    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """Shortest path by walking the first-move chain."""
        res = self._follow(source, target)
        if res is None:
            return None
        nodes, total = res
        return Path(tuple(nodes), total)
