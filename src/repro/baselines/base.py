"""Common interface implemented by every query engine in this package.

The benchmark harness treats HL, FC, AH, CH, SILC, ALT, A* and plain
Dijkstra uniformly: each is a :class:`QueryEngine` with ``distance`` and
``shortest_path`` methods plus size/preprocessing accounting, which is
what Figures 8-10 sweep over.

On top of the point-to-point contract every engine also exposes a
*batched* query surface — :meth:`QueryEngine.one_to_many` and
:meth:`QueryEngine.distance_table` — which is what serving workloads
(k-nearest-restaurant, travel-time matrices for dispatch/ETA) actually
issue.  The base class answers a batch with one truncated Dijkstra per
source, which already beats a loop of point-to-point queries because the
search from ``source`` is shared by all its targets; engines with a
stronger primitive override it (hub labels scan the source label once
per batch, see :mod:`repro.baselines.hl`).
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence

from ..graph.graph import Graph
from ..graph.path import Path
from ..graph.traversal import dijkstra_distances

__all__ = ["QueryEngine"]

INF = float("inf")


class QueryEngine(abc.ABC):
    """Abstract base for distance / shortest-path query engines.

    Attributes
    ----------
    graph:
        The road network the engine answers queries on.
    name:
        Short display name used by the benchmark tables.
    """

    name: str = "engine"

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def distance(self, source: int, target: int) -> float:
        """Network distance from ``source`` to ``target`` (inf if none)."""

    @abc.abstractmethod
    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """A shortest path from ``source`` to ``target``; None if none."""

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    def one_to_many(self, source: int, targets: Iterable[int]) -> List[float]:
        """Distances from ``source`` to each target, aligned with ``targets``.

        The default runs a single Dijkstra from ``source`` that stops as
        soon as every target is settled — one search shared by the whole
        batch, which beats a loop of *search-based* point queries
        (Dijkstra, A*) outright and a loop of indexed point queries once
        the batch is large enough to amortise the sweep; an indexed
        engine with very cheap point queries may still prefer looping
        ``distance`` for small, far-flung batches, and engines with a
        true batch primitive override this (HL scans the source label
        once, see :mod:`repro.baselines.hl`).  Unreachable targets
        report ``inf``.  Results are exact for every engine because
        distances do not depend on the index.
        """
        targets = list(targets)
        if not targets:
            return []
        settled = dijkstra_distances(self.graph, source, targets=targets)
        return [settled.get(t, INF) for t in targets]

    def distance_table(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> List[List[float]]:
        """Full ``len(sources) x len(targets)`` distance matrix.

        ``table[i][j]`` is the network distance from ``sources[i]`` to
        ``targets[j]``.  The default is one :meth:`one_to_many` batch per
        source; engines whose index factorises per-source work further
        (hub labels build the source's hub map once) inherit the shape
        and override :meth:`one_to_many` only.
        """
        targets = list(targets)
        return [self.one_to_many(s, targets) for s in sources]

    # ------------------------------------------------------------------
    # Accounting (Figure 10)
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Number of stored index entries (edges, shortcuts, tree blocks).

        Engines without preprocessing (Dijkstra, A*) report 0; indexed
        engines report the count of auxiliary entries their structures
        hold, the machine-independent stand-in for Figure 10a's bytes.
        """
        return 0

    def describe(self) -> str:
        """One-line human-readable summary for reports."""
        return f"{self.name}(n={self.graph.n}, m={self.graph.m}, size={self.index_size()})"
