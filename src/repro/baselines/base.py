"""Common interface implemented by every query engine in this package.

The benchmark harness treats FC, AH, CH, SILC, ALT, A* and plain
Dijkstra uniformly: each is a :class:`QueryEngine` with ``distance`` and
``shortest_path`` methods plus size/preprocessing accounting, which is
what Figures 8-10 sweep over.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..graph.graph import Graph
from ..graph.path import Path

__all__ = ["QueryEngine"]


class QueryEngine(abc.ABC):
    """Abstract base for distance / shortest-path query engines.

    Attributes
    ----------
    graph:
        The road network the engine answers queries on.
    name:
        Short display name used by the benchmark tables.
    """

    name: str = "engine"

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def distance(self, source: int, target: int) -> float:
        """Network distance from ``source`` to ``target`` (inf if none)."""

    @abc.abstractmethod
    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """A shortest path from ``source`` to ``target``; None if none."""

    # ------------------------------------------------------------------
    # Accounting (Figure 10)
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Number of stored index entries (edges, shortcuts, tree blocks).

        Engines without preprocessing (Dijkstra, A*) report 0; indexed
        engines report the count of auxiliary entries their structures
        hold, the machine-independent stand-in for Figure 10a's bytes.
        """
        return 0

    def describe(self) -> str:
        """One-line human-readable summary for reports."""
        return f"{self.name}(n={self.graph.n}, m={self.graph.m}, size={self.index_size()})"
