"""Common interface implemented by every query engine in this package.

The benchmark harness treats HL, FC, AH, CH, SILC, ALT, A* and plain
Dijkstra uniformly: each is a :class:`QueryEngine` with ``distance`` and
``shortest_path`` methods plus size/preprocessing accounting, which is
what Figures 8-10 sweep over.

On top of the point-to-point contract every engine also exposes a
*batched* query surface — :meth:`QueryEngine.one_to_many` and
:meth:`QueryEngine.distance_table` — which is what serving workloads
(k-nearest-restaurant, travel-time matrices for dispatch/ETA) actually
issue.  The base class answers a batch with one truncated Dijkstra per
source, which already beats a loop of point-to-point queries because the
search from ``source`` is shared by all its targets; engines with a
stronger primitive override it (hub labels scan the source label once
per batch, see :mod:`repro.baselines.hl`).

The planner contract
--------------------
:class:`QueryPlanner` is the engine-agnostic layer between a *workload*
(a heterogeneous list of :class:`DistanceRequest` /
:class:`OneToManyRequest` / :class:`TableRequest`) and an engine's
kernels.  It is what :mod:`repro.serve` executes coalesced batches
through, and it obeys three rules that callers may rely on:

1. **Answers are bit-identical to direct engine calls.**  For every
   request the planner returns exactly what ``engine.distance`` /
   ``engine.one_to_many`` / ``engine.distance_table`` would have
   returned for that request alone.  Regrouping is therefore only
   permitted along lines the engine *declares safe* via
   :meth:`QueryEngine.batch_capabilities`:
   ``exact_point_coalescing`` promises that ``one_to_many(s, ts)``
   reproduces ``[distance(s, t) for t in ts]`` bit-for-bit (true for
   label joins and for pure-Dijkstra engines, false for e.g. CH whose
   shortcut sums may differ from a fresh Dijkstra in the last ulp), and
   ``native_batching`` promises ``distance_table`` factorises
   per-source work over a shared target set while agreeing bitwise
   with per-source ``one_to_many`` (the backend-parity property).
2. **Grouping is structural.**  Point requests are grouped by shared
   source and answered by one ``one_to_many`` per group (when rule 1
   allows); ``one_to_many`` and table requests are grouped by identical
   target tuples and answered by one ``distance_table`` per group (when
   the engine batches natively).  Singleton groups fall back to the
   direct call — coalescing must never make a lone query slower than
   the method it replaces.
3. **The cache is consulted per group, not per call.**  When a
   :class:`DistanceCache` is attached, all point lookups of a batch hit
   the cache under one lock acquisition (:meth:`DistanceCache.
   lookup_many`), and all freshly computed values are stored back under
   one more (:meth:`DistanceCache.store_many`).  Batched requests
   bypass the cache, matching :meth:`QueryEngine.enable_distance_cache`
   semantics.

``QueryPlanner.stats()`` reports how a workload actually decomposed
(requests by kind, groups formed, kernel invocations, cache hits), which
is what the serving layer surfaces per server.
"""

from __future__ import annotations

import abc
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..graph.graph import Graph
from ..graph.path import Path
from ..graph.traversal import dijkstra_distances

__all__ = [
    "BatchCapabilities",
    "DistanceCache",
    "DistanceRequest",
    "OneToManyRequest",
    "QueryEngine",
    "QueryPlanner",
    "Request",
    "TableRequest",
]

INF = float("inf")


class DistanceCache:
    """Bounded LRU over ``(source, target) -> distance`` with counters.

    Distance queries are pure functions of the endpoint pair (indexes
    are immutable once built), so caching is free accuracy-wise; what it
    buys is the skewed traffic a real service sees — hot station pairs,
    repeated ETA checks — where even a ~2 µs hub-label query loses to a
    dict hit.  The cache is **opt-in** per engine instance
    (:meth:`QueryEngine.enable_distance_cache`) because uniformly random
    workloads, like most benchmarks, would only pay the bookkeeping.

    ``hits`` / ``misses`` are exposed (and in :meth:`stats`) so a
    serving layer can monitor whether the cache is earning its memory.

    The cache is **thread- and task-safe**: every operation (including
    the counter updates) runs under one internal lock, so serving
    workers, a :class:`QueryPlanner` and direct ``distance`` calls can
    share a single instance without corrupting the OrderedDict or the
    hit/miss statistics.  Batch traffic should prefer the bulk
    :meth:`lookup_many` / :meth:`store_many`, which take the lock once
    per batch instead of once per pair.
    """

    __slots__ = ("maxsize", "hits", "misses", "_data", "_lock")

    def __init__(self, maxsize: int = 65536) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def lookup(self, key):
        """The cached value, refreshed as most-recent; None on miss.

        Distances are floats (``inf`` included), never None, so None is
        an unambiguous miss marker.
        """
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def store(self, key, value) -> None:
        """Insert a freshly computed value, evicting the oldest entry."""
        with self._lock:
            data = self._data
            data[key] = value
            if len(data) > self.maxsize:
                data.popitem(last=False)

    def lookup_many(self, keys: Sequence) -> List[Optional[float]]:
        """Bulk :meth:`lookup`: one lock acquisition for the whole batch.

        Returns a list aligned with ``keys`` (None marks a miss); the
        hit/miss counters advance exactly as per-key lookups would.
        """
        out: List[Optional[float]] = []
        with self._lock:
            data = self._data
            hits = misses = 0
            for key in keys:
                value = data.get(key)
                if value is None:
                    misses += 1
                else:
                    data.move_to_end(key)
                    hits += 1
                out.append(value)
            self.hits += hits
            self.misses += misses
        return out

    def store_many(self, items: Iterable[Tuple[object, float]]) -> None:
        """Bulk :meth:`store` under one lock acquisition."""
        with self._lock:
            data = self._data
            maxsize = self.maxsize
            for key, value in items:
                data[key] = value
                if len(data) > maxsize:
                    data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        """Counters snapshot: hits, misses, hit_rate, size, maxsize."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "size": len(self._data),
                "maxsize": self.maxsize,
            }


# ----------------------------------------------------------------------
# The request model the planner (and repro.serve) speaks
# ----------------------------------------------------------------------
class Request:
    """Base class of the planner's request types (for isinstance checks)."""

    __slots__ = ()
    kind = "?"


class DistanceRequest(Request):
    """One point-to-point distance query: ``d(source, target)``.

    The planner answers it with a plain float, exactly
    ``engine.distance(source, target)``.
    """

    __slots__ = ("source", "target")
    kind = "distance"

    def __init__(self, source: int, target: int) -> None:
        self.source = int(source)
        self.target = int(target)

    def __repr__(self) -> str:
        return f"DistanceRequest({self.source}, {self.target})"


class OneToManyRequest(Request):
    """One source against a batch of targets; answered with a row.

    ``targets`` is normalised to a tuple — tuple identity is what the
    planner groups on, so callers issuing the *same* target set (the
    dispatch/ETA pattern) should pass the same sequence every time.
    """

    __slots__ = ("source", "targets")
    kind = "one_to_many"

    def __init__(self, source: int, targets: Iterable[int]) -> None:
        self.source = int(source)
        self.targets = tuple(int(t) for t in targets)

    def __repr__(self) -> str:
        return f"OneToManyRequest({self.source}, <{len(self.targets)} targets>)"


class TableRequest(Request):
    """A full ``len(sources) x len(targets)`` distance matrix."""

    __slots__ = ("sources", "targets")
    kind = "table"

    def __init__(self, sources: Iterable[int], targets: Iterable[int]) -> None:
        self.sources = tuple(int(s) for s in sources)
        self.targets = tuple(int(t) for t in targets)

    def __repr__(self) -> str:
        return (
            f"TableRequest(<{len(self.sources)} sources>, "
            f"<{len(self.targets)} targets>)"
        )


@dataclass(frozen=True)
class BatchCapabilities:
    """What an engine's batched surface promises the planner.

    Attributes
    ----------
    one_to_many, distance_table:
        Human-readable kernel tags for reports (e.g.
        ``"dijkstra-per-source"``, ``"hl-dense-gather"``) — surfaced in
        planner/server stats so a recorded benchmark says *which* kernel
        served it.
    native_batching:
        True when ``distance_table`` genuinely factorises target-side
        work across sources (and agrees bitwise with per-source
        ``one_to_many``), so the planner may merge same-target
        ``one_to_many``/table requests into one table call.  The base
        fallback is one independent search per source, where merging
        buys nothing and is skipped.
    exact_point_coalescing:
        True when ``one_to_many(s, ts)`` is bit-identical to
        ``[distance(s, t) for t in ts]``, allowing the planner to fold
        shared-source point queries into one batch.  Engines whose
        point query sums weights in a different association than their
        batch path (CH shortcut unpacking vs plain Dijkstra) must leave
        this False — the planner never trades exactness for grouping.
    """

    one_to_many: str = "dijkstra-per-source"
    distance_table: str = "dijkstra-per-source"
    native_batching: bool = False
    exact_point_coalescing: bool = False


class QueryPlanner:
    """Engine-agnostic batch planner: groups requests, routes kernels.

    See the module docstring ("The planner contract") for the rules.
    The planner is stateless between :meth:`execute` calls except for
    monotonically growing counters; it holds no request state, so one
    instance may serve any number of sequential batches (the serving
    loop calls it once per coalesced batch).

    Parameters
    ----------
    engine:
        Any :class:`QueryEngine`; capabilities are read once here.
    cache:
        Optional shared :class:`DistanceCache` consulted (per group)
        for point requests.  Defaults to the engine's active
        ``distance_cache`` if one is enabled, else no caching.
    min_group:
        Smallest shared-source point group worth folding into one
        ``one_to_many`` (and smallest same-target group worth folding
        into one table).  Below it the direct per-request call runs.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        cache: Optional[DistanceCache] = None,
        min_group: int = 2,
    ) -> None:
        if min_group < 2:
            raise ValueError(f"min_group must be >= 2, got {min_group}")
        self.engine = engine
        self.capabilities = engine.batch_capabilities()
        self.cache = cache if cache is not None else engine.distance_cache
        self.min_group = min_group
        self._counters: Dict[str, int] = {
            "batches": 0,
            "requests_distance": 0,
            "requests_one_to_many": 0,
            "requests_table": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "coalesced_point_queries": 0,
            "merged_one_to_many": 0,
            "merged_tables": 0,
            "kernel_distance": 0,
            "kernel_one_to_many": 0,
            "kernel_distance_table": 0,
        }

    # ------------------------------------------------------------------
    def execute(self, requests: Sequence[Request]) -> List[object]:
        """Answer a heterogeneous batch; results align with ``requests``.

        ``DistanceRequest`` slots receive a float, ``OneToManyRequest``
        slots a list of floats, ``TableRequest`` slots a list of rows —
        exactly the direct engine calls' types and values.
        """
        requests = list(requests)
        results: List[object] = [None] * len(requests)
        point: List[Tuple[int, int, int]] = []
        o2m: List[Tuple[int, OneToManyRequest]] = []
        tables: List[Tuple[int, TableRequest]] = []
        for i, req in enumerate(requests):
            if isinstance(req, DistanceRequest):
                point.append((i, req.source, req.target))
            elif isinstance(req, OneToManyRequest):
                o2m.append((i, req))
            elif isinstance(req, TableRequest):
                tables.append((i, req))
            else:
                raise TypeError(
                    f"unknown request type {type(req).__name__!r}; expected "
                    "DistanceRequest / OneToManyRequest / TableRequest"
                )
        c = self._counters
        c["batches"] += 1
        c["requests_distance"] += len(point)
        c["requests_one_to_many"] += len(o2m)
        c["requests_table"] += len(tables)
        if point:
            self._run_point(point, results)
        if o2m:
            self._run_one_to_many(o2m, results)
        if tables:
            self._run_tables(tables, results)
        return results

    # ------------------------------------------------------------------
    def _run_point(
        self, point: List[Tuple[int, int, int]], results: List[object]
    ) -> None:
        """Cache per group, then shared-source folds where declared exact."""
        c = self._counters
        cache = self.cache
        misses = point
        if cache is not None:
            cached = cache.lookup_many([(s, t) for _, s, t in point])
            misses = []
            for (i, s, t), value in zip(point, cached):
                if value is None:
                    misses.append((i, s, t))
                else:
                    results[i] = value
            c["cache_hits"] += len(point) - len(misses)
            c["cache_misses"] += len(misses)
        if not misses:
            return
        by_source: "OrderedDict[int, List[Tuple[int, int]]]" = OrderedDict()
        for i, s, t in misses:
            by_source.setdefault(s, []).append((i, t))
        caps = self.capabilities
        engine = self.engine
        distance = engine.distance
        if cache is not None and cache is engine.distance_cache:
            # The planner consults this cache per group itself; use the
            # unwrapped method so misses don't pay (and don't count) a
            # second per-call lookup inside the engine's wrapper.
            distance = getattr(distance, "__wrapped__", distance)
        fresh: List[Tuple[Tuple[int, int], float]] = []
        keep = fresh.append if cache is not None else (lambda pair: None)
        for s, group in by_source.items():
            if caps.exact_point_coalescing and len(group) >= self.min_group:
                row = engine.one_to_many(s, [t for _, t in group])
                c["kernel_one_to_many"] += 1
                c["coalesced_point_queries"] += len(group)
                for (i, t), d in zip(group, row):
                    results[i] = d
                    keep(((s, t), d))
            else:
                for i, t in group:
                    d = distance(s, t)
                    c["kernel_distance"] += 1
                    results[i] = d
                    keep(((s, t), d))
        if fresh:
            cache.store_many(fresh)

    def _run_one_to_many(
        self, o2m: List[Tuple[int, OneToManyRequest]], results: List[object]
    ) -> None:
        """Fold same-target rows into one table on natively-batching engines."""
        c = self._counters
        engine = self.engine
        by_targets: "OrderedDict[Tuple[int, ...], List[Tuple[int, int]]]" = (
            OrderedDict()
        )
        for i, req in o2m:
            by_targets.setdefault(req.targets, []).append((i, req.source))
        for targets, group in by_targets.items():
            if self.capabilities.native_batching and len(group) >= self.min_group:
                table = engine.distance_table([s for _, s in group], targets)
                c["kernel_distance_table"] += 1
                c["merged_one_to_many"] += len(group)
                for (i, _), row in zip(group, table):
                    results[i] = row
            else:
                for i, s in group:
                    results[i] = engine.one_to_many(s, targets)
                    c["kernel_one_to_many"] += 1

    def _run_tables(
        self, tables: List[Tuple[int, TableRequest]], results: List[object]
    ) -> None:
        """Concatenate same-target tables into one kernel call, slice back."""
        c = self._counters
        engine = self.engine
        by_targets: "OrderedDict[Tuple[int, ...], List[Tuple[int, TableRequest]]]" = (
            OrderedDict()
        )
        for i, req in tables:
            by_targets.setdefault(req.targets, []).append((i, req))
        for targets, group in by_targets.items():
            if self.capabilities.native_batching and len(group) >= self.min_group:
                all_sources: List[int] = []
                for _, req in group:
                    all_sources.extend(req.sources)
                table = engine.distance_table(all_sources, targets)
                c["kernel_distance_table"] += 1
                c["merged_tables"] += len(group)
                row = 0
                for i, req in group:
                    results[i] = table[row : row + len(req.sources)]
                    row += len(req.sources)
            else:
                for i, req in group:
                    results[i] = engine.distance_table(req.sources, targets)
                    c["kernel_distance_table"] += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot plus the engine's declared kernel tags."""
        caps = self.capabilities
        out = dict(self._counters)
        out["engine"] = self.engine.name
        out["kernels"] = {
            "one_to_many": caps.one_to_many,
            "distance_table": caps.distance_table,
        }
        out["native_batching"] = caps.native_batching
        out["exact_point_coalescing"] = caps.exact_point_coalescing
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out


class QueryEngine(abc.ABC):
    """Abstract base for distance / shortest-path query engines.

    Attributes
    ----------
    graph:
        The road network the engine answers queries on.
    name:
        Short display name used by the benchmark tables.
    """

    name: str = "engine"

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------
    # Opt-in result caching (ROADMAP: "Result caching")
    # ------------------------------------------------------------------
    def enable_distance_cache(self, maxsize: int = 65536) -> DistanceCache:
        """Wrap :meth:`distance` in a bounded LRU; returns the cache.

        The wrapper shadows the engine's ``distance`` on *this instance*
        only — the class and every other instance are untouched, and
        :meth:`disable_distance_cache` restores the direct method.
        Re-enabling replaces the previous cache (fresh counters).
        Batched queries (:meth:`one_to_many` / :meth:`distance_table`)
        deliberately bypass the cache: they amortise per-source work
        already, and flooding the LRU with one table's pairs would evict
        the hot point-query pairs the cache exists for.
        """
        self.disable_distance_cache()
        cache = DistanceCache(maxsize)
        inner = self.distance  # the subclass's bound method
        lookup, store = cache.lookup, cache.store

        def cached_distance(source: int, target: int) -> float:
            key = (source, target)
            value = lookup(key)
            if value is None:
                value = inner(source, target)
                store(key, value)
            return value

        # Let layers that manage this same cache themselves (QueryPlanner
        # consults it per *group*) reach the uncached method instead of
        # paying a second per-call lookup under the wrapper.
        cached_distance.__wrapped__ = inner  # type: ignore[attr-defined]
        self.distance = cached_distance  # type: ignore[method-assign]
        self._distance_cache = cache
        return cache

    def disable_distance_cache(self) -> None:
        """Remove the cache wrapper (no-op when none is active)."""
        if getattr(self, "_distance_cache", None) is not None:
            del self.distance  # uncovers the class's method
            self._distance_cache = None

    @property
    def distance_cache(self) -> Optional[DistanceCache]:
        """The active :class:`DistanceCache`, or None."""
        return getattr(self, "_distance_cache", None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def distance(self, source: int, target: int) -> float:
        """Network distance from ``source`` to ``target`` (inf if none)."""

    @abc.abstractmethod
    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """A shortest path from ``source`` to ``target``; None if none."""

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    def batch_capabilities(self) -> BatchCapabilities:
        """What the planner may assume about this engine's batch surface.

        The base promise is the weakest one: a per-source Dijkstra
        fallback with no native factorisation and no bit-exactness
        guarantee between ``distance`` and ``one_to_many`` (indexed
        engines may sum shortcut weights in a different association
        than a fresh search).  Engines override to unlock grouping —
        see :class:`BatchCapabilities`.
        """
        return BatchCapabilities()

    def one_to_many(self, source: int, targets: Iterable[int]) -> List[float]:
        """Distances from ``source`` to each target, aligned with ``targets``.

        The default runs a single Dijkstra from ``source`` that stops as
        soon as every target is settled — one search shared by the whole
        batch, which beats a loop of *search-based* point queries
        (Dijkstra, A*) outright and a loop of indexed point queries once
        the batch is large enough to amortise the sweep; an indexed
        engine with very cheap point queries may still prefer looping
        ``distance`` for small, far-flung batches, and engines with a
        true batch primitive override this (HL scans the source label
        once, see :mod:`repro.baselines.hl`).  Unreachable targets
        report ``inf``.  Results are exact for every engine because
        distances do not depend on the index.
        """
        targets = list(targets)
        if not targets:
            return []
        settled = dijkstra_distances(self.graph, source, targets=targets)
        return [settled.get(t, INF) for t in targets]

    def distance_table(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> List[List[float]]:
        """Full ``len(sources) x len(targets)`` distance matrix.

        ``table[i][j]`` is the network distance from ``sources[i]`` to
        ``targets[j]``.  The default is one :meth:`one_to_many` batch per
        source; engines whose index factorises per-source work further
        (hub labels build the source's hub map once) inherit the shape
        and override :meth:`one_to_many` only.
        """
        targets = list(targets)
        return [self.one_to_many(s, targets) for s in sources]

    # ------------------------------------------------------------------
    # Accounting (Figure 10)
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Number of stored index entries (edges, shortcuts, tree blocks).

        Engines without preprocessing (Dijkstra, A*) report 0; indexed
        engines report the count of auxiliary entries their structures
        hold, the machine-independent stand-in for Figure 10a's bytes.
        """
        return 0

    def describe(self) -> str:
        """One-line human-readable summary for reports."""
        return f"{self.name}(n={self.graph.n}, m={self.graph.m}, size={self.index_size()})"
