"""Common interface implemented by every query engine in this package.

The benchmark harness treats HL, FC, AH, CH, SILC, ALT, A* and plain
Dijkstra uniformly: each is a :class:`QueryEngine` with ``distance`` and
``shortest_path`` methods plus size/preprocessing accounting, which is
what Figures 8-10 sweep over.

On top of the point-to-point contract every engine also exposes a
*batched* query surface — :meth:`QueryEngine.one_to_many` and
:meth:`QueryEngine.distance_table` — which is what serving workloads
(k-nearest-restaurant, travel-time matrices for dispatch/ETA) actually
issue.  The base class answers a batch with one truncated Dijkstra per
source, which already beats a loop of point-to-point queries because the
search from ``source`` is shared by all its targets; engines with a
stronger primitive override it (hub labels scan the source label once
per batch, see :mod:`repro.baselines.hl`).
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Iterable, List, Optional, Sequence

from ..graph.graph import Graph
from ..graph.path import Path
from ..graph.traversal import dijkstra_distances

__all__ = ["DistanceCache", "QueryEngine"]

INF = float("inf")


class DistanceCache:
    """Bounded LRU over ``(source, target) -> distance`` with counters.

    Distance queries are pure functions of the endpoint pair (indexes
    are immutable once built), so caching is free accuracy-wise; what it
    buys is the skewed traffic a real service sees — hot station pairs,
    repeated ETA checks — where even a ~2 µs hub-label query loses to a
    dict hit.  The cache is **opt-in** per engine instance
    (:meth:`QueryEngine.enable_distance_cache`) because uniformly random
    workloads, like most benchmarks, would only pay the bookkeeping.

    ``hits`` / ``misses`` are exposed (and in :meth:`stats`) so a
    serving layer can monitor whether the cache is earning its memory.
    """

    __slots__ = ("maxsize", "hits", "misses", "_data")

    def __init__(self, maxsize: int = 65536) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def lookup(self, key):
        """The cached value, refreshed as most-recent; None on miss.

        Distances are floats (``inf`` included), never None, so None is
        an unambiguous miss marker.
        """
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def store(self, key, value) -> None:
        """Insert a freshly computed value, evicting the oldest entry."""
        data = self._data
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """Counters snapshot: hits, misses, hit_rate, size, maxsize."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }


class QueryEngine(abc.ABC):
    """Abstract base for distance / shortest-path query engines.

    Attributes
    ----------
    graph:
        The road network the engine answers queries on.
    name:
        Short display name used by the benchmark tables.
    """

    name: str = "engine"

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------
    # Opt-in result caching (ROADMAP: "Result caching")
    # ------------------------------------------------------------------
    def enable_distance_cache(self, maxsize: int = 65536) -> DistanceCache:
        """Wrap :meth:`distance` in a bounded LRU; returns the cache.

        The wrapper shadows the engine's ``distance`` on *this instance*
        only — the class and every other instance are untouched, and
        :meth:`disable_distance_cache` restores the direct method.
        Re-enabling replaces the previous cache (fresh counters).
        Batched queries (:meth:`one_to_many` / :meth:`distance_table`)
        deliberately bypass the cache: they amortise per-source work
        already, and flooding the LRU with one table's pairs would evict
        the hot point-query pairs the cache exists for.
        """
        self.disable_distance_cache()
        cache = DistanceCache(maxsize)
        inner = self.distance  # the subclass's bound method
        lookup, store = cache.lookup, cache.store

        def cached_distance(source: int, target: int) -> float:
            key = (source, target)
            value = lookup(key)
            if value is None:
                value = inner(source, target)
                store(key, value)
            return value

        self.distance = cached_distance  # type: ignore[method-assign]
        self._distance_cache = cache
        return cache

    def disable_distance_cache(self) -> None:
        """Remove the cache wrapper (no-op when none is active)."""
        if getattr(self, "_distance_cache", None) is not None:
            del self.distance  # uncovers the class's method
            self._distance_cache = None

    @property
    def distance_cache(self) -> Optional[DistanceCache]:
        """The active :class:`DistanceCache`, or None."""
        return getattr(self, "_distance_cache", None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def distance(self, source: int, target: int) -> float:
        """Network distance from ``source`` to ``target`` (inf if none)."""

    @abc.abstractmethod
    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """A shortest path from ``source`` to ``target``; None if none."""

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    def one_to_many(self, source: int, targets: Iterable[int]) -> List[float]:
        """Distances from ``source`` to each target, aligned with ``targets``.

        The default runs a single Dijkstra from ``source`` that stops as
        soon as every target is settled — one search shared by the whole
        batch, which beats a loop of *search-based* point queries
        (Dijkstra, A*) outright and a loop of indexed point queries once
        the batch is large enough to amortise the sweep; an indexed
        engine with very cheap point queries may still prefer looping
        ``distance`` for small, far-flung batches, and engines with a
        true batch primitive override this (HL scans the source label
        once, see :mod:`repro.baselines.hl`).  Unreachable targets
        report ``inf``.  Results are exact for every engine because
        distances do not depend on the index.
        """
        targets = list(targets)
        if not targets:
            return []
        settled = dijkstra_distances(self.graph, source, targets=targets)
        return [settled.get(t, INF) for t in targets]

    def distance_table(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> List[List[float]]:
        """Full ``len(sources) x len(targets)`` distance matrix.

        ``table[i][j]`` is the network distance from ``sources[i]`` to
        ``targets[j]``.  The default is one :meth:`one_to_many` batch per
        source; engines whose index factorises per-source work further
        (hub labels build the source's hub map once) inherit the shape
        and override :meth:`one_to_many` only.
        """
        targets = list(targets)
        return [self.one_to_many(s, targets) for s in sources]

    # ------------------------------------------------------------------
    # Accounting (Figure 10)
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Number of stored index entries (edges, shortcuts, tree blocks).

        Engines without preprocessing (Dijkstra, A*) report 0; indexed
        engines report the count of auxiliary entries their structures
        hold, the machine-independent stand-in for Figure 10a's bytes.
        """
        return 0

    def describe(self) -> str:
        """One-line human-readable summary for reports."""
        return f"{self.name}(n={self.graph.n}, m={self.graph.m}, size={self.index_size()})"
