"""Contraction Hierarchies (Geisberger et al., WEA 2008) — reference [11].

CH is the paper's strongest practical competitor ("the state-of-the-art
heuristic method").  This is a complete reimplementation:

* **Ordering** — nodes are contracted in ascending importance, where the
  importance of ``u`` is ``edge_difference(u) + deleted_neighbours(u)``;
  priorities are maintained lazily (re-evaluate on pop, reinsert if no
  longer minimal), the classic implementation strategy.
* **Contraction** — when ``u`` is removed, a shortcut ``a -> b`` with
  weight ``w(a,u) + w(u,b)`` is added for every in/out neighbour pair
  unless a *witness search* (a truncated Dijkstra in the remaining graph
  that avoids ``u``) proves a path no longer than the shortcut exists.
  Truncation can only add unnecessary shortcuts, never lose correctness.
* **Query** — bidirectional Dijkstra restricted to upward edges (toward
  higher contraction ranks), with optional stall-on-demand pruning.
* **Unpacking** — every shortcut stores its middle node, so a packed path
  expands to the original-graph path in time linear in its length.

The same engine is reused by AH (Section 4 of the paper) with a different
— grid-derived — node order plus extra query constraints; see
:mod:`repro.core.ah`.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.graph import Graph
from ..graph.path import Path
from ..graph.workspace import SearchWorkspace, acquire, release
from .base import QueryEngine

__all__ = ["CHEngine", "contract_graph", "unpack_shortcuts", "ContractionResult"]

INF = float("inf")


def unpack_shortcuts(middle: Dict[Tuple[int, int], int], packed: List[int]) -> List[int]:
    """Expand a packed node sequence via shortcut middles (iterative).

    ``packed`` lists consecutive CH-graph edges ``(a, b)``; every pair
    with an entry in ``middle`` splits into ``(a, mid), (mid, b)`` until
    only original edges remain.  Shared by the CH and HL engines.
    """
    nodes: List[int] = [packed[0]]
    stack: List[Tuple[int, int]] = [
        (packed[i], packed[i + 1]) for i in range(len(packed) - 2, -1, -1)
    ]
    while stack:
        a, b = stack.pop()
        mid = middle.get((a, b))
        if mid is None:
            nodes.append(b)
        else:
            stack.append((mid, b))
            stack.append((a, mid))
    return nodes


class ContractionResult:
    """Artifacts of a contraction run shared by CH and AH.

    Attributes
    ----------
    rank:
        ``rank[u]`` is the contraction position of node ``u`` (0 first).
    up_out:
        ``up_out[u]`` lists ``(v, w, middle)`` for upward edges
        ``u -> v`` with ``rank[v] > rank[u]``; ``middle`` is ``None``
        for original edges, otherwise the bypassed node.
    up_in:
        ``up_in[u]`` lists ``(v, w, middle)`` for edges ``v -> u`` with
        ``rank[v] > rank[u]`` (the backward search's upward adjacency).
    middle:
        ``middle[(a, b)]`` is the bypassed node of shortcut ``a -> b``
        (absent for original edges); used to unpack packed paths.
    shortcut_count:
        Number of shortcut edges added on top of the original graph.
    """

    __slots__ = ("rank", "up_out", "up_in", "middle", "shortcut_count")

    def __init__(
        self,
        rank: List[int],
        up_out: List[List[Tuple[int, float, Optional[int]]]],
        up_in: List[List[Tuple[int, float, Optional[int]]]],
        middle: Dict[Tuple[int, int], int],
        shortcut_count: int,
    ) -> None:
        self.rank = rank
        self.up_out = up_out
        self.up_in = up_in
        self.middle = middle
        self.shortcut_count = shortcut_count


def _edge_difference(
    u: int,
    fwd: Dict[int, Dict[int, float]],
    bwd: Dict[int, Dict[int, float]],
    hop_limit: int,
    settle_limit: int,
    ws: SearchWorkspace,
) -> Tuple[int, List[Tuple[int, int, float]]]:
    """Simulate contracting ``u``; return (needed shortcuts, their list)."""
    shortcuts: List[Tuple[int, int, float]] = []
    in_nbrs = bwd[u]
    out_nbrs = fwd[u]
    if not in_nbrs or not out_nbrs:
        return -len(in_nbrs) - len(out_nbrs), shortcuts
    for a, w_au in in_nbrs.items():
        max_w = max(w_au + w_ub for w_ub in out_nbrs.values())
        witness = _witness_distances(
            a, u, fwd, max_w, settle_limit, hop_limit, ws
        )
        for b, w_ub in out_nbrs.items():
            if b == a:
                continue
            via = w_au + w_ub
            if witness.get(b, INF) > via:
                shortcuts.append((a, b, via))
    return len(shortcuts) - len(in_nbrs) - len(out_nbrs), shortcuts


def _witness_distances(
    source: int,
    skip: int,
    fwd: Dict[int, Dict[int, float]],
    cutoff: float,
    settle_limit: int,
    hop_limit: int,
    ws: SearchWorkspace,
) -> Dict[int, float]:
    """Truncated Dijkstra from ``source`` avoiding ``skip``.

    Searches only the remaining (uncontracted) graph ``fwd``; stops after
    ``settle_limit`` settled nodes, ``hop_limit`` hops, or ``cutoff``
    distance.  Distances it fails to tighten simply lead to extra (still
    correct) shortcuts.

    Labels live in the shared workspace (``ws.parent`` doubles as the hop
    counter — witness searches never need parents); only the ≤
    ``settle_limit`` settled nodes materialise into the returned dict.
    """
    c = ws.begin()
    dist = ws.dist
    visit = ws.visit
    hops = ws.parent
    dist[source] = 0.0
    visit[source] = c
    hops[source] = 0
    settled: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    budget = settle_limit
    while heap and budget > 0:
        d, x = heappop(heap)
        if d > dist[x]:
            continue  # stale entry (pushes are strictly improving)
        if d > cutoff:
            break
        settled[x] = d
        budget -= 1
        hx = hops[x]
        if hx >= hop_limit:
            continue
        for y, w in fwd[x].items():
            if y == skip:
                continue
            nd = d + w
            if visit[y] != c:
                visit[y] = c
                dist[y] = nd
                hops[y] = hx + 1
                heappush(heap, (nd, y))
            elif nd < dist[y]:
                dist[y] = nd
                hops[y] = hx + 1
                heappush(heap, (nd, y))
    return settled


def contract_graph(
    graph: Graph,
    order: Optional[Sequence[int]] = None,
    hop_limit: int = 8,
    settle_limit: int = 64,
) -> ContractionResult:
    """Contract all nodes; return the upward search structures.

    Parameters
    ----------
    order:
        Explicit contraction order (AH passes its grid-derived rank
        order here).  ``None`` selects the order on the fly with the
        lazy edge-difference heuristic (classic CH).
    hop_limit, settle_limit:
        Witness-search truncation knobs; larger values mean fewer
        redundant shortcuts but slower preprocessing.
    """
    n = graph.n
    # Dynamic adjacency over uncontracted nodes; dict-of-dict supports the
    # delete-heavy access pattern of contraction.
    fwd: Dict[int, Dict[int, float]] = {u: {} for u in range(n)}
    bwd: Dict[int, Dict[int, float]] = {u: {} for u in range(n)}
    middle: Dict[Tuple[int, int], int] = {}
    for u, v, w in graph.edges():
        old = fwd[u].get(v)
        if old is None or w < old:
            fwd[u][v] = w
            bwd[v][u] = w

    rank = [0] * n
    up_out: List[List[Tuple[int, float, Optional[int]]]] = [[] for _ in range(n)]
    up_in: List[List[Tuple[int, float, Optional[int]]]] = [[] for _ in range(n)]
    deleted_neighbours = [0] * n
    shortcut_count = 0
    # One workspace serves every witness search of the whole contraction.
    ws = acquire(graph)
    try:
        if order is None:
            heap: List[Tuple[float, int]] = []
            for u in range(n):
                diff, _ = _edge_difference(u, fwd, bwd, hop_limit, settle_limit, ws)
                heap.append((float(diff), u))
            heapify(heap)
        else:
            if sorted(order) != list(range(n)):
                raise ValueError("order must be a permutation of all node ids")
            heap = []

        explicit = iter(order) if order is not None else None
        position = 0
        contracted = bytearray(n)
        while position < n:
            if explicit is not None:
                u = next(explicit)
                shortcuts = _edge_difference(
                    u, fwd, bwd, hop_limit, settle_limit, ws
                )[1]
            else:
                # Lazy pop: re-evaluate the candidate; reinsert unless
                # still best.
                while True:
                    prio, u = heappop(heap)
                    if contracted[u]:
                        continue
                    diff, shortcuts = _edge_difference(
                        u, fwd, bwd, hop_limit, settle_limit, ws
                    )
                    new_prio = float(diff + deleted_neighbours[u])
                    if not heap or new_prio <= heap[0][0]:
                        break
                    heappush(heap, (new_prio, u))
            rank[u] = position
            position += 1
            contracted[u] = 1
            # Freeze u's current adjacency as its upward edges.
            for v, w in fwd[u].items():
                up_out[u].append((v, w, middle.get((u, v))))
                deleted_neighbours[v] += 1
            for v, w in bwd[u].items():
                up_in[u].append((v, w, middle.get((v, u))))
                deleted_neighbours[v] += 1
            # Remove u from the dynamic graph.
            for v in fwd[u]:
                del bwd[v][u]
            for v in bwd[u]:
                del fwd[v][u]
            del fwd[u], bwd[u]
            # Materialise the surviving shortcuts.
            for a, b, w in shortcuts:
                old = fwd[a].get(b)
                if old is None or w < old:
                    fwd[a][b] = w
                    bwd[b][a] = w
                    middle[(a, b)] = u
                    if old is None:
                        shortcut_count += 1
    finally:
        release(graph, ws)
    return ContractionResult(rank, up_out, up_in, middle, shortcut_count)


class CHEngine(QueryEngine):
    """Contraction Hierarchies query engine."""

    name = "CH"

    def __init__(
        self,
        graph: Graph,
        order: Optional[Sequence[int]] = None,
        stall_on_demand: bool = True,
        hop_limit: int = 8,
        settle_limit: int = 64,
    ) -> None:
        super().__init__(graph)
        self.stall_on_demand = stall_on_demand
        self._res = contract_graph(
            graph, order=order, hop_limit=hop_limit, settle_limit=settle_limit
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Original upward edges + shortcuts, both directions."""
        res = self._res
        return sum(len(adj) for adj in res.up_out) + sum(len(adj) for adj in res.up_in)

    @property
    def shortcut_count(self) -> int:
        """Number of shortcuts added by contraction."""
        return self._res.shortcut_count

    @property
    def rank(self) -> List[int]:
        """Contraction rank per node (higher = more important)."""
        return self._res.rank

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Bidirectional upward search distance."""
        d, _ = self._query(source, target, want_parents=False)
        return d

    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """Bidirectional upward search + shortcut unpacking."""
        d, packed = self._query(source, target, want_parents=True)
        if packed is None:
            return None
        nodes = self._unpack(packed)
        return Path(tuple(nodes), d)

    def _unpack(self, packed: List[int]) -> List[int]:
        """Expand shortcuts via middle nodes (iterative, stack-based)."""
        return unpack_shortcuts(self._res.middle, packed)

    def _query(
        self, source: int, target: int, want_parents: bool
    ) -> Tuple[float, Optional[List[int]]]:
        """Bidirectional upward search over the two workspace halves.

        Returns ``(distance, packed path)`` — the packed path is the node
        sequence through the meeting point, shortcuts not yet expanded —
        or ``(inf, None)``.  With ``want_parents=False`` the packed path
        of a reachable pair is ``[]`` (only the distance was tracked).
        """
        if source == target:
            return 0.0, [source]
        res = self._res
        up_out, up_in = res.up_out, res.up_in
        stall = self.stall_on_demand
        graph = self.graph
        ws_f = acquire(graph)
        ws_b = acquire(graph)
        try:
            cf = ws_f.begin()
            cb = ws_b.begin()
            dist_f = ws_f.dist
            dist_b = ws_b.dist
            visit_f = ws_f.visit
            visit_b = ws_b.visit
            parent_f = ws_f.parent
            parent_b = ws_b.parent
            dist_f[source] = 0.0
            visit_f[source] = cf
            dist_b[target] = 0.0
            visit_b[target] = cb
            heap_f: List[Tuple[float, int]] = [(0.0, source)]
            heap_b: List[Tuple[float, int]] = [(0.0, target)]
            best = INF
            best_node: Optional[int] = None
            while heap_f or heap_b:
                top_f = heap_f[0][0] if heap_f else INF
                top_b = heap_b[0][0] if heap_b else INF
                if best <= min(top_f, top_b):
                    break
                if top_f <= top_b:
                    d, u = heappop(heap_f)
                    if d > dist_f[u]:
                        continue
                    if visit_b[u] == cb and d + dist_b[u] < best:
                        best = d + dist_b[u]
                        best_node = u
                    if stall and self._stalled(u, d, dist_f, visit_f, cf, up_in):
                        continue
                    for v, w, _ in up_out[u]:
                        nd = d + w
                        if visit_f[v] != cf:
                            visit_f[v] = cf
                            dist_f[v] = nd
                            parent_f[v] = u
                            heappush(heap_f, (nd, v))
                        elif nd < dist_f[v]:
                            dist_f[v] = nd
                            parent_f[v] = u
                            heappush(heap_f, (nd, v))
                else:
                    d, u = heappop(heap_b)
                    if d > dist_b[u]:
                        continue
                    if visit_f[u] == cf and d + dist_f[u] < best:
                        best = d + dist_f[u]
                        best_node = u
                    if stall and self._stalled(u, d, dist_b, visit_b, cb, up_out):
                        continue
                    for v, w, _ in up_in[u]:
                        nd = d + w
                        if visit_b[v] != cb:
                            visit_b[v] = cb
                            dist_b[v] = nd
                            parent_b[v] = u
                            heappush(heap_b, (nd, v))
                        elif nd < dist_b[v]:
                            dist_b[v] = nd
                            parent_b[v] = u
                            heappush(heap_b, (nd, v))
            if best_node is None:
                return INF, None
            if not want_parents:
                return best, []
            packed: List[int] = [best_node]
            u = best_node
            while u != source:
                u = parent_f[u]
                packed.append(u)
            packed.reverse()
            u = best_node
            while u != target:
                u = parent_b[u]
                packed.append(u)
            return best, packed
        finally:
            release(graph, ws_b)
            release(graph, ws_f)

    @staticmethod
    def _stalled(
        u: int,
        d: float,
        dist: List[float],
        visit: List[int],
        c: int,
        reverse_adj: List[List[Tuple[int, float, Optional[int]]]],
    ) -> bool:
        """Stall-on-demand: if a higher-ranked, already-labelled node can
        reach ``u`` more cheaply than ``d``, expanding ``u`` is pointless
        (any shortest path through ``u`` would descend then re-ascend)."""
        for v, w, _ in reverse_adj[u]:
            if visit[v] == c and dist[v] + w < d:
                return True
        return False
