"""ALT: A*, Landmarks and the Triangle inequality (Goldberg-Harrelson).

The paper's related work (Section 5, reference [12]) describes ALT as the
canonical heuristic competitor: pick a small set of *landmarks*, store
every node's distance to and from each landmark, and use the triangle
inequality to derive goal-directed lower bounds

    d(v, t)  >=  max_L ( d(v, L) - d(t, L),  d(L, t) - d(L, v) ).

Preprocessing is ``2 * |landmarks|`` full Dijkstra trees; the per-query
bound costs O(|landmarks|) per relaxed node.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..graph.graph import Graph
from ..graph.path import Path
from ..graph.traversal import dijkstra_distances, walk_parents
from ..graph.workspace import acquire, release
from .base import QueryEngine

__all__ = ["ALTEngine", "select_landmarks_farthest"]

INF = float("inf")


def select_landmarks_farthest(graph: Graph, count: int, seed: int = 0) -> List[int]:
    """Farthest-point landmark selection.

    Starts from a random node, then repeatedly adds the node maximising
    the minimum network distance to the landmarks chosen so far — the
    standard selection heuristic from the ALT paper.
    """
    if count < 1:
        raise ValueError("need at least one landmark")
    rng = random.Random(seed)
    first = rng.randrange(graph.n)
    # Bootstrap: farthest node from a random seed becomes the first landmark.
    dist = dijkstra_distances(graph, first)
    landmarks = [max(dist.items(), key=lambda kv: kv[1])[0]]
    min_dist = dict(dijkstra_distances(graph, landmarks[0]))
    while len(landmarks) < count:
        candidate = max(min_dist.items(), key=lambda kv: kv[1])[0]
        if candidate in landmarks:
            break
        landmarks.append(candidate)
        for node, d in dijkstra_distances(graph, candidate).items():
            if d < min_dist.get(node, INF):
                min_dist[node] = d
    return landmarks


class ALTEngine(QueryEngine):
    """A* with landmark-based triangle-inequality lower bounds."""

    name = "ALT"

    def __init__(self, graph: Graph, n_landmarks: int = 8, seed: int = 0) -> None:
        super().__init__(graph)
        self.landmarks = select_landmarks_farthest(graph, n_landmarks, seed=seed)
        n = graph.n
        # to_lm[i][v] = d(v -> L_i);  from_lm[i][v] = d(L_i -> v)
        self._to_lm: List[List[float]] = []
        self._from_lm: List[List[float]] = []
        for lm in self.landmarks:
            frm = [INF] * n
            for node, d in dijkstra_distances(graph, lm).items():
                frm[node] = d
            self._from_lm.append(frm)
            to = [INF] * n
            for node, d in dijkstra_distances(graph, lm, reverse=True).items():
                to[node] = d
            self._to_lm.append(to)

    def index_size(self) -> int:
        """Stored entries: two distances per node per landmark."""
        return 2 * len(self.landmarks) * self.graph.n

    def _lower_bound(self, v: int, target: int) -> float:
        best = 0.0
        for to, frm in zip(self._to_lm, self._from_lm):
            d_v_l, d_t_l = to[v], to[target]
            if d_v_l < INF and d_t_l < INF:
                diff = d_v_l - d_t_l
                if diff > best:
                    best = diff
            d_l_t, d_l_v = frm[target], frm[v]
            if d_l_t < INF and d_l_v < INF:
                diff = d_l_t - d_l_v
                if diff > best:
                    best = diff
        return best

    def _search(self, source: int, target: int) -> Tuple[float, Optional[List[int]]]:
        """Workspace-backed landmark A*; returns (distance, path nodes)."""
        graph = self.graph
        out = graph.out
        lower_bound = self._lower_bound
        ws = acquire(graph)
        try:
            c = ws.begin()
            dist = ws.dist
            visit = ws.visit
            parent = ws.parent
            dist[source] = 0.0
            visit[source] = c
            parent[source] = -1
            settled: set = set()
            heap: List[Tuple[float, int]] = [(lower_bound(source, target), source)]
            while heap:
                _, u = heappop(heap)
                if u in settled:
                    continue
                settled.add(u)
                if u == target:
                    return dist[u], walk_parents(parent, source, target)
                du = dist[u]
                for v, w in out[u]:
                    nd = du + w
                    if visit[v] != c:
                        visit[v] = c
                        dist[v] = nd
                        parent[v] = u
                        heappush(heap, (nd + lower_bound(v, target), v))
                    elif nd < dist[v]:
                        dist[v] = nd
                        parent[v] = u
                        heappush(heap, (nd + lower_bound(v, target), v))
            return INF, None
        finally:
            release(graph, ws)

    def distance(self, source: int, target: int) -> float:
        """Distance with landmark-guided A*."""
        d, _ = self._search(source, target)
        return d

    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """Shortest path with landmark-guided A*."""
        d, nodes = self._search(source, target)
        if nodes is None:
            return None
        return Path(tuple(nodes), d)
