"""Dijkstra baselines: the paper's reference competitor [9].

Two engines are provided:

* :class:`DijkstraEngine` — textbook unidirectional Dijkstra with early
  termination at the target (what the paper benchmarks as "Dijkstra");
* :class:`BidirectionalEngine` — the alternating two-front variant, which
  is also the skeleton FC/AH/CH queries are built on.

Both answer a distance query by actually finding the shortest path first,
which is why the paper observes identical timings for Dijkstra's distance
and path queries (Section 6.3) — our engines reproduce that behaviour.
"""

from __future__ import annotations

from typing import Optional

from ..graph.path import Path
from ..graph.traversal import (
    bidirectional_distance,
    bidirectional_path,
    distance_query,
    shortest_path_query,
)
from .base import BatchCapabilities, QueryEngine

__all__ = ["DijkstraEngine", "BidirectionalEngine"]


class DijkstraEngine(QueryEngine):
    """Plain Dijkstra with early exit; no preprocessing, no index."""

    name = "Dijkstra"

    def batch_capabilities(self) -> BatchCapabilities:
        """Point and batch paths run the *same* forward Dijkstra (same
        relaxation order, same float accumulation), so the planner may
        fold shared-source point queries into one target-pruned search
        without changing a bit.  BidirectionalEngine cannot make this
        promise: its point query sums a forward and a backward label at
        the meeting node, a different association than the one-sided
        batch fallback."""
        return BatchCapabilities(exact_point_coalescing=True)

    def distance(self, source: int, target: int) -> float:
        """Distance via a single forward search stopped at ``target``."""
        return distance_query(self.graph, source, target)

    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """Shortest path via a single forward search with parents."""
        return shortest_path_query(self.graph, source, target)


class BidirectionalEngine(QueryEngine):
    """Bidirectional Dijkstra; roughly halves the searched ball radius."""

    name = "BiDijkstra"

    def distance(self, source: int, target: int) -> float:
        """Distance via alternating forward/backward searches."""
        return bidirectional_distance(self.graph, source, target)

    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """Path via alternating searches with meeting-node splicing."""
        return bidirectional_path(self.graph, source, target)
