"""Transit Node Routing (Bast et al. [5, 6]) — the paper's closest kin.

Section 5 calls Bast et al.'s observation — a small set of *transit
nodes* covers all long shortest paths — the direct inspiration for the
arterial dimension, and notes (citing the experimental study [25]) that
the original TNR heuristic "is shown to be flawed in that it may return
incorrect query results".  This implementation reproduces both sides:

* **The machinery** — a CH-based TNR: the top-``k`` contraction-rank
  nodes form the transit set; each node stores its forward/backward
  *access nodes* (the first transit nodes on upward paths) with exact
  distances; an all-pairs table over transit nodes finishes the job, so
  a far query is ``min over (a, b) of d(s,a) + D(a,b) + d(b,t)`` — three
  table lookups per access pair, no graph search at all.
* **The flaw** — whether the table answer is exact depends on the
  *locality filter*: table answers are only guaranteed when the true
  shortest path climbs through a transit node, which short queries may
  not.  The filter is a heuristic grid-distance threshold
  (``locality_cells``); queries below it fall back to an exact CH
  search.  Setting the threshold too low reproduces the incorrectness
  the paper cites — ``tests/test_tnr.py`` demonstrates it — while the
  table answer is always an upper bound, never garbage.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..graph.graph import Graph
from ..graph.path import Path
from ..graph.workspace import acquire, release
from ..spatial.grid import GridPyramid, NodeGrid
from .base import QueryEngine
from .ch import CHEngine

__all__ = ["TNREngine"]

INF = float("inf")


class TNREngine(QueryEngine):
    """CH-based Transit Node Routing.

    Parameters
    ----------
    graph:
        The road network.
    transit_count:
        Size of the transit set (the top contraction ranks).
    locality_cells:
        Queries whose endpoints are at least this many finest-grid cells
        apart (Chebyshev) are answered from the table; closer ones fall
        back to the exact CH query.  Higher is safer and slower.
    """

    name = "TNR"

    def __init__(
        self,
        graph: Graph,
        transit_count: int = 24,
        locality_cells: int = 24,
    ) -> None:
        super().__init__(graph)
        if transit_count < 1:
            raise ValueError("need at least one transit node")
        self.locality_cells = locality_cells
        self._ch = CHEngine(graph)
        rank = self._ch.rank
        order = sorted(range(graph.n), key=lambda u: -rank[u])
        self.transit: List[int] = order[: min(transit_count, graph.n)]
        transit_set = set(self.transit)
        self._tidx: Dict[int, int] = {t: i for i, t in enumerate(self.transit)}

        self._node_grid = NodeGrid(graph, GridPyramid.from_graph(graph))

        # Access nodes: first transit nodes met by upward searches.  One
        # workspace serves the whole 2n-search construction sweep.
        res = self._ch._res
        ws = acquire(graph)
        try:
            self._access_f: List[List[Tuple[int, float]]] = [
                self._access(u, res.up_out, transit_set, ws) for u in graph.nodes()
            ]
            self._access_b: List[List[Tuple[int, float]]] = [
                self._access(u, res.up_in, transit_set, ws) for u in graph.nodes()
            ]
        finally:
            release(graph, ws)

        # All-pairs transit table via the (exact) CH engine.
        k = len(self.transit)
        self._table: List[List[float]] = [
            [self._ch.distance(a, b) for b in self.transit] for a in self.transit
        ]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _access(
        source: int,
        adjacency: List[List[Tuple[int, float, Optional[int]]]],
        transit_set: set,
        ws,
    ) -> List[Tuple[int, float]]:
        """Upward search from ``source``; transit nodes are terminals.

        Returns the first-met transit nodes with their exact upward
        distances — Bast et al.'s access nodes, computed the CH way on
        the shared workspace arrays.
        """
        c = ws.begin()
        dist = ws.dist
        visit = ws.visit
        dist[source] = 0.0
        visit[source] = c
        heap: List[Tuple[float, int]] = [(0.0, source)]
        access: List[Tuple[int, float]] = []
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            if u in transit_set:
                access.append((u, d))
                continue  # do not search past a transit node
            for v, w, _mid in adjacency[u]:
                nd = d + w
                if visit[v] != c:
                    visit[v] = c
                    dist[v] = nd
                    heappush(heap, (nd, v))
                elif nd < dist[v]:
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return access

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Access entries + the k x k table + the underlying CH index."""
        k = len(self.transit)
        access = sum(len(a) for a in self._access_f) + sum(
            len(a) for a in self._access_b
        )
        return access + k * k + self._ch.index_size()

    def is_local(self, source: int, target: int) -> bool:
        """True when the pair is below the locality threshold (fallback)."""
        return (
            self._node_grid.chebyshev_cells(1, source, target)
            < self.locality_cells
        )

    def table_distance(self, source: int, target: int) -> float:
        """The pure table answer: exact for transit-covered paths, an
        upper bound otherwise (never an underestimate)."""
        tidx = self._tidx
        table = self._table
        best = INF
        for a, da in self._access_f[source]:
            row = table[tidx[a]]
            for b, db in self._access_b[target]:
                d = da + row[tidx[b]] + db
                if d < best:
                    best = d
        return best

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Table lookup for far pairs, CH fallback for local ones."""
        if source == target:
            return 0.0
        if self.is_local(source, target):
            return self._ch.distance(source, target)
        return self.table_distance(source, target)

    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """TNR answers distances; paths delegate to the CH substrate.

        This mirrors Bast et al. [6], where path retrieval is layered on
        a conventional search once the distance (and the access pair) is
        known.
        """
        return self._ch.shortest_path(source, target)
