"""Hub labeling (2-hop labels) built from the CH hierarchy.

The fastest query scheme in the Wu et al. experimental study (VLDB 2012)
and the one the paper's sub-millisecond ambition ultimately points at:
precompute for every node ``u`` a *forward label* — pairs ``(h, d(u,h))``
over a small set of hub nodes — and a *backward label* with distances
*into* ``u``; then ``d(s, t)`` is the minimum of
``d(s, h) + d(h, t)`` over hubs ``h`` common to the forward label of
``s`` and the backward label of ``t``.  No graph traversal at query
time: two sorted arrays, one merge-join.

Construction reuses the CH machinery of :mod:`repro.baselines.ch`
(reference [11]) in the style of Abraham et al.'s CH-based hub labels
and Akiba et al.'s pruned landmark labeling (SIGMOD 2013):

* Contract the graph once; ``rank`` orders nodes by importance.
* Process nodes in **descending** rank order.  For node ``u``, the
  forward label candidates are exactly the nodes settled by a CH upward
  search from ``u`` (the bidirectional CH query's forward half), whose
  correctness guarantees that every shortest path ``u -> t`` has a
  meeting hub present in both ``u``'s upward search space and ``t``'s
  downward one.
* **Pruning:** when the upward search settles ``h`` at distance ``d``,
  the already-built labels (all hubs outrank ``u``) answer ``d(u, h)``;
  if that label query is ``<= d`` the entry is redundant — some higher
  hub already covers every pair this entry could serve — so ``h`` is
  neither labelled nor expanded.  This is what keeps labels small.

Storage is flat CSR-style parallel arrays, matching the PR-1 graph
substrate idiom: ``label_head[u] : label_head[u+1]`` delimits node
``u``'s slice of ``label_hub`` / ``label_dist`` / ``label_parent``, with
hubs sorted ascending per node so the distance query is a pure two-index
merge-join.  ``label_parent`` stores each hub's predecessor on the
upward path from the node (``-1`` for the node itself), which together
with the contraction's shortcut middles reconstructs full original-graph
paths.

The batched surface (:meth:`HubLabelIndex.one_to_many`,
:meth:`HubLabelIndex.distance_table`) is where the interpreter overhead
of per-entry scans actually bites — a 100x100 table touches tens of
thousands of label entries — so it dispatches on :mod:`repro.backend`:

* **native** (the top tier, when the optional :mod:`repro.native`
  C extension is built): all three hot kernels — the two-pointer
  merge-join ``distance``, the dense-gather ``one_to_many`` and the
  co-occurrence scatter-min ``distance_table`` — run as single C calls
  directly over the label columns through the buffer protocol, flat
  and compact domains alike (the C loops read int32 and int64/float64
  columns through the same accessors, so compact bundles never widen).
* **numpy** (the default when importable): ``one_to_many`` scatters the
  source label into a dense hub-indexed distance vector (absent hubs
  read ``inf`` for free — no searchsorted, no mask), gathers it through
  the concatenation of the targets' backward columns, and collapses the
  per-target runs with ``minimum.reduceat``; ``distance_table``
  materialises exactly the hub *co-occurrence* pairs (the same pairs
  the pure scan iterates) via a bucketed merge-join and scatter-mins
  them into the table with ``minimum.at`` — no Python in either loop.
  A broadcast + ``reduceat`` formulation was benchmarked too and lost:
  label/bucket matrices here are ~3% dense, so candidate expansion
  proportional to co-occurrences beats dense row sweeps ~3x.
* **pure-python**: PR 2's label-scan paths (source-label dict for
  batches, inverted hub buckets for tables), kept verbatim as the
  tested fallback and as the A/B baseline the benchmarks record.

The per-query :meth:`HubLabelIndex.distance` stays a two-pointer
merge-join over the stdlib-array columns on both backends — at ~2 µs a
query there is nothing for vectorisation to amortise, and numpy scalar
indexing would only add boxing overhead.  The label columns therefore
remain stdlib ``array``\\ s; the kernels vectorise over cached
*zero-copy* numpy views of them (:func:`repro.backend.np_view`).

Two **column domains** share every query path.  A freshly built index
holds *flat* columns (int64 hubs/parents, float64 dists); an index
loaded from a compact ``HL2`` bundle section
(:mod:`repro.core.serialize`) holds *compact* ones — int32 hubs,
parents and heads, int32 dists when the exactness guard proved the
values integral.  The kernels are domain-generic: scalar paths coerce
results through ``float()`` (int32 -> float64 casts are exact), the
numpy table kernel widens the source distances to float64 before the
join (so int32 + int32 can never wrap), and :meth:`_np_views` maps each
column's own width.  Answers are bit-identical across domains *and*
backends — the compact domain halves cache-line traffic in the
gather-bound table kernel without changing a single bit of output.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left
from collections import OrderedDict
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from .. import backend
from .. import native as _native
from ..graph.graph import Graph
from ..graph.path import Path
from ..graph.workspace import acquire, release
from .base import BatchCapabilities, QueryEngine
from .ch import ContractionResult, contract_graph, unpack_shortcuts

__all__ = ["HubLabelIndex"]

INF = float("inf")

#: Upper bound on hub co-occurrence pairs materialised at once by the
#: numpy distance_table kernel; larger requests are chunked over
#: sources (the scatter-min accumulates across chunks, so chunking is
#: invisible in results).  4M pairs is ~100 MB of transient scratch.
_TABLE_PAIR_BUDGET = 4_000_000

#: Distinct target tuples whose hub->targets inversion is memoized per
#: index (ROADMAP "batched-table headroom": serving workloads reuse
#: target sets — dispatch keeps asking about the same open orders).
#: Each entry is O(total backward-label entries of its targets), so the
#: bound keeps a long-lived server from accumulating dead target sets.
_TARGET_INVERSION_CACHE_MAX = 8


def _pruned_upward_labels(
    u: int,
    adjacency: List[List[Tuple[int, float, Optional[int]]]],
    opposite: List[Optional[List[Tuple[int, float, int]]]],
    ws,
) -> List[Tuple[int, float, int]]:
    """One pruned CH upward search; returns ``u``'s label, hub-sorted.

    ``adjacency`` is the upward graph of the search direction (``up_out``
    for forward labels, ``up_in`` for backward); ``opposite`` holds the
    *finished* labels of the opposite direction, complete for every node
    of higher rank — which is all any settled hub can be, since upward
    edges only ascend ranks.

    A settled hub is pruned when the label query over ``u``'s
    already-accepted entries and the hub's opposite label matches or
    beats its settled distance; pruned hubs are not expanded, so whole
    redundant subtrees disappear.  A kept hub's search-tree parent was
    necessarily expanded, hence kept, so parent chains stay inside the
    label — that is what makes ``label_parent`` walkable.
    """
    c = ws.begin()
    dist = ws.dist
    visit = ws.visit
    parent = ws.parent
    dist[u] = 0.0
    visit[u] = c
    parent[u] = -1
    accepted: Dict[int, float] = {}
    entries: List[Tuple[int, float, int]] = []
    heap: List[Tuple[float, int]] = [(0.0, u)]
    while heap:
        d, x = heappop(heap)
        if d > dist[x]:
            continue  # stale entry
        if x != u:
            # Label query d(u, x) over accepted-so-far x opposite label.
            best = INF
            for hub, hd, _ in opposite[x]:
                ad = accepted.get(hub)
                if ad is not None and ad + hd < best:
                    best = ad + hd
            if best <= d:
                continue  # covered by a higher hub: prune the subtree
        accepted[x] = d
        entries.append((x, d, parent[x]))
        for v, w, _ in adjacency[x]:
            nd = d + w
            if visit[v] != c:
                visit[v] = c
                dist[v] = nd
                parent[v] = x
                heappush(heap, (nd, v))
            elif nd < dist[v]:
                dist[v] = nd
                parent[v] = x
                heappush(heap, (nd, v))
    entries.sort()
    return entries


def _rank_bands(res: ContractionResult, by_rank: List[int]) -> List[List[int]]:
    """Partition nodes into parallelisable *rank bands* (equal levels).

    ``height[u]`` is the longest upward-edge path out of ``u`` over the
    union of both upward graphs (``up_out`` and ``up_in``).  Every node
    either search from ``u`` can settle is reachable by upward edges,
    hence has strictly smaller height — so nodes of equal height are
    mutually unreachable: their pruned searches read only labels of
    earlier (smaller-height) bands, and a whole band can build in
    parallel once the previous bands are finished.  Band 0 holds the top
    of the hierarchy (no upward edges at all), matching the serial
    descending-rank order's first nodes; by induction every node's label
    comes out *identical* to the serial build's (the ISSUE's
    byte-for-byte bar — ``tests/test_pool.py`` pins it).

    Within a band nodes are listed in descending rank, so a
    single-worker band-parallel build visits nodes in exactly the serial
    order.
    """
    n = len(by_rank)
    height = [0] * n
    for r in range(n - 1, -1, -1):  # upward neighbours outrank u: done
        u = by_rank[r]
        h = 0
        for v, _, _ in res.up_out[u]:
            hv = height[v]
            if hv >= h:
                h = hv + 1
        for v, _, _ in res.up_in[u]:
            hv = height[v]
            if hv >= h:
                h = hv + 1
        height[u] = h
    bands: List[List[int]] = [[] for _ in range(max(height) + 1 if n else 0)]
    for r in range(n - 1, -1, -1):
        u = by_rank[r]
        bands[height[u]].append(u)
    return bands


def _contiguous_chunks(seq: List[int], k: int) -> List[List[int]]:
    """``seq`` in ``k`` contiguous, near-equal slices (may be empty)."""
    q, r = divmod(len(seq), k)
    out = []
    pos = 0
    for i in range(k):
        size = q + (1 if i < r else 0)
        out.append(seq[pos : pos + size])
        pos += size
    return out


#: Bands smaller than this are built in the parent process — at the top
#: of the hierarchy bands hold a handful of nodes, where two pipe
#: round-trips cost more than the searches themselves.  The
#: ``band_min=`` constructor knob overrides it per build.
_PARALLEL_BAND_MIN = 8

#: Default size of the pipelined build's shared sync ring (split into
#: two halves of per-worker slices; chunks that do not fit their slice
#: ride the pipe packed).
_SYNC_LANE_BYTES = 1 << 20


def _build_labels_parallel(
    graph: Graph,
    res: ContractionResult,
    by_rank: List[int],
    workers: int,
    mp_context: Optional[str],
    band_min: int = _PARALLEL_BAND_MIN,
    pipeline: bool = True,
    sync_lane_bytes: int = _SYNC_LANE_BYTES,
) -> Tuple[list, list, dict]:
    """Fan the pruned label build out over band-sliced worker processes.

    Reuses the :mod:`repro.serve.pool` worker substrate: each build
    worker holds the upward graphs plus a local replica of all finished
    labels.  Per band, workers compute contiguous slices of the band's
    nodes and every replica is brought up to date before the next band.
    Small bands (< ``band_min`` nodes) are computed in the parent
    directly (the round-trip would dominate).  Results are exactly the
    serial build's labels — see :func:`_rank_bands` for why — so the
    flattened columns are byte-identical.  A worker crash during the
    build raises :class:`~repro.serve.pool.WorkerCrashed` (builds are
    restartable; only the serving pool retries).

    Two sync fabrics:

    **Barrier** (``pipeline=False``, the A/B baseline): workers return
    pickled entry lists, the parent merges them and broadcasts a
    pickled, *acked* ``("sync", entries)`` to every worker — a full
    stop-the-world fence per band.

    **Pipelined** (the default): band replies are packed LBLCHUNK
    columns (:func:`repro.core.serialize.pack_label_entries`) written
    into the worker's slice of one shared sync ring; the parent
    CRC-checks each chunk as it lands, relays a ~60 B ``("syncl",
    offset, nbytes, crc)`` frame to the peers, and defers its own
    decode until after the *next* band's commands are in flight — so
    band *b*'s broadcast and the parent's merge overlap band *b+1*'s
    compute.  No sync is ever acked: pipe FIFO order means a worker's
    next band reply proves every earlier relay was consumed.  The ring
    is double-buffered (two halves, indexed by a large-band counter):
    worker *w*'s slice for band *k* is only rewritten at band *k+2*,
    by which point every peer's band *k+1* reply has fenced its read
    of the band-*k* chunk.  Small parent-built bands broadcast packed
    ``("syncp", blob, crc)`` frames over the pipe (the ring's slices
    belong to the workers' reply rhythm), and a chunk larger than its
    slice rides the pipe packed the same way.
    """
    import pickle
    import zlib

    from ..core.serialize import pack_label_entries, unpack_label_entries
    from ..serve.pool import (  # deferred: no import cycle
        ReplyCorrupted,
        _Lane,
        build_worker_handles,
    )

    n = graph.n
    bands = _rank_bands(res, by_rank)
    lane = None
    lane_cfg = None
    slice_bytes = 0
    if pipeline:
        try:
            lane = _Lane(sync_lane_bytes)
        except Exception:
            lane = None  # no shared memory: chunks ride the pipe packed
        if lane is not None:
            slice_bytes = lane.size // (2 * workers)
            lane_cfg = {"name": lane.name, "size": lane.size}
    handles = build_worker_handles(
        n,
        res.up_out,
        res.up_in,
        workers,
        mp_context=mp_context,
        sync_lane=lane_cfg,
    )
    fwd: List[Optional[List[Tuple[int, float, int]]]] = [None] * n
    bwd: List[Optional[List[Tuple[int, float, int]]]] = [None] * n
    local_nodes = 0
    sync_shm = 0
    sync_pipe = 0
    oversized_chunks = 0
    overlap_sum = 0.0
    overlap_bands = 0
    big_k = 0  # large-band counter — indexes the ring's double-buffer half
    pending: List[bytes] = []  # packed chunks awaiting the deferred decode

    def _drain() -> None:
        for blob in pending:
            for u, f, b in unpack_label_entries(blob):
                fwd[u] = f
                bwd[u] = b
        pending.clear()

    ws = acquire(graph)
    try:
        for bi, band in enumerate(bands):
            last = bi + 1 == len(bands)  # nothing depends on the last band
            if len(band) < band_min:
                if pipeline:
                    _drain()  # parent search needs every prior label
                entries = []
                for u in band:
                    f = _pruned_upward_labels(u, res.up_out, bwd, ws)
                    b = _pruned_upward_labels(u, res.up_in, fwd, ws)
                    fwd[u] = f
                    bwd[u] = b
                    entries.append((u, f, b))
                local_nodes += len(band)
                if last:
                    continue
                if pipeline:
                    blob = pack_label_entries(entries)
                    frame = ("syncp", blob, zlib.crc32(blob))
                    sync_pipe += len(pickle.dumps(frame)) * workers
                    for handle in handles:
                        handle.send(frame)  # un-acked: FIFO fences it
                else:
                    sync_pipe += (
                        len(pickle.dumps(("sync", entries))) * workers
                    )
                    for handle in handles:
                        handle.send(("sync", entries))
                    for handle in handles:
                        handle.recv()
                continue
            chunks = _contiguous_chunks(band, workers)
            if not pipeline:  # barrier mode: pickled replies, acked sync
                for handle, chunk in zip(handles, chunks):
                    if chunk:
                        handle.send(("band", chunk))
                entries = []
                for handle, chunk in zip(handles, chunks):
                    if chunk:
                        reply = handle.recv()
                        entries.extend(reply[1])
                for u, f, b in entries:
                    fwd[u] = f
                    bwd[u] = b
                if not last:
                    sync_pipe += (
                        len(pickle.dumps(("sync", entries))) * workers
                    )
                    for handle in handles:
                        handle.send(("sync", entries))
                    for handle in handles:
                        handle.recv()
                continue
            # Pipelined large band.  Every worker gets a band command —
            # an empty chunk's reply is what proves the worker consumed
            # the preceding sync relays (pipe FIFO), which is also what
            # makes the double-buffered slice reuse at band big_k + 2
            # safe.
            half = big_k % 2
            big_k += 1
            for wi, handle in enumerate(handles):
                offset = (half * workers + wi) * slice_bytes
                handle.send(("band", chunks[wi], offset, slice_bytes))
            _drain()  # the overlap: decode band bi-1 while workers compute
            band_total = 0
            band_last = 0
            for wi, handle in enumerate(handles):
                reply = handle.recv()
                if not chunks[wi]:
                    continue  # empty chunk: the reply was only a fence
                if reply[0] == "okb":
                    _, offset, nbytes, crc, _elapsed = reply
                    blob = bytes(lane.shm.buf[offset : offset + nbytes])
                    sync_shm += nbytes
                    relay = ("syncl", offset, nbytes, crc)
                else:  # "okp": chunk larger than its slice, or no lane
                    _, blob, crc, _elapsed = reply
                    oversized_chunks += 1
                    relay = ("syncp", blob, crc)
                if zlib.crc32(blob) != crc:
                    raise ReplyCorrupted(
                        f"build chunk from worker {wi} failed CRC32 "
                        f"({len(blob)} bytes, band {bi})"
                    )
                if not last:
                    sync_pipe += len(pickle.dumps(relay)) * (workers - 1)
                    for pj, peer in enumerate(handles):
                        if pj != wi:
                            peer.send(relay)  # un-acked: FIFO fences it
                pending.append(blob)
                band_total += len(blob)
                band_last = len(blob)
            if band_total:
                # Everything relayed before the band's last chunk landed
                # was broadcast while workers were still computing.
                overlap_sum += (band_total - band_last) / band_total
                overlap_bands += 1
        if pipeline:
            _drain()
    finally:
        release(graph, ws)
        for handle in handles:
            handle.close()
        if lane is not None:
            lane.destroy()
    info = {
        "mode": "parallel",
        "workers": workers,
        "bands": len(bands),
        "largest_band": max((len(b) for b in bands), default=0),
        "parent_built_nodes": local_nodes,
        "pipeline": bool(pipeline),
        "band_min": band_min,
        "sync": {
            "shm_bytes": sync_shm,
            "pipe_bytes": sync_pipe,
            "oversized_chunks": oversized_chunks,
            "overlap_fraction": (
                round(overlap_sum / overlap_bands, 4) if overlap_bands else 0.0
            ),
        },
    }
    return fwd, bwd, info


def _flatten(
    labels: Sequence[List[Tuple[int, float, int]]],
) -> Tuple[array, array, array, array]:
    """Pack per-node entry lists into the flat CSR-style columns."""
    head = array("q", bytes(8 * (len(labels) + 1)))
    hub = array("q")
    dist = array("d")
    par = array("q")
    for u, entries in enumerate(labels):
        for h, d, p in entries:
            hub.append(h)
            dist.append(d)
            par.append(p)
        head[u + 1] = len(hub)
    return head, hub, dist, par


class HubLabelIndex(QueryEngine):
    """2-hop label distance oracle with CH-shortcut path reconstruction.

    Parameters
    ----------
    order, hop_limit, settle_limit:
        Passed through to :func:`repro.baselines.ch.contract_graph`
        (``order=None`` selects the classic lazy edge-difference order).
    contraction:
        An existing :class:`ContractionResult` to label over, skipping
        the contraction phase (e.g. share one hierarchy between a
        :class:`~repro.baselines.ch.CHEngine` and its labels).
    build_workers:
        ``> 1`` fans the label build out over that many worker
        processes (:func:`_build_labels_parallel`): nodes of equal
        *level* in the upward DAG are independent given the finished
        higher ranks, so whole rank bands build concurrently.  Labels
        come out byte-identical to the serial build — the default
        (``None``/``1``) keeps the serial descending-rank loop verbatim.
    mp_context:
        ``multiprocessing`` start method for the build workers
        (default: ``fork`` where available).
    band_min:
        Bands smaller than this many nodes are built inline in the
        parent instead of fanned out (default: the module's
        ``_PARALLEL_BAND_MIN``, 8).  Any threshold picks the same
        labels byte-for-byte — it only trades pipe round-trips against
        parent-side compute.  Ignored by the serial build.
    build_pipeline:
        ``True`` (default) overlaps each band's sync broadcast with
        the next band's compute through a shared-memory sync ring of
        packed label columns; ``False`` keeps the barrier build (a
        full acked pickled broadcast per band — the A/B baseline).
        Identical labels either way.  Ignored by the serial build.
    """

    name = "HL"

    def __init__(
        self,
        graph: Graph,
        order: Optional[Sequence[int]] = None,
        hop_limit: int = 8,
        settle_limit: int = 64,
        contraction: Optional[ContractionResult] = None,
        build_workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        band_min: Optional[int] = None,
        build_pipeline: bool = True,
    ) -> None:
        super().__init__(graph)
        if band_min is not None and band_min < 1:
            raise ValueError(f"band_min must be >= 1, got {band_min}")
        res = contraction if contraction is not None else contract_graph(
            graph, order=order, hop_limit=hop_limit, settle_limit=settle_limit
        )
        self._middle: Dict[Tuple[int, int], int] = res.middle
        n = graph.n
        # Descending rank: every hub a search can settle is already done.
        by_rank = [0] * n
        for node, r in enumerate(res.rank):
            by_rank[r] = node
        if build_workers is not None and build_workers > 1:
            fwd, bwd, self.build_info = _build_labels_parallel(
                graph,
                res,
                by_rank,
                build_workers,
                mp_context,
                band_min=(
                    band_min if band_min is not None else _PARALLEL_BAND_MIN
                ),
                pipeline=build_pipeline,
            )
        else:
            fwd: List[Optional[List[Tuple[int, float, int]]]] = [None] * n
            bwd: List[Optional[List[Tuple[int, float, int]]]] = [None] * n
            ws = acquire(graph)
            try:
                for r in range(n - 1, -1, -1):
                    u = by_rank[r]
                    fwd[u] = _pruned_upward_labels(u, res.up_out, bwd, ws)
                    bwd[u] = _pruned_upward_labels(u, res.up_in, fwd, ws)
            finally:
                release(graph, ws)
            self.build_info = {"mode": "serial", "workers": 1}
        self.fwd_head, self.fwd_hub, self.fwd_dist, self.fwd_parent = _flatten(fwd)
        self.bwd_head, self.bwd_hub, self.bwd_dist, self.bwd_parent = _flatten(bwd)
        self._init_runtime_state()

    def _init_runtime_state(self) -> None:
        """Per-instance caches rebuilt on every boot path.

        Called by ``__init__`` and by :func:`repro.core.serialize.
        load_hl_index` (which bypasses ``__init__`` via ``__new__``), so
        a bundle-loaded replica carries the same runtime state as a
        freshly built index.
        """
        if not hasattr(self, "build_info"):
            self.build_info = {"mode": "loaded"}
        if not hasattr(self, "domain"):
            #: "flat" (int64/float64 columns) or "compact" (int32 HL2
            #: columns) — set by the HL2 loader before this runs.
            self.domain = "flat"
        if not hasattr(self, "dist_encoding"):
            #: Per-direction on-disk distance encoding this index came
            #: from ("i4" / "dd" / "f8"); flat columns are always f8.
            self.dist_encoding = ("f8", "f8")
        self._npv = None  # cached zero-copy numpy views, built on first use
        # Target-side inversion memo: (backend flavour, target tuple) ->
        # prebuilt inversion structure.  Labels are immutable, so entries
        # never go stale; a small LRU bound caps the memory.
        self._tinv: "OrderedDict" = OrderedDict()
        self._tinv_lock = threading.Lock()
        self._tinv_hits = 0
        self._tinv_misses = 0
        self._tinv_max = _TARGET_INVERSION_CACHE_MAX

    def _np_views(self):
        """Zero-copy numpy views over the six query-time label columns.

        Cached per index (labels are immutable once built); shared by
        both batched kernels.  Only called when the numpy backend is
        active, so :mod:`repro.backend` guarantees numpy is importable.
        Width-generic (:func:`repro.backend.np_view`): flat columns view
        as int64/float64, compact HL2 columns as int32 — the kernels'
        gathers then move half the cache-line traffic per entry.
        """
        views = getattr(self, "_npv", None)
        if views is None:
            view = backend.np_view
            views = (
                view(self.fwd_head),
                view(self.fwd_hub),
                view(self.fwd_dist),
                view(self.bwd_head),
                view(self.bwd_hub),
                view(self.bwd_dist),
            )
            self._npv = views
        return views

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Label entries (both directions) plus shortcut-middle entries."""
        return len(self.fwd_hub) + len(self.bwd_hub) + len(self._middle)

    @property
    def label_count(self) -> int:
        """Total label entries across both directions."""
        return len(self.fwd_hub) + len(self.bwd_hub)

    def average_label_size(self) -> float:
        """Mean entries per node per direction (the classic HL metric)."""
        return self.label_count / (2.0 * max(1, self.graph.n))

    def stats(self) -> dict:
        """Footprint observability: bytes/entry and per-column sizes.

        Reports the *in-memory* query-time columns (flat vs compact
        domain, per-column byte sizes, bytes per label entry) plus the
        on-disk distance encoding the index came from.  The serialized
        footprint of a bundle is the companion view —
        ``python -m repro.serialize --inspect <bundle>``.
        """
        columns = {}
        label_bytes = 0
        for name in (
            "fwd_head", "fwd_hub", "fwd_dist", "fwd_parent",
            "bwd_head", "bwd_hub", "bwd_dist", "bwd_parent",
        ):
            col = getattr(self, name)
            itemsize = col.itemsize
            nbytes = len(col) * itemsize
            columns[name] = {"len": len(col), "itemsize": itemsize, "bytes": nbytes}
            label_bytes += nbytes
        entries = self.label_count
        return {
            "domain": self.domain,
            "dist_encoding": tuple(self.dist_encoding),
            "n": self.graph.n,
            "entries": entries,
            "label_bytes": label_bytes,
            "bytes_per_entry": round(label_bytes / entries, 3) if entries else 0.0,
            "avg_label_size": round(self.average_label_size(), 3),
            "middles": len(self._middle),
            "columns": columns,
        }

    # ------------------------------------------------------------------
    # Planner capabilities + target-inversion memo
    # ------------------------------------------------------------------
    def batch_capabilities(self) -> BatchCapabilities:
        """Full grouping unlocked: the label join *is* a batch primitive.

        Every batched path (dict scan, bucket scan, dense gather,
        co-occurrence join) minimises over exactly the hub co-occurrence
        pairs the per-query merge-join visits, summing the same
        ``fwd_dist + bwd_dist`` operands — so coalescing point queries
        into ``one_to_many`` and same-target rows into
        ``distance_table`` is bit-exact, not just value-exact
        (``tests/test_backend_parity.py`` pins the kernel side).
        """
        if backend.use_native():
            o2m, table = "hl-native-gather", "hl-native-scatter-min"
        elif backend.use_numpy():
            o2m, table = "hl-dense-gather", "hl-cooccurrence-join"
        else:
            o2m, table = "hl-label-scan", "hl-bucket-scan"
        return BatchCapabilities(
            one_to_many=o2m,
            distance_table=table,
            native_batching=True,
            exact_point_coalescing=True,
        )

    def _tinv_lookup(self, key):
        """Memoized inversion for ``key``, refreshed as most-recent."""
        with self._tinv_lock:
            entry = self._tinv.get(key)
            if entry is not None:
                self._tinv.move_to_end(key)
                self._tinv_hits += 1
                return entry
            self._tinv_misses += 1
        return None

    def _tinv_store(self, key, entry):
        """Insert an inversion, evicting least-recently-used past the bound.

        Concurrent builders may race to store the same key; both build
        identical structures (labels are immutable), so last-write-wins
        is harmless.
        """
        with self._tinv_lock:
            self._tinv[key] = entry
            while len(self._tinv) > self._tinv_max:
                self._tinv.popitem(last=False)
        return entry

    def clear_target_inversions(self) -> None:
        """Drop the memoized inversions and reset the counters.

        Benchmarks that want to time the *cold* table kernel (memo
        included) call this between repeats; serving keeps the memo.
        """
        with self._tinv_lock:
            self._tinv.clear()
            self._tinv_hits = 0
            self._tinv_misses = 0

    def target_inversion_stats(self) -> dict:
        """Memo counters: hits, misses, size, maxsize (for serving stats)."""
        with self._tinv_lock:
            return {
                "hits": self._tinv_hits,
                "misses": self._tinv_misses,
                "size": len(self._tinv),
                "maxsize": self._tinv_max,
            }

    def _target_inversion_pure(
        self, targets: Tuple[int, ...]
    ) -> Dict[int, List[Tuple[int, float]]]:
        """Hub -> [(column, dist)] buckets over ``targets``, memoized."""
        entry = self._tinv_lookup(("pure", targets))
        if entry is not None:
            return entry
        buckets: Dict[int, List[Tuple[int, float]]] = {}
        bhead, bhub, bdist = self.bwd_head, self.bwd_hub, self.bwd_dist
        for col, t in enumerate(targets):
            for k in range(bhead[t], bhead[t + 1]):
                buckets.setdefault(bhub[k], []).append((col, bdist[k]))
        return self._tinv_store(("pure", targets), buckets)

    def _target_inversion_numpy(self, targets: Tuple[int, ...]):
        """Hub-sorted target columns + per-hub run index, memoized.

        Returns ``(ttotal, tdist_s, tcol_s, uhub, ucount, ustart)`` —
        the whole target-side half of the co-occurrence join (concat,
        stable sort by hub, per-*present*-hub run offsets), which is
        exactly the part a serving workload reuses across calls when
        dispatch keeps asking about the same open orders.  The run
        index is sparse (``uhub`` holds only hubs that occur in the
        target labels), keeping every memo entry O(target label
        entries) as documented — a dense hub-indexed table would pin
        O(graph.n) per entry however small the target set.
        """
        entry = self._tinv_lookup(("numpy", targets))
        if entry is not None:
            return entry
        np = backend.np
        _, _, _, bhead, bhub, bdist = self._np_views()
        tgt = np.asarray(targets, dtype=np.int64)
        tstarts = bhead[tgt]
        tlens = bhead[tgt + 1] - tstarts
        ttotal = int(tlens.sum())
        if ttotal:
            toffs = np.cumsum(tlens) - tlens
            tpos = np.arange(ttotal, dtype=np.int64) + np.repeat(
                tstarts - toffs, tlens
            )
            thub = bhub[tpos]
            order = np.argsort(thub, kind="stable")
            tdist_s = bdist[tpos][order]
            tcol_s = np.repeat(np.arange(tgt.size, dtype=np.int64), tlens)[order]
            uhub, ucount = np.unique(thub, return_counts=True)
            ustart = np.cumsum(ucount) - ucount
            entry = (ttotal, tdist_s, tcol_s, uhub, ucount, ustart)
        else:
            entry = (0, None, None, None, None, None)
        return self._tinv_store(("numpy", targets), entry)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Merge-join of the two sorted label slices; no graph traversal.

        Domain-generic: compact int32 columns sum as exact Python ints
        and coerce to float64 on return — the same value, bit for bit,
        the flat float64 columns produce.  Under the native tier the
        same merge-join runs as one C call over the same columns.
        """
        if source == target:
            return 0.0
        if backend.use_native():
            return float(
                _native.distance(
                    self.fwd_head,
                    self.fwd_hub,
                    self.fwd_dist,
                    self.bwd_head,
                    self.bwd_hub,
                    self.bwd_dist,
                    source,
                    target,
                )
            )
        fhub, fdist = self.fwd_hub, self.fwd_dist
        bhub, bdist = self.bwd_hub, self.bwd_dist
        i = self.fwd_head[source]
        iend = self.fwd_head[source + 1]
        j = self.bwd_head[target]
        jend = self.bwd_head[target + 1]
        best = INF
        while i < iend and j < jend:
            a = fhub[i]
            b = bhub[j]
            if a == b:
                d = fdist[i] + bdist[j]
                if d < best:
                    best = d
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return float(best)

    def _meet(self, source: int, target: int) -> Tuple[float, int]:
        """Like :meth:`distance` but also returns the best hub (-1 if none)."""
        fhub, fdist = self.fwd_hub, self.fwd_dist
        bhub, bdist = self.bwd_hub, self.bwd_dist
        i = self.fwd_head[source]
        iend = self.fwd_head[source + 1]
        j = self.bwd_head[target]
        jend = self.bwd_head[target + 1]
        best = INF
        hub = -1
        while i < iend and j < jend:
            a = fhub[i]
            b = bhub[j]
            if a == b:
                d = fdist[i] + bdist[j]
                if d < best:
                    best = d
                    hub = a
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return float(best), hub

    def one_to_many(self, source: int, targets) -> List[float]:
        """HL fast path: scan the source label once for the whole batch.

        Dispatches on the active backend: the numpy kernel merge-joins
        the source label against the concatenated target columns in C;
        the pure path scans with a hub -> distance dict.  Both return
        identical values (``tests/test_backend_parity.py``).
        """
        targets = list(targets)
        if not targets:
            return []
        if backend.use_native():
            return self._one_to_many_native(source, targets)
        if backend.use_numpy():
            return self._one_to_many_numpy(source, targets)
        return self._one_to_many_pure(source, targets)

    def _one_to_many_native(self, source: int, targets: Sequence[int]) -> List[float]:
        """Native batch: the dense-gather kernel as one C call.

        Same dense hub-indexed scatter/gather the numpy kernel performs
        (and the same candidate sums the pure scan folds), compiled —
        the kernel reads the columns through the buffer protocol, so
        flat and compact domains take the identical code path.  Results
        are plain Python floats built by the extension; ``list`` is the
        column constructor at the boundary.
        """
        return list(
            _native.one_to_many(
                self.fwd_head,
                self.fwd_hub,
                self.fwd_dist,
                self.bwd_head,
                self.bwd_hub,
                self.bwd_dist,
                self.graph.n,
                source,
                targets,
            )
        )

    def _one_to_many_pure(self, source: int, targets: Sequence[int]) -> List[float]:
        """PR 2's label-scan batch: one pass per target, dict probes.

        The forward label becomes a hub -> distance dict (built once per
        call); every target then costs one pass over its backward label
        with O(1) dict probes — no merge pointer per pair, no search.
        """
        src: Dict[int, float] = {}
        fhub, fdist = self.fwd_hub, self.fwd_dist
        # float() up front keeps the sums float64 in the compact (int32)
        # domain too — int -> float64 casts are exact, so the answers
        # stay bit-identical to the flat columns'.
        for i in range(self.fwd_head[source], self.fwd_head[source + 1]):
            src[fhub[i]] = float(fdist[i])
        bhead, bhub, bdist = self.bwd_head, self.bwd_hub, self.bwd_dist
        get = src.get
        out: List[float] = []
        for t in targets:
            if t == source:
                out.append(0.0)
                continue
            best = INF
            for j in range(bhead[t], bhead[t + 1]):
                d = get(bhub[j])
                if d is not None:
                    d += bdist[j]
                    if d < best:
                        best = d
            out.append(best)
        return out

    def _one_to_many_numpy(self, source: int, targets: Sequence[int]) -> List[float]:
        """Vectorised batch: dense hub gather + ``minimum.reduceat``.

        The source's forward label is scattered into a dense
        hub-indexed distance vector (every other hub reads ``inf``, so
        there is no membership test at all); the targets' backward
        columns are gathered into one concatenated target-major run,
        each entry becomes ``dense[hub] + dist`` in a single gather +
        add, and ``minimum.reduceat`` over the per-target run
        boundaries collapses the candidates to one distance per target.
        """
        np = backend.np
        fhead, fhub, fdist, bhead, bhub, bdist = self._np_views()
        tgt = np.asarray(targets, dtype=np.int64)
        fs, fe = int(fhead[source]), int(fhead[source + 1])
        starts = bhead[tgt]
        lens = bhead[tgt + 1] - starts
        total = int(lens.sum())
        if total == 0 or fe == fs:
            out = np.full(tgt.size, INF)
        else:
            dense = np.full(self.graph.n, INF)
            dense[fhub[fs:fe]] = fdist[fs:fe]
            offs = np.cumsum(lens) - lens  # start of each target's run
            pos = np.arange(total, dtype=np.int64) + np.repeat(starts - offs, lens)
            cand = dense.take(bhub[pos]) + bdist[pos]
            # reduceat semantics force two guards: an empty run's slot
            # reports the *next* run's first element (overwritten via the
            # lens == 0 mask below), and an empty run at the very end
            # would index one past the data (the appended inf sentinel
            # absorbs it, and can only ever relax a minimum to itself).
            # offs <= total always, and the appended sentinel makes
            # index ``total`` (an empty trailing run) valid.
            out = np.minimum.reduceat(np.append(cand, INF), offs)
            out[lens == 0] = INF
        out[tgt == source] = 0.0
        return out.tolist()

    def distance_table(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> List[List[float]]:
        """Batched HL join over the actual hub co-occurrences.

        Work is proportional to the number of (source entry, target
        entry) pairs that share a hub instead of ``|sources| x
        |targets|`` label scans, on both backends; the numpy kernel
        additionally runs that work as a bucketed broadcast +
        ``minimum.reduceat`` with no Python in the loop.
        """
        targets = list(targets)
        if not targets:
            return [[] for _ in sources]
        if backend.use_native():
            return self._distance_table_native(list(sources), targets)
        if backend.use_numpy():
            return self._distance_table_numpy(list(sources), targets)
        return self._distance_table_pure(sources, targets)

    def _distance_table_native(
        self, sources: List[int], targets: List[int]
    ) -> List[List[float]]:
        """Native table: counting-sorted co-occurrence join in one C call.

        The kernel builds the same hub -> (column, dist) inversion the
        other tiers use (counting sort by hub), then streams every
        source's forward label through the per-hub runs with a
        scatter-min — exactly the co-occurrence pairs the pure scan and
        the numpy ``minimum.at`` kernel visit, so answers are
        bit-identical; rows come back as plain Python float lists and
        ``list`` re-containers them at the boundary.
        """
        return list(
            _native.distance_table(
                self.fwd_head,
                self.fwd_hub,
                self.fwd_dist,
                self.bwd_head,
                self.bwd_hub,
                self.bwd_dist,
                self.graph.n,
                sources,
                targets,
            )
        )

    def _distance_table_pure(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> List[List[float]]:
        """PR 2's label-scan table: invert the target labels, then stream.

        The targets' backward labels are bucketed by hub up front
        (``hub -> [(column, dist)]``, memoized per target tuple — see
        :meth:`_target_inversion_pure`); each source then scans its
        forward label once, and every hub hit replays its bucket with
        plain additions — no per-pair merge pointers, no hashing in the
        inner loop.
        """
        buckets = self._target_inversion_pure(tuple(targets))
        fhead, fhub, fdist = self.fwd_head, self.fwd_hub, self.fwd_dist
        ncols = len(targets)
        get = buckets.get
        table: List[List[float]] = []
        for s in sources:
            row = [INF] * ncols
            for i in range(fhead[s], fhead[s + 1]):
                bucket = get(fhub[i])
                if bucket is None:
                    continue
                d = float(fdist[i])  # exact in the compact int32 domain too
                for col, bd in bucket:
                    nd = d + bd
                    if nd < row[col]:
                        row[col] = nd
            for col, t in enumerate(targets):
                if t == s:
                    row[col] = 0.0
            table.append(row)
        return table

    def _distance_table_numpy(
        self, sources: List[int], targets: List[int]
    ) -> List[List[float]]:
        """Co-occurrence join + ``minimum.at`` scatter table kernel.

        1. Concatenate the targets' backward labels, counting-sort the
           entries by hub (``gstart``/``gcount`` index the per-hub runs
           directly by hub id — node ids are dense, no ``unique``).
        2. Concatenate the sources' forward labels (source-major) and
           expand each source entry against its hub's target run via
           the cumulative-offset trick — materialising exactly the hub
           co-occurrence pairs the pure scan iterates, never the dense
           ``entries x columns`` product.
        3. One ``minimum.at`` scatters every candidate sum into the
           flat table (numpy's indexed-loop fast path makes this the
           cheapest grouping: no per-pair sort, no reduceat segments).

        Sources are chunked so the pair expansion stays within
        ``_TABLE_PAIR_BUDGET``; the scatter-min accumulates across
        chunks, so chunk boundaries cannot change results.

        The target side (concat + counting-sort + run offsets) comes
        from the per-tuple memo (:meth:`_target_inversion_numpy`), so a
        serving workload that reuses target sets pays it once.
        """
        np = backend.np
        fhead, fhub, fdist, _, _, _ = self._np_views()
        src = np.asarray(sources, dtype=np.int64)
        tgt = np.asarray(targets, dtype=np.int64)
        ncols = tgt.size
        flat = np.full(src.size * ncols, INF)

        # --- target side: memoized concat + sort by hub --------------
        ttotal, tdist_s, tcol_s, uhub, ucount, ustart = self._target_inversion_numpy(
            tuple(targets)
        )
        if ttotal:
            # --- source side: concat, then join chunk by chunk -------
            sstarts = fhead[src]
            slens = fhead[src + 1] - sstarts
            stotal = int(slens.sum())
            if stotal:
                soffs = np.cumsum(slens) - slens
                spos = np.arange(stotal, dtype=np.int64) + np.repeat(
                    sstarts - soffs, slens
                )
                shub = fhub[spos]
                sdist = fdist[spos]
                if sdist.dtype != np.float64:
                    # Compact domain: widen the source side once so the
                    # candidate sums are float64 (exact for int32 inputs
                    # and immune to int32 + int32 wrap); the target side
                    # stays narrow — the gather-bound hot path.
                    sdist = sdist.astype(np.float64)
                srowkey = np.repeat(np.arange(src.size, dtype=np.int64) * ncols, slens)
                # Sparse probe of the memoized run index: source hubs
                # absent from the target labels get cnt 0 (their base
                # is never consumed — np.repeat with 0 repeats).
                upos = np.searchsorted(uhub, shub)
                upos[upos == uhub.size] = 0  # out-of-range probes
                hit = uhub[upos] == shub
                cnt = np.where(hit, ucount[upos], 0)
                csum = np.cumsum(cnt)
                base = ustart[upos]
                lo = 0
                while lo < stotal:
                    # Largest entry range whose pair count fits the budget.
                    done = csum[lo - 1] if lo else 0
                    hi = int(
                        np.searchsorted(csum, done + _TABLE_PAIR_BUDGET, "right")
                    )
                    hi = max(hi, lo + 1)
                    ccnt = cnt[lo:hi]
                    pairs = int(csum[hi - 1] - done)
                    if pairs:
                        pc = np.cumsum(ccnt) - ccnt
                        pidx = np.arange(pairs, dtype=np.int64) + np.repeat(
                            base[lo:hi] - pc, ccnt
                        )
                        cand = np.repeat(sdist[lo:hi], ccnt) + tdist_s.take(pidx)
                        key = np.repeat(srowkey[lo:hi], ccnt) + tcol_s.take(pidx)
                        np.minimum.at(flat, key, cand)
                    lo = hi

        table = flat.reshape(src.size, ncols)
        table[src[:, None] == tgt[None, :]] = 0.0
        return table.tolist()

    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """Parent-hub walk on both sides, then CH shortcut unpacking."""
        if source == target:
            return Path((source,), 0.0)
        best, hub = self._meet(source, target)
        if hub < 0:
            return None
        packed = self._walk(
            self.fwd_head, self.fwd_hub, self.fwd_parent, source, hub
        )
        packed.reverse()  # source .. hub
        down = self._walk(
            self.bwd_head, self.bwd_hub, self.bwd_parent, target, hub
        )
        packed.extend(down[1:])  # hub already present
        return Path(tuple(unpack_shortcuts(self._middle, packed)), best)

    @staticmethod
    def _walk(
        head: array, hubs: array, parents: array, node: int, hub: int
    ) -> List[int]:
        """Parent chain ``hub -> .. -> node`` inside ``node``'s label.

        Every parent of a kept hub is itself a kept hub (see
        :func:`_pruned_upward_labels`), so each step is one binary search
        in the node's sorted label slice.
        """
        lo, hi = head[node], head[node + 1]
        chain = [hub]
        x = hub
        while x != node:
            i = bisect_left(hubs, x, lo, hi)
            x = parents[i]
            chain.append(x)
        return chain
