"""Baseline engines: Dijkstra, bidirectional, A*, ALT, CH, SILC and HL."""

from .alt import ALTEngine, select_landmarks_farthest
from .astar import AStarEngine, max_speed
from .base import DistanceCache, QueryEngine
from .ch import CHEngine, ContractionResult, contract_graph
from .dijkstra import BidirectionalEngine, DijkstraEngine
from .hl import HubLabelIndex
from .silc import SILCEngine
from .tnr import TNREngine

__all__ = [
    "DistanceCache",
    "QueryEngine",
    "DijkstraEngine",
    "BidirectionalEngine",
    "AStarEngine",
    "max_speed",
    "ALTEngine",
    "select_landmarks_farthest",
    "CHEngine",
    "ContractionResult",
    "contract_graph",
    "HubLabelIndex",
    "SILCEngine",
    "TNREngine",
]
