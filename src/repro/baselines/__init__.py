"""Baseline engines: Dijkstra, bidirectional, A*, ALT, CH, SILC and HL.

Also home of the batched-query layer every engine shares: the request
types and the engine-agnostic :class:`QueryPlanner` that
:mod:`repro.serve` coalesces traffic through.
"""

from .alt import ALTEngine, select_landmarks_farthest
from .astar import AStarEngine, max_speed
from .base import (
    BatchCapabilities,
    DistanceCache,
    DistanceRequest,
    OneToManyRequest,
    QueryEngine,
    QueryPlanner,
    Request,
    TableRequest,
)
from .ch import CHEngine, ContractionResult, contract_graph
from .dijkstra import BidirectionalEngine, DijkstraEngine
from .hl import HubLabelIndex
from .silc import SILCEngine
from .tnr import TNREngine

__all__ = [
    "BatchCapabilities",
    "DistanceCache",
    "DistanceRequest",
    "OneToManyRequest",
    "QueryEngine",
    "QueryPlanner",
    "Request",
    "TableRequest",
    "DijkstraEngine",
    "BidirectionalEngine",
    "AStarEngine",
    "max_speed",
    "ALTEngine",
    "select_landmarks_farthest",
    "CHEngine",
    "ContractionResult",
    "contract_graph",
    "HubLabelIndex",
    "SILCEngine",
    "TNREngine",
]
