"""A* with an admissible geometric heuristic.

On travel-time-weighted road networks the straight-line distance is not a
valid lower bound by itself; dividing it by the network's maximum speed
(max over edges of geometric length / weight) restores admissibility.
The engine derives that speed from the graph at construction time, so it
works for both travel-time and length weight models.

A* belongs to the goal-directed family the paper's related work surveys
(Goldberg & Harrelson [12]); it is included as a preprocessing-free
reference point between plain Dijkstra and the indexed methods.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional, Tuple

from ..graph.graph import Graph
from ..graph.path import Path
from ..graph.traversal import walk_parents
from ..graph.workspace import acquire, release
from ..spatial.geometry import euclidean_distance
from .base import QueryEngine

__all__ = ["AStarEngine", "max_speed"]

INF = float("inf")


def max_speed(graph: Graph) -> float:
    """Largest geometric-length / weight ratio over all edges.

    Any path's weight is at least its geometric length divided by this
    speed, which makes ``euclid(u, t) / max_speed`` an admissible and
    consistent A* heuristic.
    """
    best = 0.0
    xs, ys = graph.xs, graph.ys
    for u, v, w in graph.edges():
        length = euclidean_distance((xs[u], ys[u]), (xs[v], ys[v]))
        if length > 0:
            speed = length / w
            if speed > best:
                best = speed
    return best if best > 0 else 1.0


class AStarEngine(QueryEngine):
    """Goal-directed unidirectional A* search."""

    name = "A*"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._speed = max_speed(graph)

    def _heuristic(self, u: int, tx: float, ty: float) -> float:
        xs, ys = self.graph.xs, self.graph.ys
        return euclidean_distance((xs[u], ys[u]), (tx, ty)) / self._speed

    def _search(self, source: int, target: int) -> Tuple[float, Optional[List[int]]]:
        """Workspace-backed A*; returns (distance, path nodes).

        With a consistent heuristic a settled node's g-value is final, so
        the usual Dijkstra workspace discipline applies: ``visit`` tags
        label validity, ``parent`` is walked before the workspace goes
        back to the pool.  Stale heap entries are skipped via the
        ``settled`` set — the g-based lazy-deletion test the plain
        Dijkstra loops use does not transfer to A*, whose heap keys are
        f-values that the workspace does not store.
        """
        graph = self.graph
        tx, ty = graph.coord(target)
        out = graph.out
        xs, ys = graph.xs, graph.ys
        speed = self._speed
        euclid = euclidean_distance
        ws = acquire(graph)
        try:
            c = ws.begin()
            dist = ws.dist
            visit = ws.visit
            parent = ws.parent
            dist[source] = 0.0
            visit[source] = c
            parent[source] = -1
            settled: set = set()
            heap: List[Tuple[float, int]] = [(self._heuristic(source, tx, ty), source)]
            while heap:
                _, u = heappop(heap)
                if u in settled:
                    continue
                settled.add(u)
                if u == target:
                    return dist[u], walk_parents(parent, source, target)
                du = dist[u]
                for v, w in out[u]:
                    nd = du + w
                    if visit[v] != c:
                        visit[v] = c
                        dist[v] = nd
                        parent[v] = u
                        heappush(
                            heap, (nd + euclid((xs[v], ys[v]), (tx, ty)) / speed, v)
                        )
                    elif nd < dist[v]:
                        dist[v] = nd
                        parent[v] = u
                        heappush(
                            heap, (nd + euclid((xs[v], ys[v]), (tx, ty)) / speed, v)
                        )
            return INF, None
        finally:
            release(graph, ws)

    def distance(self, source: int, target: int) -> float:
        """Distance by goal-directed search; inf when unreachable."""
        d, _ = self._search(source, target)
        return d

    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """Shortest path by goal-directed search with parent pointers."""
        d, nodes = self._search(source, target)
        if nodes is None:
            return None
        return Path(tuple(nodes), d)
