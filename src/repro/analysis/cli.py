"""Command-line front-end: ``python -m repro.analysis``.

Exit codes: 0 clean (baselined debt allowed), 1 fresh findings or
parse errors, 2 usage errors.  ``--json`` emits the machine report the
CI lint job uploads as an artifact; ``--explain`` doubles as the
contributor documentation for each rule.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .framework import (
    DEFAULT_BASELINE_NAME,
    analyze_paths,
    baseline_payload,
    default_root,
    get_rule,
    iter_rules,
    load_baseline,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: src/repro and "
        "benchmarks/ under the repo root)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root for relative paths and rule dispatch "
        "(default: auto-detected)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report all findings as fresh",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="absorb every current finding into the baseline file and exit 0",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE-ID",
        help="print one rule's contract, rationale and motivating tests",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rule ids"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id:<22} {rule.title}")
        return 0

    if args.explain:
        try:
            rule = get_rule(args.explain)
        except KeyError as exc:
            print(str(exc.args[0]), file=sys.stderr)
            return 2
        print(rule.explain())
        return 0

    root = (args.root or default_root()).resolve()
    if args.paths:
        paths = [p if p.is_absolute() else root / p for p in args.paths]
    else:
        paths = [p for p in (root / "src" / "repro", root / "benchmarks") if p.exists()]
    if not paths:
        print(f"nothing to analyze under {root}", file=sys.stderr)
        return 2
    for p in paths:
        if not p.exists():
            print(f"no such path: {p}", file=sys.stderr)
            return 2

    baseline_path = args.baseline or (root / DEFAULT_BASELINE_NAME)
    entries = []
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        try:
            entries = load_baseline(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"bad baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    report = analyze_paths(paths, root, baseline_entries=entries)

    if args.write_baseline:
        payload = baseline_payload(report.findings + report.baselined)
        baseline_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(
            f"wrote {len(payload['findings'])} baseline entr"
            f"{'y' if len(payload['findings']) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        for f in report.errors:
            print(f.render())
        for f in report.findings:
            print(f.render())
        summary = (
            f"{report.files} files, {len(report.findings)} finding"
            f"{'' if len(report.findings) == 1 else 's'}"
        )
        if report.baselined:
            summary += f", {len(report.baselined)} baselined"
        if report.suppressed:
            summary += f", {report.suppressed} suppressed"
        if report.stale_baseline:
            summary += f", {len(report.stale_baseline)} stale baseline entries"
            print(
                "stale baseline entries (fixed debt — delete them from "
                f"{baseline_path.name}):"
            )
            for e in report.stale_baseline:
                print(f"  {e['path']} [{e['rule']}] {e['code']}")
        print(summary)
    return 1 if (report.findings or report.errors) else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
