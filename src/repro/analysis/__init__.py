"""``repro.analysis`` — the AST-based invariant linter.

The test suite *samples* the reproduction's contracts (bit-identical
answers across backends/formats/process boundaries); this package
enforces the coding conventions behind those contracts *mechanically*,
in every file, at CI time::

    python -m repro.analysis                 # human report, exit 1 on findings
    python -m repro.analysis --json          # machine report (CI artifact)
    python -m repro.analysis --explain backend-purity
    python -m repro.analysis --write-baseline  # absorb pre-existing debt

Rules (one per contract; ``--explain`` has the full story):

=====================  ==========================================================
backend-purity         numpy only behind repro.backend; scalars cross via
                       float()/int()/.tolist()
exact-accumulation     no builtin sum()/``+=`` folds over float distance columns
workspace-discipline   acquire()/release() pair lexically, release in finally
asyncio-discipline     no blocking calls / locks held across await in coroutines
spawn-safety           Process targets module-level + picklable; resource
                       tracker untouched
serialize-symmetry     little-endian literal struct formats, pack/unpack paired
determinism            no iteration over unordered sets in answer paths
bench-honesty          timing floors gated on visible_cpus; size floors hard
=====================  ==========================================================

Deliberate exceptions carry ``# repro: allow[rule-id]`` on the flagged
line; pre-existing debt lives in the committed ``analysis-baseline.json``
(currently empty — keep it that way).
"""

from .framework import (  # noqa: F401
    Finding,
    ModuleContext,
    Report,
    Rule,
    analyze_file,
    analyze_paths,
    analyze_source,
    baseline_payload,
    default_root,
    get_rule,
    iter_rules,
    load_baseline,
    register,
)
from .cli import main  # noqa: F401

__all__ = [
    "Finding",
    "ModuleContext",
    "Report",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "baseline_payload",
    "default_root",
    "get_rule",
    "iter_rules",
    "load_baseline",
    "register",
    "main",
]
