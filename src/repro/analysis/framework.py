"""The invariant-linter substrate: rules, findings, suppressions, baseline.

The reproduction's correctness story rests on conventions the test
suite can only *sample* — bit-identical answers across backends, exact
float accumulation, workspace pool discipline, non-blocking coroutines,
spawn-safe worker targets, byte-symmetric serializers, deterministic
iteration, honest benchmark gating.  Each convention is distilled here
into a :class:`Rule` that walks a module's AST and emits
:class:`Finding` records; the CLI (:mod:`repro.analysis.cli`) turns a
non-empty fresh-finding list into a red CI gate.

Mechanics
---------
* **Registry** — rule modules call :func:`register` at import time
  (:mod:`repro.analysis.rules` imports them all); :func:`iter_rules`
  yields them sorted by id.
* **Dispatch** — every rule carries a ``paths`` predicate over the
  repo-relative posix path, so e.g. ``bench-honesty`` only ever sees
  ``benchmarks/`` and ``backend-purity`` skips ``backend.py`` itself.
* **Suppressions** — a finding whose flagged source line carries
  ``# repro: allow[rule-id]`` (comma-separated ids allowed) is dropped
  and counted; suppressions are deliberate, greppable, and reviewed.
* **Baseline** — pre-existing debt lives in a committed JSON file keyed
  by ``(path, rule, stripped source line)`` — line *numbers* are not
  part of the key, so unrelated edits do not churn it.  Each entry
  absorbs at most one matching finding per run; entries that no longer
  match anything are reported as stale so the file shrinks over time.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "Rule",
    "ModuleContext",
    "Report",
    "register",
    "get_rule",
    "iter_rules",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
    "load_baseline",
    "baseline_payload",
    "default_root",
    "DEFAULT_BASELINE_NAME",
]

#: ``# repro: allow[rule-id]`` (or ``allow[a, b]``) on the flagged line.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")

DEFAULT_BASELINE_NAME = "analysis-baseline.json"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``code`` is the stripped text of the flagged line — it rides along
    so baseline matching and human output never need to re-read files.
    """

    path: str  # repo-relative posix path
    line: int  # 1-indexed
    col: int
    rule: str
    message: str
    hint: str = ""
    code: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        if self.code:
            text += f"\n    >>> {self.code}"
        return text

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
            "code": self.code,
        }

    def baseline_key(self) -> Tuple[str, str, str]:
        return (self.path, self.rule, self.code)


@dataclass(frozen=True)
class Rule:
    """A registered invariant check.

    ``check`` receives a :class:`ModuleContext` and yields findings;
    ``paths`` decides (on the repo-relative posix path) whether the rule
    sees the file at all.  ``contract`` is the one-line invariant for
    the README table; ``rationale`` plus ``motivated_by`` back the
    ``--explain`` output.
    """

    id: str
    title: str
    contract: str
    rationale: str
    motivated_by: str
    check: Callable[["ModuleContext"], Iterable[Finding]]
    paths: Callable[[str], bool]

    def explain(self) -> str:
        return (
            f"{self.id} — {self.title}\n\n"
            f"Contract: {self.contract}\n\n"
            f"{self.rationale.strip()}\n\n"
            f"Motivated by: {self.motivated_by}\n"
            f"Suppress a deliberate exception with  # repro: allow[{self.id}]"
        )


_RULES: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _RULES[rule.id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    _ensure_rules_loaded()
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}") from None


def iter_rules() -> List[Rule]:
    _ensure_rules_loaded()
    return [_RULES[k] for k in sorted(_RULES)]


def _ensure_rules_loaded() -> None:
    # Import-time registration: the rules package registers every rule
    # as a side effect of importing it.  Lazy so framework consumers
    # (tests building synthetic rules) can import this module alone.
    if not _RULES:
        from . import rules  # noqa: F401


class ModuleContext:
    """One parsed module handed to every applicable rule.

    Carries the AST, the raw lines, and lazy parent links so rules can
    ask "is this node inside a ``finally`` / an ``if visible_cpus``
    gate" without each rebuilding the map.
    """

    def __init__(self, path: str, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path or rel)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    # -- structure helpers -------------------------------------------------
    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        parents = self.parents
        while node in parents:
            node = parents[node]
            yield node

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    # -- finding construction ---------------------------------------------
    def finding(
        self, rule_id: str, node: ast.AST, message: str, hint: str = ""
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.rel,
            line=line,
            col=col,
            rule=rule_id,
            message=message,
            hint=hint,
            code=self.line_text(line).strip(),
        )

    def suppressed_ids(self, lineno: int) -> List[str]:
        m = _SUPPRESS_RE.search(self.line_text(lineno))
        if not m:
            return []
        return [part.strip() for part in m.group(1).split(",") if part.strip()]


# ----------------------------------------------------------------------
# Shared AST helpers (used by several rule modules)
# ----------------------------------------------------------------------
def functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every (async) function definition in the module, any depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body, not descending into nested defs.

    Lambdas and comprehensions still count as the function's own code;
    nested ``def``/``async def`` bodies belong to the nested function.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, ``""`` otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def identifier_strings(node: ast.AST) -> Iterator[str]:
    """All Name ids, Attribute attrs, and str constants under ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


def contains(node: ast.AST, kind) -> bool:
    return any(isinstance(sub, kind) for sub in ast.walk(node))


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class Report:
    """One analysis run: fresh findings, absorbed debt, bookkeeping."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[dict] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    errors: List[Finding] = field(default_factory=list)

    @property
    def all_current(self) -> List[Finding]:
        return self.findings + self.baselined

    def as_dict(self) -> dict:
        return {
            "files": self.files,
            "findings": [f.as_dict() for f in self.findings],
            "errors": [f.as_dict() for f in self.errors],
            "baselined": [f.as_dict() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "suppressed": self.suppressed,
            "rules": [r.id for r in iter_rules()],
        }


def analyze_source(
    source: str, rel: str, path: str = ""
) -> Tuple[List[Finding], int]:
    """Run every applicable rule over one source string.

    Returns ``(findings, suppressed_count)``.  ``rel`` is the virtual
    repo-relative path rules dispatch on — the unit tests feed snippets
    through here with paths like ``src/repro/serve/x.py``.
    """
    ctx = ModuleContext(path or rel, rel, source)
    findings: List[Finding] = []
    suppressed = 0
    for rule in iter_rules():
        if not rule.paths(ctx.rel):
            continue
        for f in rule.check(ctx):
            if rule.id in ctx.suppressed_ids(f.line):
                suppressed += 1
            else:
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, suppressed


def analyze_file(path: Path, root: Path) -> Tuple[List[Finding], int, Optional[Finding]]:
    rel = path.resolve().relative_to(root.resolve()).as_posix()
    try:
        source = path.read_text(encoding="utf-8")
        findings, suppressed = analyze_source(source, rel, str(path))
        return findings, suppressed, None
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        err = Finding(
            path=rel,
            line=getattr(exc, "lineno", None) or 1,
            col=0,
            rule="parse-error",
            message=f"could not analyze: {exc}",
        )
        return [], 0, err


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    seen = set()
    for p in paths:
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if "__pycache__" in c.parts:
                continue
            r = c.resolve()
            if r not in seen:
                seen.add(r)
                yield c


def load_baseline(path: Path) -> List[dict]:
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("findings", [])
    for e in entries:
        if not all(k in e for k in ("path", "rule", "code")):
            raise ValueError(
                f"malformed baseline entry {e!r}: needs path/rule/code"
            )
    return entries


def baseline_payload(findings: Sequence[Finding]) -> dict:
    """The committed-baseline JSON for a set of findings."""
    return {
        "comment": (
            "Pre-existing repro.analysis debt. Entries are matched by "
            "(path, rule, stripped source line) — fix the code and "
            "delete the entry; do not add new debt here."
        ),
        "findings": [
            {"path": f.path, "rule": f.rule, "code": f.code}
            for f in sorted(findings, key=lambda f: (f.path, f.rule, f.code))
        ],
    }


def _apply_baseline(
    findings: List[Finding], entries: List[dict]
) -> Tuple[List[Finding], List[Finding], List[dict]]:
    budget: Dict[Tuple[str, str, str], int] = {}
    for e in entries:
        key = (e["path"], e["rule"], e["code"])
        budget[key] = budget.get(key, 0) + 1
    fresh: List[Finding] = []
    absorbed: List[Finding] = []
    for f in findings:
        key = f.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            absorbed.append(f)
        else:
            fresh.append(f)
    stale = [
        {"path": p, "rule": r, "code": c, "unmatched": n}
        for (p, r, c), n in sorted(budget.items())
        if n > 0
    ]
    return fresh, absorbed, stale


def analyze_paths(
    paths: Sequence[Path],
    root: Path,
    baseline_entries: Optional[List[dict]] = None,
) -> Report:
    report = Report()
    collected: List[Finding] = []
    for path in iter_python_files(paths):
        report.files += 1
        findings, suppressed, error = analyze_file(path, root)
        collected.extend(findings)
        report.suppressed += suppressed
        if error is not None:
            report.errors.append(error)
    collected.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if baseline_entries:
        fresh, absorbed, stale = _apply_baseline(collected, baseline_entries)
        report.findings = fresh
        report.baselined = absorbed
        report.stale_baseline = stale
    else:
        report.findings = collected
    return report


def default_root(start: Optional[Path] = None) -> Path:
    """The repo root: nearest ancestor of ``start`` (or this file) that
    has a ``src/repro`` directory or a ``pyproject.toml``."""
    candidates = []
    if start is not None:
        candidates.append(Path(start).resolve())
    candidates.append(Path.cwd().resolve())
    candidates.append(Path(__file__).resolve().parents[3])
    for base in candidates:
        for p in (base, *base.parents):
            if (p / "src" / "repro").is_dir() or (p / "pyproject.toml").is_file():
                return p
    return Path.cwd().resolve()
