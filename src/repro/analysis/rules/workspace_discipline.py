"""workspace-discipline: every acquire() is released, in a finally.

The :mod:`repro.graph.workspace` pool hands out timestamp-versioned
search workspaces; an acquired workspace that is not released leaks a
pool slot, and one released outside ``finally`` leaks it on the
exception path — which the pool-discipline tests showed can poison a
*later* query with a half-initialised workspace.  Three checks, all
function-local (the repo's convention is strict lexical pairing):

* ``ws = acquire(...)`` with no ``release(..., ws)`` in the function;
* a ``release(..., ws)`` that is not inside a ``finally`` block;
* re-acquiring into a name that is still live (``ws = acquire(...)``
  twice with no release in between) — the first workspace is lost.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from ..framework import Finding, ModuleContext, Rule, own_nodes, register

RULE_ID = "workspace-discipline"


def _is_call_to(node: ast.AST, name: str) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == name
    )


def _in_finally(ctx: ModuleContext, node: ast.AST) -> bool:
    child = node
    for parent in ctx.ancestors(node):
        if isinstance(parent, ast.Try):
            for stmt in parent.finalbody:
                if child is stmt or any(sub is child for sub in ast.walk(stmt)):
                    return True
        child = parent
    return False


def _check(ctx: ModuleContext) -> Iterator[Finding]:
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        acquires: List[Tuple[str, ast.Assign]] = []
        releases: Dict[str, List[ast.Call]] = {}
        for node in own_nodes(func):
            if isinstance(node, ast.Assign) and _is_call_to(node.value, "acquire"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        acquires.append((target.id, node))
            elif _is_call_to(node, "release"):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        releases.setdefault(arg.id, []).append(node)
        if not acquires:
            continue
        for name, assign in acquires:
            rels = releases.get(name, [])
            if not rels:
                yield ctx.finding(
                    RULE_ID,
                    assign,
                    f"workspace {name!r} is acquired but never released "
                    "in this function",
                    "pair acquire() with release() in a try/finally "
                    "(see repro/graph/traversal.py)",
                )
                continue
            for rel_call in rels:
                if not _in_finally(ctx, rel_call):
                    yield ctx.finding(
                        RULE_ID,
                        rel_call,
                        f"release of workspace {name!r} is not inside a "
                        "finally block — the exception path leaks the slot",
                        "move the release() into `finally:`",
                    )
        # Re-acquire while live: two acquires into one name with no
        # release in statement order between them.
        by_name: Dict[str, List[int]] = {}
        for name, assign in acquires:
            by_name.setdefault(name, []).append(assign.lineno)
        for name, acq_lines in by_name.items():
            if len(acq_lines) < 2:
                continue
            rel_lines = sorted(c.lineno for c in releases.get(name, []))
            acq_lines.sort()
            for first, second in zip(acq_lines, acq_lines[1:]):
                if not any(first < r <= second for r in rel_lines):
                    node = next(a for n, a in acquires if n == name and a.lineno == second)
                    yield ctx.finding(
                        RULE_ID,
                        node,
                        f"workspace {name!r} re-acquired while the previous "
                        "acquisition is still live — the first slot is lost",
                        "release the workspace before re-acquiring, or use "
                        "a second name (ws_f / ws_b)",
                    )


register(
    Rule(
        id=RULE_ID,
        title="acquire()/release() pair lexically, release in finally",
        contract=(
            "Every acquired SearchWorkspace returns to the pool on every "
            "path, so no query ever observes another query's half-reset "
            "arrays."
        ),
        rationale=(
            "The PR-1 workspace pool replaced per-query dicts with "
            "pooled versioned arrays; PR 2 added pool-discipline tests "
            "after finding that an exception between acquire and release "
            "could poison the pool for a later query.  The convention — "
            "acquire, try, finally release — is purely lexical, so the "
            "linter can enforce it on every function, including the "
            "two-workspace bidirectional searches."
        ),
        motivated_by=(
            "PR 2 workspace pool-discipline tests "
            "(tests/test_workspace_csr.py) and every engine's "
            "try/finally in repro/baselines/"
        ),
        check=_check,
        paths=lambda rel: rel.endswith(".py") and rel.startswith("src/"),
    )
)
