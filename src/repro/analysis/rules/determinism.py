"""determinism: answer-producing code never iterates an unordered set.

Set iteration order is a hash-table implementation detail — it varies
with insertion history and (for strings) ``PYTHONHASHSEED``.  Any
answer assembled by walking a set can differ run-to-run while staying
"equal", which breaks byte-identical serialization, parallel-build
byte-identity, and the pool's bit-parity contract.  The rule flags
``for``-loops and comprehension generators whose iterable is:

* a set literal / set comprehension,
* a ``set(...)`` / ``frozenset(...)`` call,
* a name bound to one of those in the same function,

unless the iteration is wrapped in ``sorted(...)`` (which the wrapping
makes visible to the walker — the iterable's root is then the
``sorted`` call, not the set).  Dicts are insertion-ordered and thus
deterministic when their build order is; they are deliberately not
flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..framework import Finding, ModuleContext, Rule, own_nodes, register

RULE_ID = "determinism"

_HINT = (
    "iterate `sorted(the_set)` (or keep an explicitly ordered "
    "container) so answers and serialized bytes cannot depend on hash "
    "order"
)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _set_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in own_nodes(func):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_set_expr(node.value) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _iterables(func: ast.AST) -> Iterator[ast.AST]:
    for node in own_nodes(func):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                yield gen.iter



def _check(ctx: ModuleContext) -> Iterator[Finding]:
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_sets = _set_names(func)
        for it in _iterables(func):
            if _is_set_expr(it):
                yield ctx.finding(
                    RULE_ID,
                    it,
                    "iteration over an unordered set in answer-producing "
                    "code — order varies with hash seed and insertion "
                    "history",
                    _HINT,
                )
            elif isinstance(it, ast.Name) and it.id in local_sets:
                yield ctx.finding(
                    RULE_ID,
                    it,
                    f"iteration over set {it.id!r} in answer-producing "
                    "code — order varies with hash seed and insertion "
                    "history",
                    _HINT,
                )


register(
    Rule(
        id=RULE_ID,
        title="no iteration over unordered sets in answer paths",
        contract=(
            "Answers, labels and serialized bytes are a pure function "
            "of the input graph — never of hash order."
        ),
        rationale=(
            "The repo pins byte-identical labels from serial and "
            "parallel builds, byte-identical bundles across backends, "
            "and bit-identical pool answers.  All three die quietly if "
            "any contributing loop walks a set: the values stay 'equal' "
            "while their order — and thus tie-breaks, label layouts and "
            "serialized bytes — drifts between runs.  Such bugs evade "
            "example-based tests (CPython's int hashing is accidentally "
            "stable) and surface only under PYTHONHASHSEED churn or "
            "refactors."
        ),
        motivated_by=(
            "PR 5 parallel-build byte-identity tests (tests/test_pool.py) "
            "and the PR 3 bundle byte-identity property tests"
        ),
        check=_check,
        paths=lambda rel: rel.endswith(".py")
        and any(
            d in "/" + rel for d in ("/baselines/", "/graph/", "/core/", "/serve/")
        ),
    )
)
