"""Rule registration: importing this package registers every rule.

Each module distils one convention from PRs 1-6 into a mechanical AST
check; see the module docstrings (or ``python -m repro.analysis
--explain RULE-ID``) for the contract each protects.
"""

from . import (  # noqa: F401 — imported for their register() side effect
    asyncio_discipline,
    backend_purity,
    bench_honesty,
    determinism,
    exact_accumulation,
    native_discipline,
    pickle_discipline,
    recv_discipline,
    serialize_symmetry,
    spawn_safety,
    workspace_discipline,
)
