"""asyncio-discipline: coroutines never block the event loop.

The serving tier's whole design (PR 4) is one event loop that keeps
accepting submissions while batches compute elsewhere; a single
blocking call inside a coroutine stalls every connected client.  The
checks, applied to every ``async def``:

* no ``time.sleep`` (use ``await asyncio.sleep``);
* no bare ``open()`` — file I/O belongs in an executor;
* no blocking pipe reads: ``.recv()`` / ``.recv_bytes()`` / ``.poll()``
  on a connection, unless the call is awaited (an async transport);
* no synchronous ``with <...lock...>:`` whose body contains ``await`` —
  holding a thread lock across a suspension point deadlocks the loop
  the moment a worker thread wants the same lock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import (
    Finding,
    ModuleContext,
    Rule,
    contains,
    dotted_name,
    own_nodes,
    register,
)

RULE_ID = "asyncio-discipline"

_BLOCKING_ATTRS = {"recv", "recv_bytes", "poll"}


def _from_time_sleep_imported(ctx: ModuleContext) -> bool:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            if any(alias.name == "sleep" for alias in node.names):
                return True
    return False


def _check(ctx: ModuleContext) -> Iterator[Finding]:
    bare_sleep_is_time = _from_time_sleep_imported(ctx)
    for func in ast.walk(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        parents = ctx.parents
        for node in own_nodes(func):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                awaited = isinstance(parents.get(node), ast.Await)
                if name == "time.sleep" or (
                    bare_sleep_is_time and name == "sleep"
                ):
                    yield ctx.finding(
                        RULE_ID,
                        node,
                        "blocking time.sleep() inside a coroutine stalls "
                        "the whole event loop",
                        "use `await asyncio.sleep(...)`",
                    )
                elif name == "open" and not awaited:
                    yield ctx.finding(
                        RULE_ID,
                        node,
                        "file I/O via open() inside a coroutine blocks the "
                        "event loop",
                        "run file I/O in an executor "
                        "(loop.run_in_executor) or outside the coroutine",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BLOCKING_ATTRS
                    and not awaited
                ):
                    yield ctx.finding(
                        RULE_ID,
                        node,
                        f"blocking pipe `.{node.func.attr}()` inside a "
                        "coroutine stalls the event loop until the peer "
                        "writes",
                        "move pipe reads off-loop (executor) or use an "
                        "asyncio transport",
                    )
            elif isinstance(node, ast.With):
                held = any(
                    "lock" in dotted_name(item.context_expr).lower()
                    or (
                        isinstance(item.context_expr, ast.Call)
                        and "lock" in dotted_name(item.context_expr.func).lower()
                    )
                    for item in node.items
                )
                if held and contains(node, ast.Await):
                    yield ctx.finding(
                        RULE_ID,
                        node,
                        "synchronous lock held across an await — a worker "
                        "thread contending for it deadlocks the event loop",
                        "release the lock before awaiting, or use "
                        "asyncio.Lock with `async with`",
                    )


register(
    Rule(
        id=RULE_ID,
        title="no blocking calls or thread locks held across await in coroutines",
        contract=(
            "The serving event loop always stays responsive: coroutines "
            "never sleep, read pipes/files, or hold thread locks across "
            "a suspension point."
        ),
        rationale=(
            "PR 4's coalescing Server and PR 5's pool tier multiplex "
            "thousands of clients over one event loop; the design "
            "carefully routes every blocking operation (planner "
            "execution, pool dispatch, pipe reads) through executors.  "
            "One stray time.sleep or pipe recv() in a coroutine turns "
            "p99 latency into the blocking call's duration for every "
            "concurrent client — invisible in unit tests, catastrophic "
            "under load."
        ),
        motivated_by=(
            "PR 4 serve tier (repro/serve/server.py off-loop executor "
            "design, tests/test_serve.py) and PR 5's always-off-loop "
            "pool dispatch"
        ),
        check=_check,
        paths=lambda rel: rel.endswith(".py") and rel.startswith("src/"),
    )
)
