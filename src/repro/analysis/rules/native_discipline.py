"""native-boundary-discipline: compiled code stays behind repro.native.

The native kernel tier (PR 10) adds a third way for answers to go
wrong: a stray ``ctypes`` load or a direct import of the compiled
``_hubjoin`` module bypasses the facade that keeps compiler-less
deployments working, and a native kernel result returned without
re-containering can leak extension-owned objects into answer paths the
same way bare numpy scalars used to.  Two checks, mirroring
``backend-purity``'s split:

* **Load discipline** — importing ``ctypes`` / ``cffi`` or any compiled
  ``native._*`` module (``from repro.native import _hubjoin``,
  ``import repro.native._hubjoin``, relative forms included) is allowed
  only inside ``repro/native/``.  Everything else goes through the
  :mod:`repro.native` facade, whose import never fails.
* **Boundary coercion** — inside ``baselines/``, ``graph/`` and
  ``core/``, a function that calls the facade's kernels
  (``native.distance`` / ``_native.distance_table`` / ...) is a
  *native kernel region*: values it returns must cross back through the
  same ``float()`` / ``int()`` / ``list()`` constructors (or
  ``.tolist()``) the backend-purity rule already demands of numpy
  kernels.  Returning the kernel call bare, or a bare subscript of its
  result, is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    own_nodes,
    register,
)

RULE_ID = "native-boundary-discipline"

#: Module prefixes that mean "loading compiled code by hand".
_FFI_MODULES = ("ctypes", "cffi")

#: Aliases the repo uses for the repro.native facade in kernel modules.
_FACADE_NAMES = ("native", "_native")

#: Coercers that legitimise a kernel result at the return boundary.
_COERCERS = {"float", "int", "list", "tuple"}

#: Directories whose functions form native regions for the return check.
_KERNEL_DIRS = ("/baselines/", "/graph/", "/core/")


def _inside_native_pkg(rel: str) -> bool:
    return "/native/" in "/" + rel


def _is_ffi(mod: str) -> bool:
    return any(mod == m or mod.startswith(m + ".") for m in _FFI_MODULES)


def _is_compiled_native(mod: str) -> bool:
    """True for dotted module paths naming a compiled native submodule."""
    parts = mod.split(".")
    for i, part in enumerate(parts[:-1]):
        if part == "native" and parts[i + 1].startswith("_"):
            return True
    return False


def _flag_imports(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_ffi(alias.name) or _is_compiled_native(alias.name):
                    yield ctx.finding(
                        RULE_ID,
                        node,
                        f"direct `import {alias.name}` outside repro/native/",
                        "go through the repro.native facade — it degrades "
                        "cleanly when no extension is built",
                    )
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if _is_ffi(mod) or _is_compiled_native(mod):
                yield ctx.finding(
                    RULE_ID,
                    node,
                    f"direct `from {mod} import ...` outside repro/native/",
                    "go through the repro.native facade — it degrades "
                    "cleanly when no extension is built",
                )
                continue
            # `from repro.native import _hubjoin` / `from .native import _x`
            if mod == "native" or mod.endswith(".native"):
                for alias in node.names:
                    if alias.name.startswith("_"):
                        yield ctx.finding(
                            RULE_ID,
                            node,
                            f"compiled module `{alias.name}` imported from "
                            f"`{mod or '.'}` outside repro/native/",
                            "import the repro.native facade instead and call "
                            "its wrappers",
                        )


def _is_facade_call(value: ast.AST) -> bool:
    """True for a call whose func is ``native.x`` / ``_native.x``."""
    if not isinstance(value, ast.Call) or not isinstance(value.func, ast.Attribute):
        return False
    name = dotted_name(value.func)
    return any(name.startswith(f + ".") for f in _FACADE_NAMES)


def _is_native_region(func: ast.AST) -> bool:
    """True when the function's body calls the repro.native facade."""
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if any(name.startswith(f + ".") for f in _FACADE_NAMES):
                return True
    return False


def _flag_boundary_leaks(ctx: ModuleContext) -> Iterator[Finding]:
    rel = "/" + ctx.rel
    if not any(d in rel for d in _KERNEL_DIRS):
        return
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_native_region(func):
            continue
        for node in own_nodes(func):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if _is_facade_call(value):
                yield ctx.finding(
                    RULE_ID,
                    node,
                    "native kernel result returned bare — re-container it "
                    "at the boundary",
                    "wrap the call: float(...) for scalars, list(...) for "
                    "columns/tables",
                )
            elif isinstance(value, ast.Subscript):
                yield ctx.finding(
                    RULE_ID,
                    node,
                    "native kernel region returns a bare subscript — "
                    "coerce before crossing the boundary",
                    "wrap the value: return float(x[i]) / int(x[i])",
                )
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _COERCERS
                and not value.args
            ):
                yield ctx.finding(
                    RULE_ID,
                    node,
                    f"empty `{value.func.id}()` cannot be coercing a kernel "
                    "result",
                    "pass the kernel result through the constructor",
                )


def _check(ctx: ModuleContext) -> Iterator[Finding]:
    if _inside_native_pkg(ctx.rel):
        return
    yield from _flag_imports(ctx)
    yield from _flag_boundary_leaks(ctx)


register(
    Rule(
        id=RULE_ID,
        title="compiled code only behind repro.native; kernel results re-containered",
        contract=(
            "A checkout without a C toolchain must behave exactly like one "
            "with it (minus speed): no module outside repro/native/ may "
            "load shared libraries or import the compiled extension, and "
            "native kernel results cross back as plain floats/lists."
        ),
        rationale=(
            "PR 10 added the native kernel tier with the same "
            "bit-identical-fallback pattern as the backend layer.  One "
            "direct `import repro.native._hubjoin` crashes every "
            "compiler-less deployment; one ctypes.CDLL bypasses the "
            "facade's degradation path; one bare kernel-result return "
            "would let extension-owned containers flow into answer paths "
            "that expect plain Python floats and lists."
        ),
        motivated_by=(
            "PR 10 (repro.native) and the backend-purity rule it mirrors — "
            "tests/test_backend_parity.py pins the three-tier bit-identity "
            "this discipline protects"
        ),
        check=_check,
        paths=lambda rel: rel.endswith(".py"),
    )
)
