"""hot-path-pickle-discipline: request objects do not ride the pipe.

PR 9's request lanes exist because pickling a ``List[Request]`` per
sub-batch made the dispatcher's send cost scale with the *object count*
— dataclass ``__reduce__`` per request, a tuple per id pair — instead
of the byte count.  The packed REQCOL path (``core.serialize
.pack_requests`` into a shared-memory ring, a ~60-byte control frame on
the pipe) closed that floor; this rule keeps it closed by flagging the
regression shape mechanically:

* any ``*.send(...)`` call in the serve tier whose argument subtree
  mentions a request-sequence identifier (``req`` / ``reqs`` /
  ``request`` / ``requests``), and
* any ``pickle.dumps(...)`` over the same identifiers,

must either go through the packed encoder or carry an explicit
``# repro: allow[hot-path-pickle-discipline]`` annotation naming *why*
the pickled path is correct there.  The pool's three legitimate seams
are annotated: the ``pack_requests`` → ``None`` fallback (request types
the column format cannot carry), hedge duplicates (must not disturb the
straggler's ring slot), and post-fault retries (the clean objects must
get through even when the lane itself is suspect).

The check is identifier-based on purpose: it cannot prove dataflow, but
every pickled-request regression so far spelled the payload ``req*`` at
the send site, and the annotation escape keeps deliberate seams honest
and greppable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    register,
)

RULE_ID = "hot-path-pickle-discipline"

#: Identifiers that spell "a request object / sequence" at a send site.
_REQUESTISH = frozenset({"req", "reqs", "request", "requests"})


def _mentions_requests(node: ast.AST) -> bool:
    """Does this argument subtree name a request object / sequence?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id.lower() in _REQUESTISH:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr.lower() in _REQUESTISH:
            return True
    return False


def _is_pickle_dumps(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    return name.endswith("pickle.dumps") or name == "dumps"


def _is_send(call: ast.Call) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in ("send", "send_bytes")
    )


def _check(ctx: ModuleContext) -> Iterator[Finding]:
    for call in ast.walk(ctx.tree):
        if not isinstance(call, ast.Call):
            continue
        payload = [*call.args, *(kw.value for kw in call.keywords)]
        if not any(_mentions_requests(arg) for arg in payload):
            continue
        if _is_send(call):
            yield ctx.finding(
                RULE_ID,
                call,
                "request objects sent over the pipe — per-object pickling "
                "is the IPC floor the request lanes removed",
                "pack the sub-batch (core.serialize.pack_requests) into "
                "the request ring and send the ~60-byte control frame; "
                "annotate deliberate fallback seams with "
                f"# repro: allow[{RULE_ID}]",
            )
        elif _is_pickle_dumps(call):
            yield ctx.finding(
                RULE_ID,
                call,
                "pickle.dumps over request objects on a dispatch path — "
                "serialization cost scales with object count, not bytes",
                "use the REQCOL packed encoding (pack_requests) or "
                f"annotate with # repro: allow[{RULE_ID}]",
            )


register(
    Rule(
        id=RULE_ID,
        title="serve-tier dispatch never pickles per-request object sequences",
        contract=(
            "No .send()/pickle.dumps over request-sequence identifiers "
            "in repro.serve outside explicitly annotated fallback seams; "
            "sub-batches ride the packed REQCOL request lanes."
        ),
        rationale=(
            "PR 9 measured the dispatcher's request side: pickling a "
            "List[Request] per sub-batch costs one __reduce__ round per "
            "request object, so dispatch overhead grows with the object "
            "count even when the payload is a few flat id columns.  The "
            "shared-memory request ring carries the same information as "
            "packed columns behind a fixed-size control frame (>=10x "
            "fewer pipe bytes on the NH pool workload).  One casual "
            "send(reqs) on a hot path silently reopens that floor."
        ),
        motivated_by=(
            "PR 9 request lanes (repro/serve/pool.py _encode_sub, "
            "core/serialize.py pack_requests) and the request_path "
            "accounting in benchmarks/test_pool_speed.py"
        ),
        check=_check,
        paths=lambda rel: (
            rel.startswith("src/repro/serve/")
            and rel.endswith(".py")
            and not rel.endswith("/faults.py")
        ),
    )
)
