"""bench-honesty: timing floors gate on cores; size floors never do.

PR 5's hard lesson (ROADMAP "measurement discipline"): this project's
CI containers sometimes expose one CPU, where multi-process and
threaded tiers measure *slower* than their baselines — a timing floor
asserted unconditionally either flakes there or, worse, gets weakened
until it guards nothing.  The repo's convention:

* an ``assert`` comparing a timing-flavoured quantity (speedup,
  latency, p50/p99, us/ms, qps, throughput) against a numeric constant
  must sit under a gate that mentions ``visible_cpus``;
* an ``assert`` flooring a size/byte quantity (bytes, footprint,
  size ratios, entries) is hardware-independent and must **not** hide
  under a ``visible_cpus`` gate — gating it would silently skip a
  regression check that could always have run.

Timing-vs-timing comparisons (``p50 <= p99``, A-vs-B microseconds) are
machine-relative orderings, not floors, and pass unflagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Set

from ..framework import Finding, ModuleContext, Rule, identifier_strings, register

RULE_ID = "bench-honesty"

_TIMING_TOKENS = {
    "speedup", "speedups", "elapsed", "latency", "latencies",
    "p50", "p90", "p95", "p99", "p999",
    "us", "ms", "ns", "sec", "secs", "seconds", "wall", "walltime",
    "qps", "rps", "throughput", "duration", "runtime",
}
_SIZE_TOKENS = {
    "bytes", "byte", "size", "sizes", "footprint", "entries", "entry",
    "bits", "nbytes", "blob",
}
_TOKEN_SPLIT = re.compile(r"[^a-zA-Z0-9]+")


def _tokens(node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for text in identifier_strings(node):
        out.update(t.lower() for t in _TOKEN_SPLIT.split(text) if t)
    return out


def _is_constant_only(node: ast.AST) -> bool:
    """True when the expression is built purely from numeric constants."""
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute, ast.Subscript, ast.Call)):
            return False
    return True


def _cpu_gate_names(ctx: ModuleContext) -> Set[str]:
    """Names assigned from ``visible_cpus()`` / ``os.cpu_count()``-style calls."""
    names: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            text = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else ""
            )
            if "cpu" in text.lower():
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _under_cpu_gate(ctx: ModuleContext, node: ast.AST, cpu_names: Set[str]) -> bool:
    for parent in ctx.ancestors(node):
        if isinstance(parent, (ast.If, ast.While)):
            toks = _tokens(parent.test)
            if "visible_cpus" in {t.lower() for t in identifier_strings(parent.test)}:
                return True
            if any(
                isinstance(sub, ast.Name) and sub.id in cpu_names
                for sub in ast.walk(parent.test)
            ):
                return True
            if "cpus" in toks and "visible" in toks:
                return True
    return False


def _floor_flavor(test: ast.AST) -> Optional[str]:
    """'timing' / 'size' when the assert floors such a quantity, else None."""
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left, *node.comparators]
        measured = [s for s in sides if not _is_constant_only(s)]
        constants = [s for s in sides if _is_constant_only(s)]
        if not measured or not constants:
            continue  # A-vs-B ordering, not a floor
        toks: Set[str] = set()
        for side in measured:
            toks |= _tokens(side)
        if toks & _TIMING_TOKENS:
            return "timing"
        if toks & _SIZE_TOKENS:
            return "size"
    return None


def _check(ctx: ModuleContext) -> Iterator[Finding]:
    cpu_names = _cpu_gate_names(ctx)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assert):
            continue
        flavor = _floor_flavor(node.test)
        if flavor is None:
            continue
        gated = _under_cpu_gate(ctx, node, cpu_names)
        if flavor == "timing" and not gated:
            yield ctx.finding(
                RULE_ID,
                node,
                "timing floor asserted without a visible_cpus gate — "
                "flakes on starved CI containers and invites weakening",
                "wrap in `if visible_cpus() >= N:` (see "
                "benchmarks/test_pool_speed.py); the recorded JSON still "
                "carries the measurement everywhere",
            )
        elif flavor == "size" and gated:
            yield ctx.finding(
                RULE_ID,
                node,
                "size/byte floor hidden under a visible_cpus gate — "
                "footprint facts are hardware-independent and must "
                "always be asserted",
                "move the assert outside the cpu gate",
            )


register(
    Rule(
        id=RULE_ID,
        title="timing floors gated on visible_cpus; size floors always hard",
        contract=(
            "Benchmark guards assert what the hardware can answer for: "
            "wall-clock floors only on boxes with enough cores, byte/"
            "size floors unconditionally."
        ),
        rationale=(
            "The PR 5 pool benches recorded 0.3-0.4x 'speedups' on a "
            "1-CPU container — pure IPC cost, not a regression.  An "
            "ungated timing floor on such a box fails spuriously, and "
            "the usual fix (lowering the floor) destroys the guard's "
            "value on real hardware.  Conversely a byte-footprint floor "
            "(PR 6's >= 2.5x label shrink) holds on any machine, so "
            "gating it just switches the check off.  BENCH_*.json embeds "
            "visible_cpus precisely so recorded numbers stay "
            "interpretable either way."
        ),
        motivated_by=(
            "PR 5 one-CPU caveat (ROADMAP measurement discipline; "
            "benchmarks/test_pool_speed.py visible_cpus gating) and "
            "PR 6's hardware-independent footprint floors"
        ),
        check=_check,
        paths=lambda rel: rel.endswith(".py") and rel.startswith("benchmarks/"),
    )
)
