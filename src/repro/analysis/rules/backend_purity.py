"""backend-purity: numpy stays behind :mod:`repro.backend`.

Two checks:

* No ``import numpy`` (or ``from numpy import ...``) anywhere under
  ``src/`` except ``repro/backend.py`` — the one module allowed to know
  whether the fast extra is installed.  A stray import anywhere else
  breaks the numpy-free deployment leg outright.
* Inside ``baselines/``, ``graph/`` and ``core/``, a function that
  reaches for the numpy module (``np = backend.np`` / ``backend.np`` /
  ``backend.np_view*``) is a *kernel region*: values it returns must
  cross back to the caller as plain Python scalars/lists.  Returning a
  bare subscript (``return out[0]``) or a reducing ndarray method call
  (``return col.sum()``) leaks ``np.float64``/``np.int64`` objects into
  answer paths, where they compare equal but hash, repr, and serialize
  differently from the pure backend's floats — wrap with ``float()`` /
  ``int()`` / ``.tolist()``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..framework import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    own_nodes,
    register,
)

RULE_ID = "backend-purity"

#: ndarray methods whose bare return would leak a numpy scalar/array.
_REDUCING_ATTRS = {"sum", "min", "max", "prod", "mean", "dot", "argmin", "argmax", "item"}

#: Directories whose functions form kernel regions for the scalar check.
_KERNEL_DIRS = ("/baselines/", "/graph/", "/core/")


def _is_backend_module(rel: str) -> bool:
    return rel.endswith("backend.py") and "/repro/" in "/" + rel


def _flag_imports(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    yield ctx.finding(
                        RULE_ID,
                        node,
                        f"direct `import {alias.name}` outside repro.backend",
                        "route numpy through repro.backend (backend.np, "
                        "backend.np_view*) so the pure-python leg keeps working",
                    )
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "numpy" or mod.startswith("numpy."):
                yield ctx.finding(
                    RULE_ID,
                    node,
                    f"direct `from {mod} import ...` outside repro.backend",
                    "route numpy through repro.backend (backend.np, "
                    "backend.np_view*) so the pure-python leg keeps working",
                )


def _is_numpy_region(func: ast.AST) -> bool:
    """True when the function's body reaches for the numpy module."""
    for node in ast.walk(func):
        name = dotted_name(node) if isinstance(node, ast.Attribute) else ""
        if name in ("backend.np",) or name.startswith("backend.np_view"):
            return True
    return False


def _flag_scalar_leaks(ctx: ModuleContext) -> Iterator[Finding]:
    rel = "/" + ctx.rel
    if not any(d in rel for d in _KERNEL_DIRS):
        return
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_numpy_region(func):
            continue
        for node in own_nodes(func):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Subscript):
                yield ctx.finding(
                    RULE_ID,
                    node,
                    "numpy kernel returns a bare subscript — a numpy "
                    "scalar would escape the backend boundary",
                    "wrap the scalar: return float(x[i]) / int(x[i])",
                )
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _REDUCING_ATTRS
            ):
                yield ctx.finding(
                    RULE_ID,
                    node,
                    f"numpy kernel returns `.{value.func.attr}()` directly — "
                    "a numpy scalar would escape the backend boundary",
                    "coerce at the return point: float(...), int(...), "
                    "or .tolist() for columns",
                )


def _check(ctx: ModuleContext) -> Iterator[Finding]:
    if not _is_backend_module(ctx.rel):
        yield from _flag_imports(ctx)
    yield from _flag_scalar_leaks(ctx)


register(
    Rule(
        id=RULE_ID,
        title="numpy only behind repro.backend; scalars cross via float()/int()/tolist()",
        contract=(
            "Answers are bit-identical with and without numpy; the pure "
            "leg must import cleanly and hot loops must never see numpy "
            "scalar types."
        ),
        rationale=(
            "PR 3 introduced the backend-selection layer: numpy is an "
            "optional accelerator, never a dependency.  One stray "
            "`import numpy` breaks the numpy-free CI leg; one leaked "
            "np.float64 flows into dict keys, reprs, and pickles that "
            "then differ between backends even though values compare "
            "equal.  Every engine return point therefore coerces with "
            "float()/int()/.tolist() (see repro/baselines/hl.py)."
        ),
        motivated_by=(
            "PR 3 (repro.backend) and tests/test_backend_parity.py — the "
            "bit-parity hypothesis suite this rule generalises to every file"
        ),
        check=_check,
        paths=lambda rel: rel.endswith(".py") and not rel.startswith("benchmarks"),
    )
)
