"""exact-accumulation: float distance/weight columns sum exactly once.

Builtin ``sum()`` adds left-to-right; ``ndarray.sum`` adds pairwise.
Over float64 distance columns the two differ in the last ulp, which is
enough to break the "backend never changes answers" contract (PR 3's
``total_weight`` bug).  ``backend.col_sum`` (``math.fsum`` over a
C-converted list) is exactly rounded on both backends, so any
accumulation over distance/weight-named floats must go through it (or
``math.fsum`` directly).

Two shapes are flagged in ``src/``:

* ``sum(<expr mentioning dist/weight names>)`` with the builtin ``sum``
  — unless every such name sits inside ``len(...)`` (counting label
  sizes is integer-exact and fine).
* ``for w in <distance/weight column>: total += w`` — the handwritten
  left-to-right column fold (the target accumulates the loop variable
  itself across iterations).

Deliberately *not* flagged: per-path chained sums (``total +=
graph.edge_weight(u, v)`` while walking a path) — those must stay
incremental to equal, bit for bit, the engines' own ``d + w`` chains;
rewriting them as fsum would *break* exactness, not restore it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import Finding, ModuleContext, Rule, register

RULE_ID = "exact-accumulation"

_HINT = (
    "accumulate with backend.col_sum(col) or math.fsum(values) — "
    "exactly rounded, identical on both backends"
)


def _distlike(name: str) -> bool:
    low = name.lower()
    return "dist" in low or "weight" in low


#: Exact snake-case tokens that mark a loop iterable as a weight column
#: (``out_w`` / ``wt`` style names common in CSR code).
_COLUMN_TOKENS = {"w", "wt", "dist", "dists", "distance", "distances", "weight", "weights"}


def _column_like_iter(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        text = None
        if isinstance(sub, ast.Name):
            text = sub.id
        elif isinstance(sub, ast.Attribute):
            text = sub.attr
        if text is not None and any(
            tok in _COLUMN_TOKENS for tok in text.lower().split("_")
        ):
            return True
    return False


def _loop_var_names(target: ast.AST):
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            yield sub.id


def _distlike_names_outside_len(node: ast.AST) -> Iterator[ast.AST]:
    """Name/Attribute/str-key nodes with dist/weight names, skipping len()."""
    stack = [node]
    while stack:
        sub = stack.pop()
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "len"
        ):
            continue  # len(dists) counts entries; integer-exact
        if (
            isinstance(sub, ast.Name)
            and _distlike(sub.id)
            and not isinstance(sub.ctx, ast.Store)
        ):
            # Store-context names (comprehension targets, assignments)
            # bind values; only loaded names feed the sum.
            yield sub
        elif isinstance(sub, ast.Attribute) and _distlike(sub.attr):
            yield sub
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str) and _distlike(
            sub.value
        ):
            yield sub
        stack.extend(ast.iter_child_nodes(sub))


def _check(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
        ):
            hits = [
                h for arg in node.args for h in _distlike_names_outside_len(arg)
            ]
            if hits:
                yield ctx.finding(
                    RULE_ID,
                    node,
                    "builtin sum() over a distance/weight column — "
                    "left-to-right float addition diverges from the numpy "
                    "backend in the last ulp",
                    _HINT,
                )
        elif isinstance(node, ast.For) and _column_like_iter(node.iter):
            loop_vars = set(_loop_var_names(node.target))
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.AugAssign)
                        and isinstance(sub.op, ast.Add)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id in loop_vars
                    ):
                        yield ctx.finding(
                            RULE_ID,
                            sub,
                            "`+=` fold of a distance/weight column in a "
                            "loop — left-to-right float addition diverges "
                            "from the numpy backend in the last ulp",
                            _HINT,
                        )


register(
    Rule(
        id=RULE_ID,
        title="no builtin sum()/+= folds over float distance columns",
        contract=(
            "Float accumulations over distances/weights are exactly "
            "rounded (math.fsum / backend.col_sum), so both backends "
            "produce the same float."
        ),
        rationale=(
            "numpy sums pairwise, builtin sum() folds left-to-right; on "
            "float64 distance columns they differ in the last ulp and "
            "the difference surfaces as a backend-parity failure "
            "thousands of hypothesis examples later.  PR 3's post-review "
            "fix rerouted Graph.total_weight through math.fsum for "
            "exactly this reason; the rule makes the convention "
            "mechanical for every future accumulation."
        ),
        motivated_by=(
            "PR 3 post-review col_sum fix (repro/backend.py col_sum "
            "docstring) and tests/test_backend_parity.py"
        ),
        check=_check,
        paths=lambda rel: rel.endswith(".py")
        and rel.startswith("src/")
        and not rel.endswith("backend.py"),
    )
)
