"""spawn-safety: worker processes boot from picklable module-level recipes.

The pool's crash-respawn contract (PR 5) requires every worker to be
reconstructable from its spec alone, and the spawn start method
requires the target to be importable by name.  Checks:

* ``Process(target=...)`` must not ship a lambda, a nested function
  (closure state silently disappears — or fails to pickle — under
  spawn), or a bound ``self.method`` (drags the whole parent object,
  pool handles and all, through pickle);
* no touching ``multiprocessing.resource_tracker`` — PR 6's reply
  lanes rely on spawned workers sharing the parent's tracker fd, where
  the attach-register is an idempotent set-add and the parent's
  ``unlink`` performs the single matching unregister.  A child-side
  ``unregister`` strips the parent's entry and turns its later unlink
  into a double-unregister.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..framework import Finding, ModuleContext, Rule, dotted_name, register

RULE_ID = "spawn-safety"


def _nested_function_names(tree: ast.AST) -> Set[str]:
    nested: Set[str] = set()
    for outer in ast.walk(tree):
        if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(outer):
                if inner is not outer and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(inner.name)
    return nested


def _target_expr(call: ast.Call) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == "target":
            return kw.value
    if len(call.args) >= 2:  # Process(group, target, ...)
        return call.args[1]
    return None


def _check(ctx: ModuleContext) -> Iterator[Finding]:
    nested = _nested_function_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            modules = (
                [alias.name for alias in node.names]
                if isinstance(node, ast.Import)
                else [node.module or ""]
                + [f"{node.module}.{a.name}" for a in node.names]
            )
            if any("resource_tracker" in m for m in modules):
                yield ctx.finding(
                    RULE_ID,
                    node,
                    "multiprocessing.resource_tracker imported — worker "
                    "code must leave tracker bookkeeping to the parent",
                    "the parent's SharedMemory unlink performs the single "
                    "unregister; see repro/serve/pool.py _attach_lane",
                )
            continue
        if not isinstance(node, ast.Call):
            continue
        func_name = dotted_name(node.func)
        if "resource_tracker" in func_name and func_name.endswith("unregister"):
            yield ctx.finding(
                RULE_ID,
                node,
                "child-side resource-tracker unregister strips the "
                "parent's registration and double-unregisters on unlink",
                "leave the tracker alone; ownership stays with the "
                "parent (repro/serve/pool.py _attach_lane)",
            )
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "Process"
        ) and func_name != "Process":
            continue
        target = _target_expr(node)
        if target is None:
            continue
        if isinstance(target, ast.Lambda):
            yield ctx.finding(
                RULE_ID,
                node,
                "lambda shipped as a Process target — unpicklable under "
                "the spawn start method",
                "use a module-level worker function taking an explicit "
                "spec (see repro/serve/pool.py _worker_main)",
            )
        elif isinstance(target, ast.Name) and target.id in nested:
            yield ctx.finding(
                RULE_ID,
                node,
                f"nested function {target.id!r} shipped as a Process "
                "target — closures are not importable by the spawned child",
                "hoist the worker to module level and pass its state as "
                "an explicit picklable spec",
            )
        elif isinstance(target, ast.Attribute) and dotted_name(target).startswith(
            "self."
        ):
            yield ctx.finding(
                RULE_ID,
                node,
                "bound method shipped as a Process target — pickles the "
                "entire parent object (pipes, pools, caches) into the child",
                "use a module-level function plus an explicit spec dict",
            )


register(
    Rule(
        id=RULE_ID,
        title="Process targets are module-level and spec-driven; tracker untouched",
        contract=(
            "Every worker is reconstructable from a picklable spec "
            "(crash respawn), and shared-memory tracker ownership stays "
            "with the parent (single unlink/unregister)."
        ),
        rationale=(
            "PR 5's pool respawns crashed workers from their spec; that "
            "only works when the Process target is a module-level "
            "function driven by explicit picklable state — lambdas, "
            "closures and bound methods either fail to pickle under "
            "spawn or silently drag the parent's state (and its fds) "
            "into the child.  PR 6's reply lanes additionally depend on "
            "the parent owning the resource-tracker registration: a "
            "child-side unregister makes the parent's unlink "
            "double-unregister and spews tracker warnings at exit."
        ),
        motivated_by=(
            "PR 5 WorkerHandle respawn recipe and PR 6 reply-lane "
            "tracker note (repro/serve/pool.py _attach_lane docstring; "
            "tests/test_pool.py lane lifecycle tests)"
        ),
        check=_check,
        paths=lambda rel: rel.endswith(".py") and rel.startswith("src/"),
    )
)
