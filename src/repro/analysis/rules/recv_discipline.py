"""recv-timeout-discipline: no unbounded pipe waits in the serving tier.

PR 8's resilience contract is "every unanswerable request fails typed,
never hangs" — which dies the moment any parent-side pipe wait has no
deadline: a stalled-but-alive worker (SIGSTOP, lock wedge) then parks
the dispatcher forever, exactly the failure the watchdog machinery was
built to catch.  The checks, applied to ``src/repro/serve/`` (except
``faults.py``, whose worker-side appliers *are* the injected faults):

* no ``.poll()`` without a timeout — a bare or ``poll(None)`` call
  blocks until the peer writes;
* no bare ``.recv()`` / ``.recv_bytes()`` in a scope that never makes
  a timed ``.poll(...)`` / ``wait(..., timeout=...)`` call — recv has
  no timeout parameter of its own, so a timed poll (or connection
  ``wait``) must bound it;
* no ``multiprocessing.connection.wait`` without a ``timeout=``;
* every fault-injection touch (``faults.*`` module calls, any
  ``fault_plan`` access) sits behind an ``is None`` fast-path
  conditional, so the production pool compiles the harness to a no-op.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..framework import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    functions,
    own_nodes,
    register,
)

RULE_ID = "recv-timeout-discipline"

#: Access into the faults module (``faults.kill`` / ``_faults.apply_pre``).
_FAULT_MODULE_RE = re.compile(r"(^|\.)_?faults\.")


def _is_none(node) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _poll_is_timed(call: ast.Call) -> bool:
    """``poll(x)`` with a non-None timeout; bare/None polls block forever."""
    if call.args:
        return not _is_none(call.args[0])
    for kw in call.keywords:
        if kw.arg == "timeout":
            return not _is_none(kw.value)
    return False


def _is_conn_wait(name: str) -> bool:
    return name.endswith("_conn_wait") or name.endswith("connection.wait")


def _wait_is_timed(call: ast.Call) -> bool:
    if len(call.args) >= 2:
        return not _is_none(call.args[1])
    return any(
        kw.arg == "timeout" and not _is_none(kw.value)
        for kw in call.keywords
    )


def _is_fault_touch(name: str) -> bool:
    return bool(_FAULT_MODULE_RE.search(name)) or "fault_plan" in name


def _test_guards_faults(test: ast.AST) -> bool:
    """Does this conditional compare a fault-ish identifier with None?"""
    mentions_fault = any(
        isinstance(sub, ast.Name)
        and "fault" in sub.id.lower()
        or isinstance(sub, ast.Attribute)
        and "fault" in sub.attr.lower()
        for sub in ast.walk(test)
    )
    compares_none = any(_is_none(sub) for sub in ast.walk(test))
    return mentions_fault and compares_none


def _fault_guarded(ctx: ModuleContext, node: ast.AST) -> bool:
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.If, ast.IfExp)) and _test_guards_faults(
            anc.test
        ):
            return True
    return False


def _check(ctx: ModuleContext) -> Iterator[Finding]:
    scopes = [ctx.tree, *functions(ctx.tree)]
    for scope in scopes:
        nodes = [n for n in own_nodes(scope) if isinstance(n, ast.Call)]
        has_timed_wait = any(
            (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "poll"
                and _poll_is_timed(call)
            )
            or (_is_conn_wait(dotted_name(call.func)) and _wait_is_timed(call))
            for call in nodes
        )
        for call in nodes:
            name = dotted_name(call.func)
            attr = call.func.attr if isinstance(call.func, ast.Attribute) else ""
            if attr == "poll" and not _poll_is_timed(call):
                yield ctx.finding(
                    RULE_ID,
                    call,
                    "unbounded .poll() blocks until the peer writes — a "
                    "stalled worker hangs this caller forever",
                    "pass a timeout (poll(t)) and raise WorkerStalled on "
                    "expiry",
                )
            elif (
                attr in ("recv", "recv_bytes")
                and not call.args
                and not call.keywords
                and not has_timed_wait
            ):
                yield ctx.finding(
                    RULE_ID,
                    call,
                    f"bare .{attr}() in a scope with no timed poll/wait — "
                    "recv has no deadline of its own",
                    "guard the recv behind conn.poll(timeout) (see "
                    "WorkerHandle.recv)",
                )
            elif _is_conn_wait(name) and not _wait_is_timed(call):
                yield ctx.finding(
                    RULE_ID,
                    call,
                    "connection wait() without timeout= parks the "
                    "dispatcher until some worker answers",
                    "pass timeout= and treat expiry as WorkerStalled",
                )
            if _is_fault_touch(name) and not _fault_guarded(ctx, call):
                yield ctx.finding(
                    RULE_ID,
                    call,
                    "fault-injection touch outside a `... is None` "
                    "fast-path conditional — the chaos hook would run on "
                    "the production path",
                    "wrap the call in `if fault_plan is not None:` (or "
                    "`if fault is not None:`)",
                )


register(
    Rule(
        id=RULE_ID,
        title="every serve-tier pipe wait is bounded; fault hooks no-op in production",
        contract=(
            "No recv/poll/wait in repro.serve can block without a "
            "deadline, and every fault-injection site sits behind a "
            "`FaultPlan is None` fast path."
        ),
        rationale=(
            "PR 8's watchdog/hedging layer guarantees that a stalled "
            "worker surfaces as a typed WorkerStalled within the recv "
            "deadline instead of hanging the dispatcher.  One unbounded "
            "poll() or bare recv() silently reopens the hang the whole "
            "layer exists to close — and, symmetrically, a fault hook "
            "outside its None-guard would tax (or sabotage) the "
            "production hot path the harness promises never to touch."
        ),
        motivated_by=(
            "PR 8 fault-injection harness (repro/serve/faults.py, "
            "tests/test_faults.py) and the WorkerHandle.recv watchdog "
            "in repro/serve/pool.py"
        ),
        check=_check,
        paths=lambda rel: (
            rel.startswith("src/repro/serve/")
            and rel.endswith(".py")
            and not rel.endswith("/faults.py")
        ),
    )
)
