"""serialize-symmetry: every packed struct format has a matching reader.

The bundle formats (GCSR1/HLIDX1/HLIDX2) promise byte-identical files
from either backend and byte-exact round-trips; that only holds when
every ``struct.pack`` in a section writer has a byte-compatible
``unpack`` in the matching reader, and every format is explicitly
little-endian (a bare ``"q"`` would silently follow native alignment
and byte order).  Checks, per module:

* struct format strings must be literals (a computed format cannot be
  checked for symmetry — and the repo never needs one);
* every format is explicitly little-endian (starts with ``"<"``);
* every *pack* format's expanded field sequence must appear among the
  module's *unpack* formats (readers may additionally peek at prefixes,
  so unpaired unpacks are fine).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from ..framework import Finding, ModuleContext, Rule, dotted_name, register

RULE_ID = "serialize-symmetry"

_PACK_FUNCS = {"pack", "pack_into"}
_UNPACK_FUNCS = {"unpack", "unpack_from", "iter_unpack"}
_FMT_RE = re.compile(r"(\d*)([xcbB?hHiIlLqQnNefdspP])")


def _expand(fmt: str) -> Optional[Tuple[str, ...]]:
    """``"<iii3d"`` -> ``('i','i','i','d','d','d')``; None if unparsable."""
    body = fmt[1:] if fmt[:1] in "<>=!@" else fmt
    fields: List[str] = []
    pos = 0
    for m in _FMT_RE.finditer(body):
        if m.start() != pos:
            return None
        count = int(m.group(1)) if m.group(1) else 1
        code = m.group(2)
        if code == "s":  # count is a byte length, not a repeat
            fields.append(f"{count}s")
        else:
            fields.extend([code] * count)
        pos = m.end()
    if pos != len(body):
        return None
    return tuple(fields)


def _struct_calls(ctx: ModuleContext) -> Iterator[Tuple[str, ast.Call, ast.AST]]:
    """Yield ``(kind, call, fmt_node)`` for struct.* calls with a format."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if not name.startswith("struct."):
            continue
        attr = name.split(".", 1)[1]
        if attr in _PACK_FUNCS:
            kind = "pack"
        elif attr in _UNPACK_FUNCS:
            kind = "unpack"
        elif attr in ("Struct", "calcsize"):
            kind = "both"
        else:
            continue
        if node.args:
            yield kind, node, node.args[0]


def _check(ctx: ModuleContext) -> Iterator[Finding]:
    packs: List[Tuple[str, ast.Call]] = []
    unpack_fields = set()
    deferred: List[Finding] = []
    for kind, call, fmt_node in _struct_calls(ctx):
        if not (isinstance(fmt_node, ast.Constant) and isinstance(fmt_node.value, str)):
            deferred.append(
                ctx.finding(
                    RULE_ID,
                    call,
                    "struct format is not a string literal — symmetry "
                    "cannot be checked",
                    "inline the format as a literal (build fixed-width "
                    "sections; variable payloads go through length-"
                    "prefixed byte blobs)",
                )
            )
            continue
        fmt = fmt_node.value
        if not fmt.startswith("<"):
            deferred.append(
                ctx.finding(
                    RULE_ID,
                    call,
                    f"struct format {fmt!r} is not explicitly "
                    "little-endian — native order/alignment varies by "
                    "platform",
                    'prefix the format with "<"',
                )
            )
        fields = _expand(fmt)
        if kind in ("pack", "both") and fields is not None:
            packs.append((fmt, call))
        if kind in ("unpack", "both") and fields is not None:
            unpack_fields.add(fields)
    yield from deferred
    for fmt, call in packs:
        fields = _expand(fmt)
        if fields not in unpack_fields:
            yield ctx.finding(
                RULE_ID,
                call,
                f"struct.pack format {fmt!r} has no byte-compatible "
                "unpack in this module — the reader cannot round-trip "
                "what this writer emits",
                "add the matching unpack to the section reader (or fix "
                "the asymmetric format)",
            )


register(
    Rule(
        id=RULE_ID,
        title="little-endian literal struct formats, pack/unpack paired",
        contract=(
            "Serialized sections round-trip byte-for-byte: every packed "
            "format has a byte-compatible reader and no format depends "
            "on platform byte order."
        ),
        rationale=(
            "The bundle formats promise save->load->save byte identity "
            "across backends and platforms (property-tested since PR 3, "
            "hardened by PR 6's compact columns).  A writer whose pack "
            "format gained a field the reader never learned about "
            "corrupts every bundle silently until a load crashes "
            "sections later; a native-order format corrupts them only "
            "on the *other* platform.  Both asymmetries are fully "
            "visible statically."
        ),
        motivated_by=(
            "PR 6 HLIDX2 round-trip suite (tests/test_hl_compact.py) and "
            "the PR 3 bundle byte-identity property tests "
            "(tests/test_backend_parity.py)"
        ),
        check=_check,
        paths=lambda rel: rel.endswith(".py") and rel.startswith("src/"),
    )
)
