"""4x4-cell regions, strips and bisectors (Definitions 1-2 of the paper).

A *region* is a 4x4 block of cells in some grid ``R_i``, identified by the
grid level and the cell coordinates of its min (south-west) corner.  The
paper's constructions sweep over *every placement* of a 4x4 region that
contains at least one relevant node; :func:`regions_covering_cell` and
:func:`nonempty_regions` enumerate those placements.

Orientation conventions (x grows east, y grows north):

* west strip  = column ``rx``      east strip  = column ``rx + 3``
* south strip = row ``ry``         north strip = row ``ry + 3``
* vertical bisector   = line ``x`` between columns ``rx+1`` and ``rx+2``
* horizontal bisector = line ``y`` between rows ``ry+1`` and ``ry+2``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from .grid import Cell, GridPyramid, NodeGrid

__all__ = [
    "Region",
    "regions_covering_cell",
    "nonempty_regions",
    "HORIZONTAL",
    "VERTICAL",
]

VERTICAL = "vertical"
HORIZONTAL = "horizontal"


@dataclass(frozen=True)
class Region:
    """A 4x4-cell region of grid ``R_level`` with min corner ``(rx, ry)``."""

    level: int
    rx: int
    ry: int

    # ------------------------------------------------------------------
    # Cell membership
    # ------------------------------------------------------------------
    def contains_cell(self, cell: Cell) -> bool:
        """True when ``cell`` (same grid level) lies inside this region."""
        return self.rx <= cell[0] < self.rx + 4 and self.ry <= cell[1] < self.ry + 4

    def in_west_strip(self, cell: Cell) -> bool:
        """True when ``cell`` is in the left-most column of the region."""
        return cell[0] == self.rx and self.ry <= cell[1] < self.ry + 4

    def in_east_strip(self, cell: Cell) -> bool:
        """True when ``cell`` is in the right-most column of the region."""
        return cell[0] == self.rx + 3 and self.ry <= cell[1] < self.ry + 4

    def in_south_strip(self, cell: Cell) -> bool:
        """True when ``cell`` is in the bottom row of the region."""
        return cell[1] == self.ry and self.rx <= cell[0] < self.rx + 4

    def in_north_strip(self, cell: Cell) -> bool:
        """True when ``cell`` is in the top row of the region."""
        return cell[1] == self.ry + 3 and self.rx <= cell[0] < self.rx + 4

    def in_center_2x2(self, cell: Cell) -> bool:
        """True for the central 2x2 cells (used by Definition 2: border
        nodes must lie outside this block)."""
        return (
            self.rx + 1 <= cell[0] <= self.rx + 2
            and self.ry + 1 <= cell[1] <= self.ry + 2
        )

    def side_of_vertical(self, cell: Cell) -> int:
        """-1 west of the vertical bisector, +1 east of it."""
        return -1 if cell[0] <= self.rx + 1 else 1

    def side_of_horizontal(self, cell: Cell) -> int:
        """-1 south of the horizontal bisector, +1 north of it."""
        return -1 if cell[1] <= self.ry + 1 else 1

    def adjacent_to_vertical(self, cell: Cell) -> bool:
        """True for cells in the two columns touching the vertical
        bisector (spanning-path endpoints must avoid these)."""
        return cell[0] in (self.rx + 1, self.rx + 2)

    def adjacent_to_horizontal(self, cell: Cell) -> bool:
        """True for cells in the two rows touching the horizontal bisector."""
        return cell[1] in (self.ry + 1, self.ry + 2)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def vertical_bisector_x(self, pyramid: GridPyramid) -> float:
        """x-coordinate of the vertical bisector line."""
        return pyramid.origin_x + (self.rx + 2) * pyramid.cell_side(self.level)

    def horizontal_bisector_y(self, pyramid: GridPyramid) -> float:
        """y-coordinate of the horizontal bisector line."""
        return pyramid.origin_y + (self.ry + 2) * pyramid.cell_side(self.level)

    def bounds(self, pyramid: GridPyramid) -> Tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` of the region."""
        cs = pyramid.cell_side(self.level)
        x0 = pyramid.origin_x + self.rx * cs
        y0 = pyramid.origin_y + self.ry * cs
        return x0, y0, x0 + 4 * cs, y0 + 4 * cs

    def contains_region(self, other: "Region") -> bool:
        """True when ``other`` (at a finer or equal level) lies entirely
        inside this region — the paper's coverage condition compares a
        shortcut's generating region against the current region."""
        if other.level > self.level:
            return False
        shift = self.level - other.level
        # This region's cell range expressed in ``other``'s (finer) grid.
        fx0 = self.rx << shift
        fy0 = self.ry << shift
        fx1 = (self.rx + 4) << shift
        fy1 = (self.ry + 4) << shift
        return (
            fx0 <= other.rx
            and other.rx + 4 <= fx1
            and fy0 <= other.ry
            and other.ry + 4 <= fy1
        )


def regions_covering_cell(cell: Cell, cells_per_side: int, level: int) -> Iterator[Region]:
    """All in-bounds 4x4 placements of ``R_level`` containing ``cell``."""
    max_corner = cells_per_side - 4
    for rx in range(max(cell[0] - 3, 0), min(cell[0], max_corner) + 1):
        for ry in range(max(cell[1] - 3, 0), min(cell[1], max_corner) + 1):
            yield Region(level, rx, ry)


def nonempty_regions(
    node_grid: NodeGrid, level: int, nodes: Iterable[int] = None
) -> Dict[Region, List[int]]:
    """Map each 4x4 region of ``R_level`` containing >= 1 node to its nodes.

    ``nodes`` restricts the sweep to a subset (the alive nodes of a reduced
    graph during AH construction); ``None`` means all graph nodes.
    """
    buckets = node_grid.buckets(level, nodes)
    cells_per_side = node_grid.pyramid.cells_per_side(level)
    result: Dict[Region, List[int]] = {}
    for cell, members in buckets.items():
        for region in regions_covering_cell(cell, cells_per_side, level):
            lst = result.get(region)
            if lst is None:
                result[region] = list(members)
            else:
                lst.extend(members)
    return result


def region_nodes_by_cell(
    node_grid: NodeGrid, region: Region, nodes: Iterable[int] = None
) -> Dict[Cell, List[int]]:
    """Nodes of ``region`` keyed by their cell (subset-aware)."""
    buckets = node_grid.buckets(region.level, nodes)
    out: Dict[Cell, List[int]] = {}
    for dx in range(4):
        for dy in range(4):
            cell = (region.rx + dx, region.ry + dy)
            members = buckets.get(cell)
            if members:
                out[cell] = members
    return out
