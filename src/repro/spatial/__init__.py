"""Spatial substrate: grid pyramids, regions, strips and bisectors."""

from .geometry import (
    bounding_square,
    euclidean_distance,
    linf_distance,
    pairwise_min_linf,
    segment_crosses_horizontal,
    segment_crosses_vertical,
)
from .grid import GridPyramid, NodeGrid
from .regions import (
    HORIZONTAL,
    VERTICAL,
    Region,
    nonempty_regions,
    region_nodes_by_cell,
    regions_covering_cell,
)

__all__ = [
    "GridPyramid",
    "NodeGrid",
    "Region",
    "regions_covering_cell",
    "nonempty_regions",
    "region_nodes_by_cell",
    "VERTICAL",
    "HORIZONTAL",
    "linf_distance",
    "euclidean_distance",
    "bounding_square",
    "pairwise_min_linf",
    "segment_crosses_vertical",
    "segment_crosses_horizontal",
]
