"""Plane geometry helpers for the grid machinery.

Everything the paper needs from geometry is simple: L∞ distances (used to
define ``dmax``/``dmin`` and hence the grid depth ``h``), axis-aligned
bounding squares, and tests for whether a segment crosses a vertical or
horizontal line (used to decide which edges intersect a region's
bisector).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

__all__ = [
    "linf_distance",
    "euclidean_distance",
    "bounding_square",
    "segment_crosses_vertical",
    "segment_crosses_horizontal",
    "pairwise_min_linf",
]

Point = Tuple[float, float]


def linf_distance(a: Point, b: Point) -> float:
    """Chebyshev (L∞) distance between two points."""
    return max(abs(a[0] - b[0]), abs(a[1] - b[1]))


def euclidean_distance(a: Point, b: Point) -> float:
    """Euclidean distance; used by A*'s admissible heuristic."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def bounding_square(points: Iterable[Point], pad: float = 0.0) -> Tuple[float, float, float]:
    """Smallest axis-aligned square covering ``points``.

    Returns ``(origin_x, origin_y, side)``.  The square is anchored at the
    min corner and extended to the larger of the two extents, optionally
    padded; a degenerate single-point input yields a unit square so grid
    construction never divides by zero.
    """
    xs, ys = [], []
    for x, y in points:
        xs.append(x)
        ys.append(y)
    if not xs:
        raise ValueError("bounding_square of an empty point set")
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    side = max(max_x - min_x, max_y - min_y) + 2 * pad
    if side <= 0:
        side = 1.0
    return min_x - pad, min_y - pad, side


def segment_crosses_vertical(ax: float, bx: float, line_x: float) -> bool:
    """True when the segment with endpoint x-coords ``ax``/``bx`` crosses
    the vertical line ``x = line_x`` (touching counts)."""
    return (ax - line_x) * (bx - line_x) <= 0


def segment_crosses_horizontal(ay: float, by: float, line_y: float) -> bool:
    """True when the segment with endpoint y-coords ``ay``/``by`` crosses
    the horizontal line ``y = line_y`` (touching counts)."""
    return (ay - line_y) * (by - line_y) <= 0


def pairwise_min_linf(points: Sequence[Point], sample_cap: int = 4096) -> float:
    """Smallest L∞ distance between distinct points (``dmin`` in §1).

    An exact sweep would be O(n²); since ``dmin`` only calibrates the grid
    depth ``h`` (and ``h`` is clamped anyway), we bucket points on a fine
    grid and compare within/neighbouring buckets, falling back to exact
    comparison for small inputs.
    """
    n = len(points)
    if n < 2:
        raise ValueError("need at least two points")
    if n <= 256:
        best = math.inf
        for i in range(n):
            for j in range(i + 1, n):
                d = linf_distance(points[i], points[j])
                if 0 < d < best:
                    best = d
        return best if best < math.inf else 0.0
    # Grid bucketing: cell side = diameter / sqrt(n); nearest pair in L∞
    # must fall in the same or an adjacent bucket once the cell is below
    # the true minimum distance, so we shrink until stable or capped.
    ox, oy, side = bounding_square(points)
    cell = side / max(2, int(math.sqrt(n)))
    best = math.inf
    for _ in range(8):
        buckets = {}
        for p in points:
            key = (int((p[0] - ox) / cell), int((p[1] - oy) / cell))
            buckets.setdefault(key, []).append(p)
        best = math.inf
        for (cx, cy), pts in buckets.items():
            neigh = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    neigh.extend(buckets.get((cx + dx, cy + dy), ()))
            for p in pts:
                for q in neigh:
                    if p is q:
                        continue
                    d = linf_distance(p, q)
                    if 0 < d < best:
                        best = d
        if best is math.inf or best > cell:
            cell = cell / 2 if best is math.inf else best
            continue
        return best
    return best if best < math.inf else 0.0
