"""The square grid pyramid ``R_1 .. R_h`` (Section 3.1 of the paper).

FC/AH impose on the road network a sequence of square grids with
geometrically increasing resolution:

* ``R_h`` is the coarsest grid and has ``4 x 4`` cells;
* each finer grid splits every cell into ``2 x 2``;
* ``R_i`` therefore has ``2^(h+2-i)`` cells per side;
* ``R_1`` is the finest grid, chosen so every cell contains at most one
  node (subject to a depth cap, needed when nodes share coordinates).

The paper shows ``h <= log2(dmax/dmin) - 1`` and notes ``h <= 26`` for any
terrestrial network, so the cap never binds in practice.

Implementation notes
--------------------
A node's cell in ``R_i`` is its cell in ``R_1`` right-shifted by ``i - 1``
bits per axis, so we compute finest-level cells once per node
(:class:`NodeGrid`) and derive every coarser level with two shifts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..graph.graph import Graph
from .geometry import bounding_square

__all__ = ["GridPyramid", "NodeGrid"]

Cell = Tuple[int, int]

_MAX_H_DEFAULT = 18


class GridPyramid:
    """Geometry of the grid sequence ``R_1 .. R_h`` over a bounding square.

    Parameters
    ----------
    origin_x, origin_y:
        Min corner of the bounding square.
    side:
        Side length of the bounding square (> 0).
    h:
        Number of grids; ``R_i`` has ``2^(h+2-i)`` cells per side.
    """

    __slots__ = ("origin_x", "origin_y", "side", "h")

    def __init__(self, origin_x: float, origin_y: float, side: float, h: int) -> None:
        if side <= 0:
            raise ValueError("grid side must be positive")
        if h < 1:
            raise ValueError("need at least one grid level")
        self.origin_x = origin_x
        self.origin_y = origin_y
        self.side = side
        self.h = h

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        points: Sequence[Tuple[float, float]],
        max_h: int = _MAX_H_DEFAULT,
        leaf_capacity: int = 1,
    ) -> "GridPyramid":
        """Build the pyramid for a point set.

        ``R_h`` (4x4 cells) tightly covers the points; grids are refined
        until every finest cell holds at most ``leaf_capacity`` points or
        ``max_h`` grids exist (ties in coordinates would otherwise refine
        forever).  The paper uses ``leaf_capacity = 1``; larger values
        trade a shallower hierarchy — and a much cheaper AH construction
        — for slightly coarser query-time pruning, without affecting
        correctness.
        """
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be at least 1")
        ox, oy, side = bounding_square(points, pad=side_pad(points))
        h = 1
        while h < max_h:
            cells = 1 << (h + 1)  # cells per side of the *finest* grid so far
            cell_side = side / cells
            counts: dict = {}
            overfull = False
            for x, y in points:
                cx = min(int((x - ox) / cell_side), cells - 1)
                cy = min(int((y - oy) / cell_side), cells - 1)
                key = (cx, cy)
                c = counts.get(key, 0) + 1
                if c > leaf_capacity:
                    overfull = True
                    break
                counts[key] = c
            if not overfull:
                break
            h += 1
        return cls(ox, oy, side, h)

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        max_h: int = _MAX_H_DEFAULT,
        leaf_capacity: int = 1,
    ) -> "GridPyramid":
        """Build the pyramid covering all nodes of ``graph``."""
        return cls.from_points(
            list(zip(graph.xs, graph.ys)), max_h=max_h, leaf_capacity=leaf_capacity
        )

    # ------------------------------------------------------------------
    # Geometry per level
    # ------------------------------------------------------------------
    def levels(self) -> range:
        """Grid indices ``1 .. h`` (1 = finest, h = coarsest)."""
        return range(1, self.h + 1)

    def cells_per_side(self, i: int) -> int:
        """Number of cells per side of ``R_i`` (= ``2^(h+2-i)``)."""
        self._check_level(i)
        return 1 << (self.h + 2 - i)

    def cell_side(self, i: int) -> float:
        """Side length of one cell of ``R_i``."""
        return self.side / self.cells_per_side(i)

    def cell_of(self, i: int, x: float, y: float) -> Cell:
        """Cell of ``R_i`` containing point ``(x, y)`` (clamped to grid)."""
        cells = self.cells_per_side(i)
        cs = self.side / cells
        cx = int((x - self.origin_x) / cs)
        cy = int((y - self.origin_y) / cs)
        return (min(max(cx, 0), cells - 1), min(max(cy, 0), cells - 1))

    def cell_bounds(self, i: int, cell: Cell) -> Tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` of ``cell`` in ``R_i``."""
        cs = self.cell_side(i)
        x0 = self.origin_x + cell[0] * cs
        y0 = self.origin_y + cell[1] * cs
        return x0, y0, x0 + cs, y0 + cs

    def parent_cell(self, cell: Cell) -> Cell:
        """Cell of the next-coarser grid containing ``cell``."""
        return (cell[0] >> 1, cell[1] >> 1)

    def _check_level(self, i: int) -> None:
        if not 1 <= i <= self.h:
            raise ValueError(f"grid level {i} outside [1, {self.h}]")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridPyramid(origin=({self.origin_x}, {self.origin_y}), "
            f"side={self.side}, h={self.h})"
        )


def side_pad(points: Sequence[Tuple[float, float]]) -> float:
    """Tiny padding so boundary points fall strictly inside the grid."""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    extent = max(max(xs) - min(xs), max(ys) - min(ys), 1.0)
    return extent * 1e-9


class NodeGrid:
    """Node-to-cell mapping for a graph over a :class:`GridPyramid`.

    Precomputes each node's cell in the finest grid ``R_1``; the cell in a
    coarser ``R_i`` is obtained with two bit shifts.  Also buckets nodes by
    cell per level on demand (cached) — the region sweeps of the arterial
    computation and the AH construction use those buckets heavily.
    """

    def __init__(self, graph: Graph, pyramid: GridPyramid) -> None:
        self.graph = graph
        self.pyramid = pyramid
        self._fx: List[int] = []
        self._fy: List[int] = []
        for u in graph.nodes():
            cx, cy = pyramid.cell_of(1, graph.xs[u], graph.ys[u])
            self._fx.append(cx)
            self._fy.append(cy)
        self._buckets: Dict[int, Dict[Cell, List[int]]] = {}

    def cell_of(self, i: int, u: int) -> Cell:
        """Cell of ``R_i`` containing node ``u``."""
        s = i - 1
        return (self._fx[u] >> s, self._fy[u] >> s)

    def chebyshev_cells(self, i: int, u: int, v: int) -> int:
        """Chebyshev distance between the ``R_i`` cells of ``u`` and ``v``.

        Two nodes fit in a common ``(3x3)``-cell region of ``R_i`` exactly
        when this is at most 2 — the predicate behind the paper's proximity
        constraint and Lemma 3.
        """
        s = i - 1
        return max(
            abs((self._fx[u] >> s) - (self._fx[v] >> s)),
            abs((self._fy[u] >> s) - (self._fy[v] >> s)),
        )

    def same_3x3_region(self, i: int, u: int, v: int) -> bool:
        """True when some 3x3-cell region of ``R_i`` covers ``u`` and ``v``."""
        return self.chebyshev_cells(i, u, v) <= 2

    def buckets(self, i: int, nodes: Iterable[int] = None) -> Dict[Cell, List[int]]:
        """Nodes grouped by their ``R_i`` cell.

        With ``nodes=None`` the full-graph bucketing is computed once and
        cached; passing an explicit subset always recomputes (used on the
        shrinking alive-sets of the AH construction).
        """
        if nodes is None:
            cached = self._buckets.get(i)
            if cached is not None:
                return cached
            node_iter: Iterable[int] = self.graph.nodes()
        else:
            node_iter = nodes
        s = i - 1
        buckets: Dict[Cell, List[int]] = {}
        fx, fy = self._fx, self._fy
        for u in node_iter:
            key = (fx[u] >> s, fy[u] >> s)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [u]
            else:
                bucket.append(u)
        if nodes is None:
            self._buckets[i] = buckets
        return buckets

    def coarsest_separating_level(self, s: int, t: int) -> int:
        """Largest ``j`` such that no 3x3 region of ``R_j`` covers both.

        Returns 0 when even the finest grid has them in a common 3x3
        region.  This is the level the AH query's elevating strategy jumps
        to (Section 4.3): the shortest path must climb to level ``j``.
        """
        fx, fy = self._fx, self._fy
        # The cell Chebyshev distance is non-increasing as grids coarsen,
        # so the first separating level found from the coarsest side down
        # is the largest one.
        for i in range(self.pyramid.h, 0, -1):
            sh = i - 1
            cheb = max(
                abs((fx[s] >> sh) - (fx[t] >> sh)),
                abs((fy[s] >> sh) - (fy[t] >> sh)),
            )
            if cheb > 2:
                return i
        return 0
