"""Array-kernel backend selection: NumPy acceleration with a pure fallback.

The paper's practical thesis is that road-network oracles win by keeping
hot state in flat, cache-friendly arrays.  The PR-1 CSR substrate and the
PR-2 hub labels realised that layout in pure CPython; this module lets the
same flat columns be *NumPy* arrays when ``numpy`` is importable, so that
the batched kernels (label merge-joins, distance tables, reverse-CSR
derivation, bundle I/O) run as vectorised C loops instead of one CPython
bytecode per element — while every algorithm keeps a tested pure-Python
path for deployments without the optional ``fast`` extra.

Contract
--------
* **The backend never changes answers.**  Both backends execute the same
  algorithms over the same values in the same order; only the container
  type of the flat columns and the inner-loop engine differ.  The
  hypothesis suite in ``tests/test_backend_parity.py`` pins this.
* **Selection** happens once at import, in tier order ``native`` ->
  ``numpy`` -> ``pure-python``: the compiled :mod:`repro.native` hub-join
  kernels when the extension is importable, else numpy, else pure.  The
  ``REPRO_BACKEND`` environment variable overrides (``native`` /
  ``numpy`` / ``pure``; ``native`` on a box without the compiled module
  degrades with a single warning instead of failing), and :func:`forced`
  flips the active tier for a scope — which is how the parity tests and
  the A/B benchmarks run all paths in one process.
* The **native tier stacks on the container layer**: columns under
  ``native`` are whatever :func:`use_numpy` says (numpy arrays when the
  fast extra is installed, stdlib arrays otherwise) — the C kernels read
  either through the buffer protocol.  ``native`` only redirects the HL
  hot-path kernels; every other code path behaves exactly as on the
  container backend beneath it.
* **Columns** are ``int64`` / ``float64`` either way: ``numpy.ndarray``
  under the numpy backend, ``array('q')`` / ``array('d')`` under the pure
  one.  Both expose ``tobytes`` / ``tolist`` / slicing, and the stdlib
  arrays support the buffer protocol, so :func:`np_view_i64` /
  :func:`np_view_f64` give *zero-copy* NumPy views over either storage —
  a kernel can vectorise over columns a pure build produced.
* **Bytes on disk are identical** between backends (little-endian int64 /
  IEEE float64 in both containers), so serialized graphs, indexes and
  bundles round-trip byte-for-byte regardless of which backend wrote
  them (:mod:`repro.core.serialize`).
"""

from __future__ import annotations

import math
import os
import platform
import warnings
from array import array
from contextlib import contextmanager
from typing import Iterator

try:  # the optional "fast" extra — never required
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None  # type: ignore[assignment]

try:  # the optional "native" extra — never required either
    from . import native as _native
except ImportError:  # pragma: no cover - a broken facade, not a missing .so
    _native = None  # type: ignore[assignment]

__all__ = [
    "HAS_NATIVE",
    "HAS_NUMPY",
    "NATIVE",
    "NUMPY",
    "PURE",
    "np",
    "active",
    "use_native",
    "use_numpy",
    "force_backend",
    "forced",
    "describe",
    "index_zeros",
    "float_zeros",
    "index_col",
    "float_col",
    "as_index_col",
    "as_float_col",
    "index_col_from_bytes",
    "float_col_from_bytes",
    "ids_from_bytes",
    "col_bytes",
    "col_sum",
    "np_view_i64",
    "np_view_f64",
    "np_view",
]

HAS_NUMPY = np is not None
HAS_NATIVE = _native is not None and _native.available()

#: Canonical backend names, as recorded in BENCH_*.json metadata.
NATIVE = "native"
NUMPY = "numpy"
PURE = "pure-python"


def _normalise(name: str) -> str:
    key = str(name).strip().lower()
    if key in ("native", "c"):
        return NATIVE
    if key in ("numpy", "np", "fast"):
        return NUMPY
    if key in ("pure", "pure-python", "python", "pure_python"):
        return PURE
    raise ValueError(
        f"unknown backend {name!r}; choose 'native', 'numpy' or 'pure-python'"
    )


def _initial() -> str:
    env = os.environ.get("REPRO_BACKEND", "").strip()
    if env:
        choice = _normalise(env)
        if choice == NUMPY and not HAS_NUMPY:
            raise ImportError(
                "REPRO_BACKEND=numpy but numpy is not importable; "
                "install the 'fast' extra (pip install repro-roadnet[fast])"
            )
        if choice == NATIVE and not HAS_NATIVE:
            # Unlike the numpy override this degrades instead of raising:
            # "native" is a *tier* request, and the tier ladder has two
            # bit-identical rungs below it.  One warning, then the same
            # auto-selection a bare import performs.
            fallback = NUMPY if HAS_NUMPY else PURE
            warnings.warn(
                "REPRO_BACKEND=native but the repro.native._hubjoin "
                "extension is not importable (not built, or disabled via "
                f"REPRO_NATIVE=0); degrading to the {fallback} tier — "
                "answers are bit-identical, only slower.  Build it with "
                "`python setup.py build_ext --inplace` or "
                "`pip install repro-roadnet[native]`.",
                RuntimeWarning,
                stacklevel=3,
            )
            return fallback
        return choice
    if HAS_NATIVE:
        return NATIVE
    return NUMPY if HAS_NUMPY else PURE


_ACTIVE = _initial()


def active() -> str:
    """Name of the active backend: ``"numpy"`` or ``"pure-python"``."""
    return _ACTIVE


def use_numpy() -> bool:
    """True when the numpy *container* layer is the live code path.

    The native tier stacks on numpy when the fast extra is installed —
    everything outside the three HL hot kernels (CSR packing, batch
    kernels of other engines, bundle I/O) keeps vectorising — so this
    answers "are columns numpy arrays", not "is numpy the top tier".
    """
    return _ACTIVE == NUMPY or (_ACTIVE == NATIVE and HAS_NUMPY)


def use_native() -> bool:
    """True when the native hub-join kernels are the live HL hot path."""
    return _ACTIVE == NATIVE


def force_backend(name: str) -> str:
    """Switch the active backend; returns the previous one.

    Meant for tests and A/B benchmarks.  Objects built under the old
    backend keep their storage type and stay fully queryable — dispatch
    happens per call, not per object.
    """
    global _ACTIVE
    choice = _normalise(name)
    if choice == NUMPY and not HAS_NUMPY:
        raise RuntimeError("cannot force the numpy backend: numpy is not importable")
    if choice == NATIVE and not HAS_NATIVE:
        raise RuntimeError(
            "cannot force the native tier: the repro.native._hubjoin "
            "extension is not importable"
        )
    previous = _ACTIVE
    _ACTIVE = choice
    return previous


@contextmanager
def forced(name: str) -> Iterator[str]:
    """Context manager running a block under a specific backend."""
    previous = force_backend(name)
    try:
        yield _ACTIVE
    finally:
        force_backend(previous)


def describe() -> dict:
    """Environment metadata for BENCH_*.json records.

    Identifies the tier (with the numpy version when the numpy container
    layer is live and the native kernel version/hash when the C tier
    is), the CPython version and the platform, so perf trajectories
    recorded across PRs stay interpretable.
    """
    if use_numpy():
        containers = f"numpy {np.__version__}"  # type: ignore[union-attr]
    else:
        containers = PURE
    if use_native():
        label = f"native (kernels v{_native.version()}, {containers})"
    else:
        label = containers
    return {
        "backend": label,
        "tier": _ACTIVE,
        "numpy_available": HAS_NUMPY,
        "native_available": HAS_NATIVE,
        "native_version": _native.version() if HAS_NATIVE else None,
        "native_hash": _native.extension_hash() if HAS_NATIVE else None,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }


# ----------------------------------------------------------------------
# Column constructors (int64 / float64 flat columns of the active backend)
# ----------------------------------------------------------------------
def index_zeros(n: int):
    """A zero-filled int64 column of length ``n``."""
    if use_numpy():
        return np.zeros(n, dtype=np.int64)
    return array("q", bytes(8 * n))


def float_zeros(n: int):
    """A zero-filled float64 column of length ``n``."""
    if use_numpy():
        return np.zeros(n, dtype=np.float64)
    return array("d", bytes(8 * n))


def index_col(values=()):
    """An int64 column holding ``values`` (any iterable of ints)."""
    if use_numpy():
        return np.asarray(list(values), dtype=np.int64)
    return array("q", values)


def float_col(values=()):
    """A float64 column holding ``values`` (any iterable of floats)."""
    if use_numpy():
        return np.asarray(list(values), dtype=np.float64)
    return array("d", values)


def as_index_col(col):
    """Normalise an existing int64 column to the active backend.

    No-op (no copy) when the container already matches; otherwise one
    C-speed memcpy through the buffer protocol.
    """
    if use_numpy():
        if isinstance(col, np.ndarray) and col.dtype == np.int64:
            return col
        if isinstance(col, array):
            return np.frombuffer(col, dtype=np.int64).copy() if len(col) else np.zeros(0, np.int64)
        return np.asarray(col, dtype=np.int64)
    if isinstance(col, array) and col.typecode == "q":
        return col
    out = array("q")
    out.frombytes(col_bytes(col) if _has_buffer(col) else array("q", col).tobytes())
    return out


def as_float_col(col):
    """Normalise an existing float64 column to the active backend."""
    if use_numpy():
        if isinstance(col, np.ndarray) and col.dtype == np.float64:
            return col
        if isinstance(col, array):
            return np.frombuffer(col, dtype=np.float64).copy() if len(col) else np.zeros(0, np.float64)
        return np.asarray(col, dtype=np.float64)
    if isinstance(col, array) and col.typecode == "d":
        return col
    out = array("d")
    out.frombytes(col_bytes(col) if _has_buffer(col) else array("d", col).tobytes())
    return out


def _has_buffer(col) -> bool:
    return isinstance(col, array) or (HAS_NUMPY and isinstance(col, np.ndarray))


# ----------------------------------------------------------------------
# Bytes <-> columns (the serialize fast path; format is backend-invariant)
# ----------------------------------------------------------------------
def col_bytes(col) -> bytes:
    """The column's raw little-endian bytes (both containers agree)."""
    return col.tobytes()


def index_col_from_bytes(buf):
    """Rebuild an int64 column of the active backend from raw bytes.

    Accepts any bytes-like object (``bytes``, ``memoryview``, mmap
    windows); under numpy the result is a zero-copy ``frombuffer`` view
    over the buffer (read-only when the buffer is).  The stdlib path
    must go through ``frombytes`` — the ``array(typecode, buf)``
    constructor treats a ``memoryview`` as an iterable of byte values
    and silently builds garbage.
    """
    if use_numpy():
        return np.frombuffer(buf, dtype=np.int64)
    out = array("q")
    out.frombytes(buf)
    return out


def float_col_from_bytes(buf):
    """Rebuild a float64 column of the active backend from raw bytes."""
    if use_numpy():
        return np.frombuffer(buf, dtype=np.float64)
    out = array("d")
    out.frombytes(buf)
    return out


def ids_from_bytes(buf, width: int):
    """Node-id list from a little-endian int32/int64 column's raw bytes.

    The worker tier's REQCOL request blocks carry node ids at HLIDX2's
    width discipline (``width`` is 4 or 8); this decodes one column into
    **plain Python ints** on both backends (``tolist`` converts numpy
    scalars), so reconstructed requests hash/group exactly like the
    originals.  The stdlib path goes through ``frombytes`` for the same
    memoryview-safety reason as :func:`index_col_from_bytes`.
    """
    if use_numpy():
        return np.frombuffer(buf, dtype=np.int32 if width == 4 else np.int64).tolist()
    out = array("i" if width == 4 else "q")
    out.frombytes(buf)
    return out.tolist()


# ----------------------------------------------------------------------
# Small backend-agnostic reductions / views
# ----------------------------------------------------------------------
def col_sum(col) -> float:
    """Sum a float column, identically on both backends.

    ``ndarray.sum`` uses pairwise summation while builtin ``sum`` adds
    left to right — last-ulp divergence that would break the
    "backend never changes answers" contract.  ``math.fsum`` over one
    C-converted list is exactly rounded, so both containers produce the
    same float (and a more accurate one than either naive order).
    """
    return math.fsum(col.tolist())


def np_view_i64(col):
    """Zero-copy numpy int64 view over a column of either container.

    Only callable when numpy is importable (kernels check
    :func:`use_numpy` before reaching for views).
    """
    if isinstance(col, np.ndarray):
        return col
    return np.frombuffer(col, dtype=np.int64)


def np_view_f64(col):
    """Zero-copy numpy float64 view over a column of either container."""
    if isinstance(col, np.ndarray):
        return col
    return np.frombuffer(col, dtype=np.float64)


#: Buffer format / array typecode -> numpy dtype, for :func:`np_view`.
#: Covers the column widths the repo actually stores: int64/float64 flat
#: columns plus the int32 compact (HL2) label columns.
_VIEW_DTYPES = {"q": "int64", "l": "int64", "d": "float64", "i": "int32"}


def np_view(col):
    """Zero-copy numpy view over a column, dtype taken from the column.

    The width-generic sibling of :func:`np_view_i64` / :func:`np_view_f64`:
    stdlib arrays map through their typecode, memoryviews through their
    format, ndarrays pass through untouched — so the batched kernels can
    vectorise over flat (int64/float64) and compact (int32) label
    columns alike without the caller tracking widths.  Only callable
    when numpy is importable.
    """
    if isinstance(col, np.ndarray):
        return col
    code = col.typecode if isinstance(col, array) else memoryview(col).format
    dtype = _VIEW_DTYPES.get(code)
    if dtype is None:
        raise TypeError(f"no numpy view mapping for column format {code!r}")
    view = np.frombuffer(col, dtype=dtype)
    if code == "l" and view.itemsize != memoryview(col).itemsize:
        raise TypeError("platform 'l' width differs from int64")  # pragma: no cover
    return view
