"""repro.native — the optional C kernel tier for the HL hot path.

This package is the **only** place in the repo allowed to touch compiled
code (the ``native-boundary-discipline`` analysis rule enforces it): it
imports the ``_hubjoin`` extension module when a build produced one and
exposes the three hub-join kernels behind plain-Python wrappers.  Every
caller goes through :func:`available` / the wrappers, never the
extension module itself, so a checkout without a compiler (or a wheel
built with the pure-build escape hatch) degrades to the numpy/pure
tiers without any import-time failure.

The kernels operate directly on the existing label columns through the
buffer protocol — flat ``array('q')``/``array('d')`` columns, compact
int32 HL2 columns, and read-only memoryview casts over loaded bundles
all work unchanged, so compact bundles never widen.  Results come back
as plain Python floats/lists; answers are bit-identical to the numpy
and pure tiers (``tests/test_backend_parity.py``).

``REPRO_NATIVE=0`` (or ``off`` / ``disable``) skips the extension
import entirely — the forced-import-failure tests and the compiler-less
CI leg use it to pin the degradation path on boxes where the module
*is* importable.
"""

from __future__ import annotations

import hashlib
import os
from typing import List, Optional, Sequence

__all__ = [
    "available",
    "version",
    "extension_path",
    "extension_hash",
    "distance",
    "one_to_many",
    "distance_table",
]

_DISABLED = os.environ.get("REPRO_NATIVE", "").strip().lower() in (
    "0",
    "off",
    "disable",
    "disabled",
)

if _DISABLED:
    _hubjoin = None
else:
    try:
        from . import _hubjoin  # type: ignore[attr-defined]
    except ImportError:  # no compiled extension: the escape-hatch path
        _hubjoin = None


def available() -> bool:
    """True when the compiled ``_hubjoin`` extension is importable."""
    return _hubjoin is not None


def version() -> Optional[str]:
    """The extension's kernel-format version string (``None`` if absent)."""
    return _hubjoin.VERSION if _hubjoin is not None else None


def extension_path() -> Optional[str]:
    """Filesystem path of the compiled module (``None`` if absent)."""
    return getattr(_hubjoin, "__file__", None) if _hubjoin is not None else None


_ext_hash: Optional[str] = None


def extension_hash() -> Optional[str]:
    """Short sha256 of the compiled module's bytes, for BENCH records.

    Lets a recorded benchmark distinguish *which* build of the extension
    produced its numbers (``None`` when the extension is absent).
    """
    global _ext_hash
    if _hubjoin is None:
        return None
    if _ext_hash is None:
        path = extension_path()
        try:
            with open(path, "rb") as fh:
                _ext_hash = hashlib.sha256(fh.read()).hexdigest()[:12]
        except OSError:  # pragma: no cover - unreadable .so is exotic
            _ext_hash = "unreadable"
    return _ext_hash


# ----------------------------------------------------------------------
# Kernel wrappers — the boundary the rest of the repo calls through.
# Each returns plain Python objects (the extension already builds
# CPython floats/lists); callers still coerce at their own return
# points, per the native-boundary-discipline rule.
# ----------------------------------------------------------------------
def distance(fhead, fhub, fdist, bhead, bhub, bdist, source: int, target: int) -> float:
    """Two-pointer merge-join over one (source, target) label pair."""
    return _hubjoin.distance(fhead, fhub, fdist, bhead, bhub, bdist, source, target)


def one_to_many(
    fhead, fhub, fdist, bhead, bhub, bdist, n: int, source: int, targets: Sequence[int]
) -> List[float]:
    """Dense hub-indexed gather over the targets' backward columns."""
    return _hubjoin.one_to_many(
        fhead, fhub, fdist, bhead, bhub, bdist, n, source, targets
    )


def distance_table(
    fhead,
    fhub,
    fdist,
    bhead,
    bhub,
    bdist,
    n: int,
    sources: Sequence[int],
    targets: Sequence[int],
) -> List[List[float]]:
    """Hub co-occurrence join + scatter-min into the full table."""
    return _hubjoin.distance_table(
        fhead, fhub, fdist, bhead, bhub, bdist, n, sources, targets
    )
