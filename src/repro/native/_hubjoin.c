/* _hubjoin: native hub-join kernels for the HL hot path.
 *
 * The three hub-label query kernels as tight C loops over the existing
 * flat label columns, reached through the buffer protocol — the module
 * never imports numpy and never copies a column.  It accepts every
 * storage the repo actually uses for label columns:
 *
 *   flat domain     stdlib array('q') heads/hubs/parents, array('d') dists
 *   compact domain  int32 columns ('i'), dists int32 ('i4' sections) or
 *                   float64 ('dd'/'f8' sections)
 *   loaded bundles  read-only memoryview casts over bytes/mmap windows
 *
 * Bit-identity contract (the repo's standing one): every answer equals
 * the pure-python scan and the numpy kernel bit for bit.  The arithmetic
 * here is the same the other tiers perform — each distance converts to
 * IEEE float64 exactly (the HL2 exactness guard keeps int32 dists in
 * [0, 2^31), so a two-term sum stays below 2^53 and double addition is
 * exact), candidate sums are single `a + b` double additions, and min
 * over candidates is order-independent for the NaN-free, non-negative
 * values labels hold.  `tests/test_backend_parity.py` pins the claim
 * under hypothesis across all three tiers and both column domains.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <math.h>
#include <stdint.h>
#include <string.h>

#define HUBJOIN_VERSION "1"

/* One label column: a borrowed C-contiguous buffer plus its element
 * shape.  `width` is the itemsize (4 or 8); `isfloat` marks float64
 * distance columns (int columns read through sign-extending loads). */
typedef struct {
    Py_buffer view;
    const void *p;
    Py_ssize_t len;   /* elements, not bytes */
    int width;        /* 4 or 8 */
    int isfloat;      /* 1: float64, 0: int32/int64 */
} col_t;

static int
col_acquire(PyObject *obj, col_t *c, const char *name)
{
    if (PyObject_GetBuffer(obj, &c->view, PyBUF_FORMAT | PyBUF_ND) < 0) {
        return -1;
    }
    if (c->view.ndim > 1 || c->view.strides != NULL) {
        /* PyBUF_ND guarantees C-contiguity; ndim 0/1 both fine. */
        PyBuffer_Release(&c->view);
        PyErr_Format(PyExc_TypeError, "%s: expected a flat column", name);
        return -1;
    }
    const char *fmt = c->view.format ? c->view.format : "B";
    if (*fmt == '@' || *fmt == '<' || *fmt == '=') {
        fmt++; /* little-endian / native prefixes; the repo is LE-only */
    }
    c->p = c->view.buf;
    c->width = (int)c->view.itemsize;
    c->isfloat = 0;
    switch (*fmt) {
    case 'd':
        if (c->width != 8) goto bad;
        c->isfloat = 1;
        break;
    case 'i': case 'l': case 'q': case 'n':
        if (c->width != 4 && c->width != 8) goto bad;
        break;
    default:
        goto bad;
    }
    c->len = c->view.len / c->view.itemsize;
    return 0;
bad:
    PyBuffer_Release(&c->view);
    PyErr_Format(PyExc_TypeError,
                 "%s: unsupported column format '%s' (itemsize %zd); "
                 "expected int32/int64/float64",
                 name, c->view.format ? c->view.format : "?",
                 c->view.itemsize);
    return -1;
}

static inline int64_t
col_i(const col_t *c, Py_ssize_t k)
{
    if (c->width == 4) {
        return (int64_t)((const int32_t *)c->p)[k];
    }
    return ((const int64_t *)c->p)[k];
}

static inline double
col_d(const col_t *c, Py_ssize_t k)
{
    if (c->isfloat) {
        return ((const double *)c->p)[k];
    }
    if (c->width == 4) {
        return (double)((const int32_t *)c->p)[k];
    }
    return (double)((const int64_t *)c->p)[k];
}

/* The six query-time columns every kernel takes, in hl.py's order. */
typedef struct {
    col_t fhead, fhub, fdist, bhead, bhub, bdist;
    int acquired;
} labels_t;

static void
labels_release(labels_t *L)
{
    if (!L->acquired) return;
    PyBuffer_Release(&L->fhead.view);
    PyBuffer_Release(&L->fhub.view);
    PyBuffer_Release(&L->fdist.view);
    PyBuffer_Release(&L->bhead.view);
    PyBuffer_Release(&L->bhub.view);
    PyBuffer_Release(&L->bdist.view);
    L->acquired = 0;
}

static int
labels_acquire(PyObject *const objs[6], labels_t *L)
{
    col_t *cols[6] = {&L->fhead, &L->fhub, &L->fdist,
                      &L->bhead, &L->bhub, &L->bdist};
    static const char *names[6] = {"fwd_head", "fwd_hub", "fwd_dist",
                                   "bwd_head", "bwd_hub", "bwd_dist"};
    L->acquired = 0;
    for (int i = 0; i < 6; i++) {
        if (col_acquire(objs[i], cols[i], names[i]) < 0) {
            for (int j = 0; j < i; j++) {
                PyBuffer_Release(&cols[j]->view);
            }
            return -1;
        }
    }
    L->acquired = 1;
    if (L->fhub.len != L->fdist.len || L->bhub.len != L->bdist.len) {
        labels_release(L);
        PyErr_SetString(PyExc_ValueError,
                        "hub and dist columns differ in length");
        return -1;
    }
    return 0;
}

/* Validated label slice [lo, hi) for node u out of a head column. */
static int
node_slice(const col_t *head, const col_t *hub, int64_t u, const char *what,
           Py_ssize_t *lo, Py_ssize_t *hi)
{
    if (u < 0 || u + 1 >= head->len) {
        PyErr_Format(PyExc_IndexError, "%s %lld out of range",
                     what, (long long)u);
        return -1;
    }
    int64_t a = col_i(head, u), b = col_i(head, u + 1);
    if (a < 0 || b < a || b > hub->len) {
        PyErr_Format(PyExc_ValueError,
                     "corrupt head column at %s %lld", what, (long long)u);
        return -1;
    }
    *lo = (Py_ssize_t)a;
    *hi = (Py_ssize_t)b;
    return 0;
}

/* ------------------------------------------------------------------ */
/* distance(fhead, fhub, fdist, bhead, bhub, bdist, source, target)   */
/* ------------------------------------------------------------------ */
static PyObject *
hubjoin_distance(PyObject *self, PyObject *args)
{
    PyObject *objs[6];
    long long source, target;
    if (!PyArg_ParseTuple(args, "OOOOOOLL",
                          &objs[0], &objs[1], &objs[2],
                          &objs[3], &objs[4], &objs[5],
                          &source, &target)) {
        return NULL;
    }
    labels_t L;
    if (labels_acquire(objs, &L) < 0) return NULL;
    Py_ssize_t i, iend, j, jend;
    if (node_slice(&L.fhead, &L.fhub, source, "source", &i, &iend) < 0 ||
        node_slice(&L.bhead, &L.bhub, target, "target", &j, &jend) < 0) {
        labels_release(&L);
        return NULL;
    }
    double best = HUGE_VAL;
    while (i < iend && j < jend) {
        int64_t a = col_i(&L.fhub, i);
        int64_t b = col_i(&L.bhub, j);
        if (a == b) {
            double d = col_d(&L.fdist, i) + col_d(&L.bdist, j);
            if (d < best) best = d;
            i++;
            j++;
        } else if (a < b) {
            i++;
        } else {
            j++;
        }
    }
    labels_release(&L);
    return PyFloat_FromDouble(best);
}

/* ------------------------------------------------------------------ */
/* one_to_many(fhead, ..., bdist, n, source, targets) -> [float, ...] */
/* ------------------------------------------------------------------ */
static PyObject *
hubjoin_one_to_many(PyObject *self, PyObject *args)
{
    PyObject *objs[6], *targets_obj;
    long long n, source;
    if (!PyArg_ParseTuple(args, "OOOOOOLLO",
                          &objs[0], &objs[1], &objs[2],
                          &objs[3], &objs[4], &objs[5],
                          &n, &source, &targets_obj)) {
        return NULL;
    }
    labels_t L;
    if (labels_acquire(objs, &L) < 0) return NULL;
    PyObject *seq = PySequence_Fast(targets_obj, "targets must be a sequence");
    if (seq == NULL) {
        labels_release(&L);
        return NULL;
    }
    Py_ssize_t ntargets = PySequence_Fast_GET_SIZE(seq);
    int64_t *tgt = PyMem_Malloc((size_t)(ntargets ? ntargets : 1) *
                                sizeof(int64_t));
    double *out = PyMem_Malloc((size_t)(ntargets ? ntargets : 1) *
                               sizeof(double));
    double *dense = PyMem_Malloc((size_t)(n > 0 ? n : 1) * sizeof(double));
    if (tgt == NULL || out == NULL || dense == NULL) {
        PyErr_NoMemory();
        goto fail;
    }
    for (Py_ssize_t k = 0; k < ntargets; k++) {
        long long t = PyLong_AsLongLong(PySequence_Fast_GET_ITEM(seq, k));
        if (t == -1 && PyErr_Occurred()) goto fail;
        if (t < 0 || t >= n) {
            PyErr_Format(PyExc_IndexError, "target %lld out of range",
                         (long long)t);
            goto fail;
        }
        tgt[k] = t;
    }
    Py_ssize_t fs, fe;
    if (node_slice(&L.fhead, &L.fhub, source, "source", &fs, &fe) < 0) {
        goto fail;
    }
    if (L.bhead.len != n + 1) {
        PyErr_SetString(PyExc_ValueError,
                        "bwd_head length does not match node count");
        goto fail;
    }
    Py_BEGIN_ALLOW_THREADS
    for (Py_ssize_t u = 0; u < n; u++) {
        dense[u] = HUGE_VAL;
    }
    for (Py_ssize_t k = fs; k < fe; k++) {
        int64_t h = col_i(&L.fhub, k);
        if (h >= 0 && h < n) {
            dense[h] = col_d(&L.fdist, k);
        }
    }
    for (Py_ssize_t k = 0; k < ntargets; k++) {
        int64_t t = tgt[k];
        if (t == source) {
            out[k] = 0.0;
            continue;
        }
        Py_ssize_t lo = (Py_ssize_t)col_i(&L.bhead, t);
        Py_ssize_t hi = (Py_ssize_t)col_i(&L.bhead, t + 1);
        if (lo < 0) lo = 0;
        if (hi > L.bhub.len) hi = L.bhub.len;
        double best = HUGE_VAL;
        for (Py_ssize_t j = lo; j < hi; j++) {
            double d = dense[col_i(&L.bhub, j)] + col_d(&L.bdist, j);
            if (d < best) best = d;
        }
        out[k] = best;
    }
    Py_END_ALLOW_THREADS
    {
        PyObject *result = PyList_New(ntargets);
        if (result == NULL) goto fail;
        for (Py_ssize_t k = 0; k < ntargets; k++) {
            PyObject *v = PyFloat_FromDouble(out[k]);
            if (v == NULL) {
                Py_DECREF(result);
                goto fail;
            }
            PyList_SET_ITEM(result, k, v);
        }
        PyMem_Free(tgt);
        PyMem_Free(out);
        PyMem_Free(dense);
        Py_DECREF(seq);
        labels_release(&L);
        return result;
    }
fail:
    PyMem_Free(tgt);
    PyMem_Free(out);
    PyMem_Free(dense);
    Py_DECREF(seq);
    labels_release(&L);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* distance_table(fhead, ..., bdist, n, sources, targets)             */
/*   -> [[float, ...], ...]                                           */
/*                                                                    */
/* Counting-sort the targets' backward entries by hub (the same       */
/* co-occurrence inversion the numpy kernel memoizes), then stream    */
/* each source's forward label through the per-hub runs with a        */
/* scatter-min into the row — exactly the pairs the other tiers       */
/* visit, never the dense |entries| x |columns| product.              */
/* ------------------------------------------------------------------ */
static PyObject *
hubjoin_distance_table(PyObject *self, PyObject *args)
{
    PyObject *objs[6], *sources_obj, *targets_obj;
    long long n;
    if (!PyArg_ParseTuple(args, "OOOOOOLOO",
                          &objs[0], &objs[1], &objs[2],
                          &objs[3], &objs[4], &objs[5],
                          &n, &sources_obj, &targets_obj)) {
        return NULL;
    }
    labels_t L;
    if (labels_acquire(objs, &L) < 0) return NULL;

    PyObject *sseq = NULL, *tseq = NULL, *result = NULL;
    int64_t *src = NULL, *tgt = NULL, *gstart = NULL;
    int64_t *tcol = NULL;
    double *tdist = NULL, *flat = NULL;

    sseq = PySequence_Fast(sources_obj, "sources must be a sequence");
    if (sseq == NULL) goto done;
    tseq = PySequence_Fast(targets_obj, "targets must be a sequence");
    if (tseq == NULL) goto done;
    Py_ssize_t nsrc = PySequence_Fast_GET_SIZE(sseq);
    Py_ssize_t ntgt = PySequence_Fast_GET_SIZE(tseq);

    src = PyMem_Malloc((size_t)(nsrc ? nsrc : 1) * sizeof(int64_t));
    tgt = PyMem_Malloc((size_t)(ntgt ? ntgt : 1) * sizeof(int64_t));
    if (src == NULL || tgt == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (Py_ssize_t k = 0; k < nsrc; k++) {
        long long u = PyLong_AsLongLong(PySequence_Fast_GET_ITEM(sseq, k));
        if (u == -1 && PyErr_Occurred()) goto done;
        if (u < 0 || u >= n) {
            PyErr_Format(PyExc_IndexError, "source %lld out of range",
                         (long long)u);
            goto done;
        }
        src[k] = u;
    }
    for (Py_ssize_t k = 0; k < ntgt; k++) {
        long long t = PyLong_AsLongLong(PySequence_Fast_GET_ITEM(tseq, k));
        if (t == -1 && PyErr_Occurred()) goto done;
        if (t < 0 || t >= n) {
            PyErr_Format(PyExc_IndexError, "target %lld out of range",
                         (long long)t);
            goto done;
        }
        tgt[k] = t;
    }
    if (L.fhead.len != n + 1 || L.bhead.len != n + 1) {
        PyErr_SetString(PyExc_ValueError,
                        "head column length does not match node count");
        goto done;
    }

    /* Total backward entries over the target columns. */
    Py_ssize_t ttotal = 0;
    for (Py_ssize_t k = 0; k < ntgt; k++) {
        ttotal += (Py_ssize_t)(col_i(&L.bhead, tgt[k] + 1) -
                               col_i(&L.bhead, tgt[k]));
    }
    /* gstart: per-hub run start (n + 1 slots); tcol/tdist: entries
     * counting-sorted by hub.  All scratch is transient per call. */
    gstart = PyMem_Malloc((size_t)(n + 1) * sizeof(int64_t));
    tcol = PyMem_Malloc((size_t)(ttotal ? ttotal : 1) * sizeof(int64_t));
    tdist = PyMem_Malloc((size_t)(ttotal ? ttotal : 1) * sizeof(double));
    flat = PyMem_Malloc((size_t)(nsrc * ntgt ? nsrc * ntgt : 1) *
                        sizeof(double));
    if (gstart == NULL || tcol == NULL || tdist == NULL || flat == NULL) {
        PyErr_NoMemory();
        goto done;
    }

    Py_BEGIN_ALLOW_THREADS
    memset(gstart, 0, (size_t)(n + 1) * sizeof(int64_t));
    for (Py_ssize_t k = 0; k < ntgt; k++) {
        Py_ssize_t lo = (Py_ssize_t)col_i(&L.bhead, tgt[k]);
        Py_ssize_t hi = (Py_ssize_t)col_i(&L.bhead, tgt[k] + 1);
        for (Py_ssize_t j = lo; j < hi; j++) {
            gstart[col_i(&L.bhub, j) + 1]++;
        }
    }
    for (Py_ssize_t h = 0; h < n; h++) {
        gstart[h + 1] += gstart[h];
    }
    {
        /* Fill runs; gstart temporarily advances to run ends, then is
         * rewound by one whole pass (gstart[h] ends at start of h+1,
         * so shift down). */
        for (Py_ssize_t k = 0; k < ntgt; k++) {
            Py_ssize_t lo = (Py_ssize_t)col_i(&L.bhead, tgt[k]);
            Py_ssize_t hi = (Py_ssize_t)col_i(&L.bhead, tgt[k] + 1);
            for (Py_ssize_t j = lo; j < hi; j++) {
                int64_t h = col_i(&L.bhub, j);
                int64_t at = gstart[h]++;
                tcol[at] = k;
                tdist[at] = col_d(&L.bdist, j);
            }
        }
        for (Py_ssize_t h = n; h > 0; h--) {
            gstart[h] = gstart[h - 1];
        }
        gstart[0] = 0;
    }
    for (Py_ssize_t k = 0; k < nsrc * ntgt; k++) {
        flat[k] = HUGE_VAL;
    }
    for (Py_ssize_t r = 0; r < nsrc; r++) {
        double *row = flat + r * ntgt;
        Py_ssize_t lo = (Py_ssize_t)col_i(&L.fhead, src[r]);
        Py_ssize_t hi = (Py_ssize_t)col_i(&L.fhead, src[r] + 1);
        for (Py_ssize_t i = lo; i < hi; i++) {
            int64_t h = col_i(&L.fhub, i);
            double d = col_d(&L.fdist, i);
            Py_ssize_t ge = (Py_ssize_t)gstart[h + 1];
            for (Py_ssize_t g = (Py_ssize_t)gstart[h]; g < ge; g++) {
                double cand = d + tdist[g];
                if (cand < row[tcol[g]]) row[tcol[g]] = cand;
            }
        }
        for (Py_ssize_t c = 0; c < ntgt; c++) {
            if (tgt[c] == src[r]) row[c] = 0.0;
        }
    }
    Py_END_ALLOW_THREADS

    result = PyList_New(nsrc);
    if (result == NULL) goto done;
    for (Py_ssize_t r = 0; r < nsrc; r++) {
        PyObject *row = PyList_New(ntgt);
        if (row == NULL) {
            Py_CLEAR(result);
            goto done;
        }
        for (Py_ssize_t c = 0; c < ntgt; c++) {
            PyObject *v = PyFloat_FromDouble(flat[r * ntgt + c]);
            if (v == NULL) {
                Py_DECREF(row);
                Py_CLEAR(result);
                goto done;
            }
            PyList_SET_ITEM(row, c, v);
        }
        PyList_SET_ITEM(result, r, row);
    }

done:
    PyMem_Free(src);
    PyMem_Free(tgt);
    PyMem_Free(gstart);
    PyMem_Free(tcol);
    PyMem_Free(tdist);
    PyMem_Free(flat);
    Py_XDECREF(sseq);
    Py_XDECREF(tseq);
    labels_release(&L);
    return result;
}

static PyMethodDef hubjoin_methods[] = {
    {"distance", hubjoin_distance, METH_VARARGS,
     "distance(fhead, fhub, fdist, bhead, bhub, bdist, source, target)\n"
     "Two-pointer merge-join of the two sorted label slices."},
    {"one_to_many", hubjoin_one_to_many, METH_VARARGS,
     "one_to_many(fhead, fhub, fdist, bhead, bhub, bdist, n, source, "
     "targets)\nDense hub-indexed gather over the targets' backward "
     "columns."},
    {"distance_table", hubjoin_distance_table, METH_VARARGS,
     "distance_table(fhead, fhub, fdist, bhead, bhub, bdist, n, sources, "
     "targets)\nHub co-occurrence join with a scatter-min into the table."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef hubjoin_module = {
    PyModuleDef_HEAD_INIT,
    "repro.native._hubjoin",
    "Native hub-join kernels over flat/compact HL label columns.",
    -1,
    hubjoin_methods,
};

PyMODINIT_FUNC
PyInit__hubjoin(void)
{
    PyObject *m = PyModule_Create(&hubjoin_module);
    if (m == NULL) return NULL;
    if (PyModule_AddStringConstant(m, "VERSION", HUBJOIN_VERSION) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
