"""repro — Arterial Hierarchy road-network indexing.

A production-quality reproduction of

    Zhu, Ma, Xiao, Luo, Tang, Zhou.
    "Shortest Path and Distance Queries on Road Networks:
     Towards Bridging Theory and Practice." SIGMOD 2013.

Public API highlights
---------------------
* :class:`repro.graph.Graph` / :class:`repro.graph.GraphBuilder` — the road
  network model.
* :class:`repro.core.AHIndex` — the paper's Arterial Hierarchy index.
* :class:`repro.core.FCIndex` — the first-cut index of Section 3.
* :mod:`repro.baselines` — Dijkstra, bidirectional, A*, ALT, CH, SILC.
* :mod:`repro.datasets` — synthetic road networks, the scaled Table-2
  suite, and the Q1..Q10 workload generator.
* :mod:`repro.bench` — harnesses regenerating every table and figure of
  the paper's evaluation.
* :mod:`repro.serve` — the asyncio serving front-end: concurrent
  requests coalesced into batch-planner kernel calls.
"""

from .graph import (
    Graph,
    GraphBuilder,
    Path,
    bidirectional_distance,
    bidirectional_path,
    distance_query,
    read_dimacs,
    shortest_path_query,
    write_dimacs,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "Path",
    "distance_query",
    "shortest_path_query",
    "bidirectional_distance",
    "bidirectional_path",
    "read_dimacs",
    "write_dimacs",
    "__version__",
]
