"""Executable versions of the paper's key lemmas.

The paper proves Lemmas 1-4 under Assumption 1 (bounded arterial
dimension) and Assumption 2 (unique local shortest paths).  This module
turns them into *empirical checkers* that the test suite and the
benchmark harness run against concrete networks and level assignments —
the "bridging theory and practice" of the title, made machine-checkable:

* :func:`check_density_bound` — Lemmas 1/4: every ``(α x α)``-cell region
  of ``R_i`` contains boundedly many nodes of level ``>= i``.
* :func:`check_covering_property` — Lemma 3: for sampled node pairs not
  covered by a common 3x3-cell region of ``R_i``, a shortest path between
  them passes through a node of level ``>= i``.
* :func:`check_sliding_window` — Lemma 7 / Lemma 2's engine: the
  SlidingWindow construction really does return a region whose bisector
  the sub-path crosses with valid endpoints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.graph import Graph
from ..graph.traversal import dijkstra_tree
from ..spatial.grid import NodeGrid
from .sliding_window import sliding_window

__all__ = [
    "DensityReport",
    "check_density_bound",
    "CoveringViolation",
    "check_covering_property",
    "check_sliding_window",
]


@dataclass(frozen=True)
class DensityReport:
    """Per-level density of high-level nodes (Lemma 1 / Lemma 4 check).

    ``max_per_region[i]`` is the largest number of nodes with level >= i
    found in any 4x4-cell region of ``R_i``; Lemma 4 predicts these stay
    bounded by O(λ²) independent of n.
    """

    max_per_region: Dict[int, int]
    mean_per_region: Dict[int, float]

    def bounded_by(self, cap: int) -> bool:
        """True when every level's max density is at most ``cap``."""
        return all(v <= cap for v in self.max_per_region.values())


def check_density_bound(
    node_grid: NodeGrid, levels: Sequence[int]
) -> DensityReport:
    """Measure Lemma 4's node-density statistic for every grid level."""
    pyramid = node_grid.pyramid
    max_per: Dict[int, int] = {}
    mean_per: Dict[int, float] = {}
    for i in pyramid.levels():
        high = [u for u in range(len(levels)) if levels[u] >= i]
        if not high:
            max_per[i] = 0
            mean_per[i] = 0.0
            continue
        buckets: Dict[Tuple[int, int], int] = {}
        for u in high:
            cell = node_grid.cell_of(i, u)
            buckets[cell] = buckets.get(cell, 0) + 1
        # Count per 4x4 region via the cells it covers (sliding windows).
        region_counts: Dict[Tuple[int, int], int] = {}
        cells_per_side = pyramid.cells_per_side(i)
        for (cx, cy), cnt in buckets.items():
            for rx in range(max(cx - 3, 0), min(cx, cells_per_side - 4) + 1):
                for ry in range(max(cy - 3, 0), min(cy, cells_per_side - 4) + 1):
                    key = (rx, ry)
                    region_counts[key] = region_counts.get(key, 0) + cnt
        counts = list(region_counts.values())
        max_per[i] = max(counts) if counts else 0
        mean_per[i] = sum(counts) / len(counts) if counts else 0.0
    return DensityReport(max_per_region=max_per, mean_per_region=mean_per)


@dataclass(frozen=True)
class CoveringViolation:
    """A sampled pair whose shortest path dodged every high-level node."""

    source: int
    target: int
    level: int
    path: Tuple[int, ...]


def check_covering_property(
    graph: Graph,
    node_grid: NodeGrid,
    levels: Sequence[int],
    samples: int = 200,
    seed: int = 0,
) -> List[CoveringViolation]:
    """Empirically test Lemma 3 on random pairs.

    For each sampled source, walks a full shortest-path tree and checks,
    for every target and every grid level ``i`` separating the pair (no
    common 3x3-cell region), that the tree path contains a node of level
    ``>= i``.  Returns all violations found (ideally none).
    """
    rng = random.Random(seed)
    violations: List[CoveringViolation] = []
    n = graph.n
    pyramid = node_grid.pyramid
    sources = [rng.randrange(n) for _ in range(max(1, samples // 50))]
    per_source = max(1, samples // len(sources))
    for s in sources:
        dist, parent = dijkstra_tree(graph, s)
        targets = rng.sample(sorted(dist), min(per_source, len(dist)))
        for t in targets:
            if t == s:
                continue
            path: List[int] = [t]
            x = t
            while x != s:
                x = parent[x]
                path.append(x)
            path.reverse()
            max_level_on_path = max(levels[u] for u in path)
            for i in range(pyramid.h, 0, -1):
                if node_grid.chebyshev_cells(i, s, t) <= 2:
                    continue
                # Endpoints count: Lemma 3 says "go through a node at
                # level >= i", which may be an interior or an endpoint.
                if max_level_on_path < i:
                    violations.append(
                        CoveringViolation(s, t, i, tuple(path))
                    )
                break  # coarser levels are implied by the break structure
    return violations


def check_sliding_window(
    node_grid: NodeGrid, path: Sequence[int], level: int
) -> Optional[str]:
    """Validate the SlidingWindow output for one path and level.

    Returns ``None`` when the construction is consistent (or vacuous), or
    a human-readable description of the violated clause.
    """
    result = sliding_window(node_grid, path, level)
    cells = [node_grid.cell_of(level, u) for u in path]
    min_x = min(c[0] for c in cells)
    max_x = max(c[0] for c in cells)
    min_y = min(c[1] for c in cells)
    max_y = max(c[1] for c in cells)
    separated = max_x - min_x >= 3 or max_y - min_y >= 3
    if result is None:
        if separated:
            return "no region found although the path spans >= 4 cells"
        return None
    a, b = result.subpath
    if not 0 <= a < b < len(path):
        return f"bad sub-path indices {result.subpath}"
    region = result.region
    sub_cells = cells[a : b + 1]
    if result.axis == "vertical":
        offsets = [c[0] - region.rx for c in sub_cells]
    else:
        offsets = [c[1] - region.ry for c in sub_cells]
    first, last = offsets[0], offsets[-1]
    if (first <= 1) == (last <= 1):
        return f"endpoints on the same bisector side (offsets {first}, {last})"
    if first in (1, 2) or last in (1, 2):
        return f"endpoint adjacent to the bisector (offsets {first}, {last})"
    # All but at most the final node must be covered by the region.
    for c in sub_cells[:-1]:
        if not region.contains_cell(c):
            return f"interior cell {c} escapes region {region}"
    return None
