"""Node-level assignment: exact (FC, Section 3) and incremental (AH, §4.2).

Both FC and AH classify every node into levels ``0..h`` such that the
*covering property* holds: any shortest path that two nodes far apart in
grid ``R_i`` (no common 3x3-cell region) must traverse contains a node of
level ``>= i`` (Lemma 3).  That property is what licenses the proximity
constraint and the elevating-edge jumps at query time.

* :func:`exact_levels` computes arterial edges of every region of every
  grid directly on the input graph — conceptually simple but quadratic in
  region size, exactly the FC preprocessing bottleneck the paper
  describes; usable for small networks and for cross-validating the
  incremental algorithm.

* :func:`assign_levels` is AH's scalable variant: it sweeps the grids
  from fine to coarse, marking *cores* (endpoints of pseudo-arterial
  edges) per level, then reduces the working graph to the cores plus the
  border nodes of the next grid, bridging removed nodes with shortcuts
  tagged by their generating region (the paper's *coverage condition*
  keeps those shortcuts from leaking length information across regions).

Both variants mark tie-inclusively (every minimum-length spanning path
counts), which makes the covering property independent of the weight
perturbation of Appendix A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..graph.graph import Graph
from ..spatial.grid import GridPyramid, NodeGrid
from ..spatial.regions import Region, nonempty_regions, regions_covering_cell
from .arterial import (
    _local_dijkstra,
    _solve_region_axis,
    build_region_problems,
    region_arterial_edges,
)

__all__ = ["LevelAssignment", "assign_levels", "exact_levels"]

INF = float("inf")

# A generating region, encoded as its bounding box in finest-grid cell
# units: (x0, y0, x1, y1).  Boxes make the coverage condition a four-int
# comparison instead of a dataclass method call in the hottest loop.
_Box = Tuple[int, int, int, int]
# Overlay edge payload: (weight, generating boxes or None for originals).
_Gens = Optional[Tuple[_Box, ...]]


def _region_box(region: Region) -> _Box:
    """Region extent in finest-grid cell units."""
    s = region.level - 1
    return (
        region.rx << s,
        region.ry << s,
        (region.rx + 4) << s,
        (region.ry + 4) << s,
    )


@dataclass
class LevelAssignment:
    """Result of a level-assignment run.

    Attributes
    ----------
    levels:
        ``levels[u]`` is the node's level in ``0..h``.
    h:
        Number of grids in the pyramid.
    pyramid, node_grid:
        The spatial structures the levels are defined against (queries
        reuse them for the proximity constraint).
    pseudo_arterial:
        ``pseudo_arterial[i]`` is the paper's ``S_i`` — the (pseudo-)
        arterial edges whose endpoints were promoted to level ``i``; the
        §4.4 vertex-cover ordering consumes these.
    region_counts:
        When collected: per level, the list of per-region (pseudo-)
        arterial edge counts — the reduced-graph analogue of Figure 3
        used on networks too large for the exact sweep.
    alive_history:
        Working-graph node counts per iteration (diagnostic for the
        geometric-shrinkage claim of §4.2).
    border_by_level:
        Definition-2 border nodes per grid level (cumulative from the
        coarse end); consumed by the elevating-edge construction.
    """

    levels: List[int]
    h: int
    pyramid: GridPyramid
    node_grid: NodeGrid
    pseudo_arterial: Dict[int, List[Tuple[int, int]]]
    region_counts: Optional[Dict[int, List[int]]] = None
    alive_history: List[int] = field(default_factory=list)
    border_by_level: Dict[int, Set[int]] = field(default_factory=dict)

    def max_level(self) -> int:
        """Highest level actually assigned."""
        return max(self.levels) if self.levels else 0

    def level_sizes(self) -> Dict[int, int]:
        """Histogram: level -> node count."""
        sizes: Dict[int, int] = {}
        for lv in self.levels:
            sizes[lv] = sizes.get(lv, 0) + 1
        return sizes


# ----------------------------------------------------------------------
# Exact variant (FC)
# ----------------------------------------------------------------------
def exact_levels(
    graph: Graph,
    pyramid: Optional[GridPyramid] = None,
    max_region_nodes: int = 20_000,
) -> LevelAssignment:
    """FC's level assignment: exact arterial edges on the full graph.

    Edge level = the coarsest grid where the edge is arterial for some
    region; node level = max level over incident edges (Section 3.1).
    """
    if pyramid is None:
        pyramid = GridPyramid.from_graph(graph)
    node_grid = NodeGrid(graph, pyramid)
    edge_level: Dict[Tuple[int, int], int] = {}
    pseudo: Dict[int, List[Tuple[int, int]]] = {i: [] for i in pyramid.levels()}
    for i in pyramid.levels():
        for region in nonempty_regions(node_grid, i):
            marked = region_arterial_edges(
                graph, node_grid, region, max_region_nodes=max_region_nodes
            )
            for e in marked:
                if edge_level.get(e, 0) < i:
                    edge_level[e] = i
    for e, lv in edge_level.items():
        pseudo[lv].append(e)
    levels = [0] * graph.n
    for (u, v), lv in edge_level.items():
        if levels[u] < lv:
            levels[u] = lv
        if levels[v] < lv:
            levels[v] = lv
    return LevelAssignment(
        levels=levels,
        h=pyramid.h,
        pyramid=pyramid,
        node_grid=node_grid,
        pseudo_arterial=pseudo,
    )


# ----------------------------------------------------------------------
# Incremental variant (AH)
# ----------------------------------------------------------------------
class _Overlay:
    """Dynamic reduced graph: original edges plus box-tagged shortcuts."""

    __slots__ = ("fwd", "bwd")

    def __init__(self, graph: Graph) -> None:
        self.fwd: Dict[int, Dict[int, Tuple[float, _Gens]]] = {
            u: {} for u in graph.nodes()
        }
        self.bwd: Dict[int, Dict[int, Tuple[float, _Gens]]] = {
            u: {} for u in graph.nodes()
        }
        for u, v, w in graph.edges():
            cur = self.fwd[u].get(v)
            if cur is None or w < cur[0]:
                self.fwd[u][v] = (w, None)
                self.bwd[v][u] = (w, None)

    def add_shortcut(self, u: int, v: int, w: float, box: _Box) -> None:
        """Insert/merge a shortcut generated from the region ``box``.

        A strictly cheaper shortcut replaces the stored edge; an
        equal-weight one unions the generating boxes (all are valid
        certificates for the coverage condition); costlier ones are
        dropped.  Original edges (``gens is None``) are usable anywhere,
        so they are never replaced by a tagged copy of equal weight.
        """
        cur = self.fwd[u].get(v)
        if cur is not None:
            cw, cgens = cur
            if w > cw:
                return
            if w == cw:
                if cgens is None or box in cgens:
                    return
                gens = cgens + (box,)
                self.fwd[u][v] = (cw, gens)
                self.bwd[v][u] = (cw, gens)
                return
        payload = (w, (box,))
        self.fwd[u][v] = payload
        self.bwd[v][u] = payload

    def drop_nodes(self, dead: Set[int]) -> None:
        """Remove nodes and their incident edges from the overlay."""
        for u in dead:
            for v in self.fwd[u]:
                if v not in dead:
                    del self.bwd[v][u]
            for v in self.bwd[u]:
                if v not in dead:
                    del self.fwd[v][u]
            del self.fwd[u]
            del self.bwd[u]

    def covered_adjacency(self, rbox: _Box):
        """Adjacency callback honouring the coverage condition for the
        region with box ``rbox`` (see :func:`build_region_problems`)."""
        fwd, bwd = self.fwd, self.bwd
        x0, y0, x1, y1 = rbox

        def adjacency(u: int):
            edges = []
            for v, (w, gens) in fwd[u].items():
                if gens is None or _covered(gens, x0, y0, x1, y1):
                    edges.append((v, w, True))
            for v, (w, gens) in bwd[u].items():
                if gens is None or _covered(gens, x0, y0, x1, y1):
                    edges.append((v, w, False))
            return edges

        return adjacency


def _covered(gens: Tuple[_Box, ...], x0: int, y0: int, x1: int, y1: int) -> bool:
    """True when some generating box lies inside the region box."""
    for gx0, gy0, gx1, gy1 in gens:
        if gx0 >= x0 and gy0 >= y0 and gx1 <= x1 and gy1 <= y1:
            return True
    return False


def _border_nodes(
    graph: Graph, node_grid: NodeGrid, level: int, candidates: Set[int]
) -> Set[int]:
    """Nodes among ``candidates`` that are border nodes of some 4x4 region
    of ``R_level`` (Definition 2).

    A node with an original-graph edge whose endpoints fall in *different*
    cells of ``R_level`` is a border node of some placement: the 16
    placements covering its cell put their strip-boundary lines on every
    nearby grid line, and at least one of them keeps the node outside the
    centre 2x2 block.  Nodes whose every edge stays within their own cell
    can never cross a strip boundary.  This cell-based test is a slight
    superset of Definition 2 near the grid border, which only makes the
    reduction retain marginally more nodes (a conservative, correctness-
    preserving direction).
    """
    border: Set[int] = set()
    cell_of = node_grid.cell_of
    for u in candidates:
        cu = cell_of(level, u)
        found = False
        for v, _w in graph.out[u]:
            if cell_of(level, v) != cu:
                found = True
                break
        if not found:
            for v, _w in graph.inn[u]:
                if cell_of(level, v) != cu:
                    found = True
                    break
        if found:
            border.add(u)
    return border


def _region_inside(
    node_grid: NodeGrid, region: Region, buckets: Dict[Tuple[int, int], List[int]]
) -> List[int]:
    inside: List[int] = []
    for dx in range(4):
        for dy in range(4):
            members = buckets.get((region.rx + dx, region.ry + dy))
            if members:
                inside.extend(members)
    return inside


def _create_region_shortcuts(
    overlay: _Overlay,
    rbox: _Box,
    inside: Sequence[int],
    adj: Dict[int, List[Tuple[int, float]]],
    exit_edges: Sequence[Tuple[int, int, float]],
    enter_edges: Sequence[Tuple[int, int, float]],
    endpoint_set: Set[int],
    interior_ok: Set[int],
) -> None:
    """Add shortcuts for local shortest paths inside ``region``.

    Endpoints come from ``endpoint_set`` (new cores and border nodes,
    §4.2); interiors are restricted to ``interior_ok`` (alive nodes that
    were *not* promoted).  Fringe nodes one crossing-edge outside the
    region may serve as the far endpoint, never as interior.  The
    coverage-filtered adjacency ``adj`` and boundary edge lists are
    reused from the marking pass's extraction (identical region, box and
    filter).
    """
    if not any(u in interior_ok for u in inside):
        return  # every inside node survives: direct edges already suffice
    exits: Dict[int, List[Tuple[int, float]]] = {}
    for u, v, w in exit_edges:
        if v in endpoint_set:
            exits.setdefault(u, []).append((v, w))

    for u in inside:
        if u not in endpoint_set:
            continue
        dist = _local_dijkstra(
            [(u, 0.0)], adj, expandable=interior_ok, seed_nodes={u}
        )
        for x, d in dist.items():
            if x != u and x in endpoint_set:
                overlay.add_shortcut(u, x, d, rbox)
            # Reaching x then leaving by one crossing edge ends the path;
            # x is then interior, so it must be a permitted interior node
            # (or the source itself).
            if x == u or x in interior_ok:
                for v, w in exits.get(x, ()):
                    if v != u:
                        overlay.add_shortcut(u, v, d + w, rbox)

    # Paths entering from a fringe endpoint: group that endpoint's entry
    # edges and run one search per fringe node.
    entries: Dict[int, List[Tuple[int, float]]] = {}
    for f, u, w in enter_edges:
        if f in endpoint_set:
            entries.setdefault(f, []).append((u, w))
    for f, seeds in entries.items():
        dist = _local_dijkstra(seeds, adj, expandable=interior_ok)
        for x, d in dist.items():
            if x != f and x in endpoint_set:
                overlay.add_shortcut(f, x, d, rbox)


def assign_levels(
    graph: Graph,
    pyramid: Optional[GridPyramid] = None,
    collect_region_counts: bool = False,
    progress: Optional[Callable[[int, int, int], None]] = None,
) -> LevelAssignment:
    """AH's incremental level assignment (Section 4.2, Appendix D.1).

    Iterates grids fine-to-coarse; at iteration ``i`` it marks level-``i``
    cores as endpoints of pseudo-arterial edges found on the reduced
    graph, assigns the un-promoted cores their final level ``i-1``,
    bridges soon-to-drop nodes with region-tagged shortcuts, and shrinks
    the working graph to the new cores plus the border nodes of the next
    grid.

    ``progress(iteration, alive, regions)`` is called once per grid.
    """
    if pyramid is None:
        pyramid = GridPyramid.from_graph(graph)
    node_grid = NodeGrid(graph, pyramid)
    h = pyramid.h
    n = graph.n

    overlay = _Overlay(graph)
    levels = [0] * n
    cores: Set[int] = set(graph.nodes())
    alive: Set[int] = set(graph.nodes())
    pseudo: Dict[int, List[Tuple[int, int]]] = {i: [] for i in pyramid.levels()}
    region_counts: Optional[Dict[int, List[int]]] = (
        {i: [] for i in pyramid.levels()} if collect_region_counts else None
    )
    alive_history = [n]

    # Border sets are made cumulative from the coarse end so a node needed
    # as a border endpoint at any *future* grid is retained early enough.
    border_by_level: Dict[int, Set[int]] = {}
    cumulative: Set[int] = set()
    for i in range(h, 0, -1):
        cumulative = cumulative | _border_nodes(graph, node_grid, i, alive)
        border_by_level[i] = set(cumulative)

    for i in pyramid.levels():
        buckets = node_grid.buckets(i, alive)
        cells_per_side = pyramid.cells_per_side(i)
        regions: Set[Region] = set()
        for cell in buckets:
            regions.update(regions_covering_cell(cell, cells_per_side, i))

        # ---- pass 1: mark level-i cores via pseudo-arterial edges ----
        marked_edges: Set[Tuple[int, int]] = set()
        new_cores: Set[int] = set()
        extraction: Dict[Region, Tuple] = {}
        # Sorted: `regions` is a set, and this loop's order reaches the
        # extraction dict, region_counts and shortcut creation — answer
        # structure must not depend on hash order.
        for region in sorted(regions, key=lambda r: (r.level, r.rx, r.ry)):
            inside = _region_inside(node_grid, region, buckets)
            if not inside:
                continue
            rbox = _region_box(region)
            adjacency = overlay.covered_adjacency(rbox)
            found: Set[Tuple[int, int]] = set()
            problems = build_region_problems(
                node_grid, region, inside, adjacency, expandable=cores
            )
            first = problems[0]
            extraction[region] = (
                inside,
                rbox,
                first.inside_out,
                first.exit_edges,
                first.enter_edges,
            )
            for problem in problems:
                if problem.crossing and (
                    problem.west_inside
                    or problem.east_inside
                    or problem.enter_edges
                    or problem.exit_edges
                ):
                    found |= _solve_region_axis(problem)
            if region_counts is not None:
                region_counts[i].append(len(found))
            for a, b in sorted(found):
                marked_edges.add((a, b))
                new_cores.add(a)
                new_cores.add(b)
        # Only alive nodes can be promoted (fringe marks refer to alive
        # nodes by construction, but guard anyway).
        new_cores &= alive
        pseudo[i] = sorted(marked_edges)
        for u in sorted(new_cores):
            levels[u] = i

        # ---- pass 2: shortcuts bridging nodes about to be dropped ----
        next_border = border_by_level.get(i + 1, set())
        keep = (new_cores | (next_border & alive)) if i < h else set(new_cores)
        interior_ok = alive - new_cores
        endpoint_set = (new_cores | next_border) & alive
        for region, (inside, rbox, adj, exit_edges, enter_edges) in extraction.items():
            if len(inside) < 2:
                continue
            _create_region_shortcuts(
                overlay,
                rbox,
                inside,
                adj,
                exit_edges,
                enter_edges,
                endpoint_set,
                interior_ok,
            )

        dead = alive - keep
        overlay.drop_nodes(dead)
        cores = new_cores
        alive = keep
        alive_history.append(len(alive))
        if progress is not None:
            progress(i, len(alive), len(regions))
        if not alive:
            break

    return LevelAssignment(
        levels=levels,
        h=h,
        pyramid=pyramid,
        node_grid=node_grid,
        pseudo_arterial=pseudo,
        region_counts=region_counts,
        alive_history=alive_history,
        border_by_level=border_by_level,
    )
