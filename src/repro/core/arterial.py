"""Spanning paths, arterial edges and the arterial dimension (Section 2).

Given a 4x4-cell region ``B`` of grid ``R_i``:

* a *local path* in ``B`` has at most one edge intersecting ``B``'s
  boundary;
* a *spanning path* is a local shortest path whose endpoints lie on
  different sides of one of ``B``'s bisectors, with neither endpoint in a
  cell adjacent to that bisector (Definition 1);
* an *arterial edge* of ``B`` is an edge of a spanning path that
  intersects the bisector.

Assumption 1 (the arterial dimension) bounds the number of arterial edges
per region by a constant λ; Figure 3 measures it empirically, and
:func:`arterial_dimension_stats` reproduces that measurement.

Implementation notes
--------------------
The computation is exact over the following path-shape family: interior
nodes strictly inside ``B``; at most one endpoint may sit outside ``B``,
reached by the path's single boundary-crossing edge; and single edges that
fly over the bisector directly.  The SlidingWindow argument (Appendix B /
our :mod:`repro.core.sliding_window`) shows every shortest path that spans
a region contains a sub-path of exactly this shape, so marking arterial
edges within the family preserves the covering property that the FC/AH
level assignment — and therefore query pruning — relies on.

Ties are handled *inclusively*: an edge is marked when it lies on **any**
minimum-length spanning path, not just one canonical path, so correctness
never depends on the weight-perturbation of Appendix A (which is still
provided in :mod:`repro.core.perturb` for faithfulness).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.graph import Graph
from ..spatial.grid import GridPyramid, NodeGrid
from ..spatial.regions import Region, nonempty_regions

__all__ = [
    "region_arterial_edges",
    "arterial_dimension_stats",
    "ArterialStats",
    "RegionTooLargeError",
]

INF = float("inf")
_REL_EPS = 1e-9


class RegionTooLargeError(ValueError):
    """Raised when a region holds more nodes than the caller's cap.

    Exact arterial computation inside a region costs roughly
    ``O(|endpoints| * |region| log |region|)``; the cap keeps the exact
    sweep usable (the paper's FC has the same scaling limitation, which
    is AH's entire raison d'être).
    """


# ----------------------------------------------------------------------
# Geometry helpers for one region/axis
# ----------------------------------------------------------------------
def _axis_info(region: Region, pyramid: GridPyramid, axis: str):
    """Return (bisector position, lo, hi, coordinate picker, cross picker).

    For the vertical bisector the *position* is an x value and the
    bisector segment spans ``[lo, hi]`` in y; picker functions extract the
    along-axis / cross-axis coordinate from an ``(x, y)`` pair.
    """
    x0, y0, x1, y1 = region.bounds(pyramid)
    if axis == "vertical":
        return region.vertical_bisector_x(pyramid), y0, y1, 0, 1
    return region.horizontal_bisector_y(pyramid), x0, x1, 1, 0


def _segment_crosses_bisector(
    ax: float,
    ay: float,
    bx: float,
    by: float,
    pos: float,
    lo: float,
    hi: float,
    main: int,
    cross: int,
) -> bool:
    """Does segment a-b cross the bisector *segment* (not the full line)?

    ``main`` selects the coordinate compared against ``pos`` (x for the
    vertical bisector); ``cross`` the coordinate compared against the
    ``[lo, hi]`` extent.
    """
    a = (ax, ay)
    b = (bx, by)
    da = a[main] - pos
    db = b[main] - pos
    if da * db > 0:
        return False
    if da == db:  # degenerate: edge parallel and on the line
        return lo <= a[cross] <= hi or lo <= b[cross] <= hi
    t = da / (da - db)
    c = a[cross] + t * (b[cross] - a[cross])
    return lo <= c <= hi


def _column_of(region: Region, cell: Tuple[int, int], axis: str) -> int:
    """Cell offset along the bisector-splitting axis relative to ``rx``."""
    if axis == "vertical":
        return cell[0] - region.rx
    return cell[1] - region.ry


def _endpoint_side(region: Region, cell: Tuple[int, int], axis: str) -> Optional[int]:
    """-1 / +1 for a *valid* spanning endpoint cell; None when the cell is
    adjacent to the bisector (columns 1 and 2 in region offsets)."""
    col = _column_of(region, cell, axis)
    if col in (1, 2):
        return None
    return -1 if col <= 1 else 1


# ----------------------------------------------------------------------
# The per-region solver (shared by the exact and the overlay variants)
# ----------------------------------------------------------------------
def _local_dijkstra(
    seeds: Sequence[Tuple[int, float]],
    adj: Dict[int, List[Tuple[int, float]]],
    expandable: Optional[Set[int]] = None,
    seed_nodes: Optional[Set[int]] = None,
) -> Dict[int, float]:
    """Dijkstra restricted to the region's interior adjacency ``adj``.

    When ``expandable`` is given, settled nodes outside it are terminals:
    they receive a distance but are not relaxed through (the paper's
    border condition — spanning-path interiors must be cores).  Seed
    nodes themselves (``seed_nodes``) always expand: a path may *start*
    at a non-core endpoint.
    """
    dist: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = []
    for node, d0 in seeds:
        if d0 < dist.get(node, INF):
            dist[node] = d0
            heappush(heap, (d0, node))
    settled: Dict[int, float] = {}
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        settled[u] = d
        if (
            expandable is not None
            and u not in expandable
            and (seed_nodes is None or u not in seed_nodes)
        ):
            continue
        for v, w in adj.get(u, ()):
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    return settled


@dataclass
class _RegionProblem:
    """One region/axis instance handed to :func:`_solve_region_axis`.

    Attributes
    ----------
    inside_out / inside_in:
        Interior adjacency (both directions) among inside nodes only.
    west_inside / east_inside:
        Valid spanning-path endpoint nodes inside the region per side
        (side -1 is "west"/"south", +1 is "east"/"north").
    enter_edges:
        ``(outside_node, inside_node, w)`` usable as a path's first edge.
    exit_edges:
        ``(inside_node, outside_node, w)`` usable as a path's last edge.
    outside_side:
        Side (+-1) of each referenced outside node, or ``None`` when the
        node sits in a bisector-adjacent column (invalid endpoint).
    crossing:
        Candidate arterial edges ``(a, b, w, a_inside, b_inside)`` whose
        segment crosses the bisector segment.
    expandable:
        When not ``None``, interior nodes the search may relax through
        (the cores of the current AH iteration); other nodes only
        terminate paths.
    """

    inside_out: Dict[int, List[Tuple[int, float]]]
    inside_in: Dict[int, List[Tuple[int, float]]]
    west_inside: List[int]
    east_inside: List[int]
    enter_edges: List[Tuple[int, int, float]]
    exit_edges: List[Tuple[int, int, float]]
    outside_side: Dict[int, Optional[int]]
    crossing: List[Tuple[int, int, float, bool, bool]]
    expandable: Optional[Set[int]] = None


def _solve_region_axis(problem: _RegionProblem) -> Set[Tuple[int, int]]:
    """Mark all-ties arterial edges for one region and one bisector.

    Sources are valid endpoints on either side (inside border nodes, plus
    outside nodes via their single entry edge); targets symmetric.  An
    inside-inside crossing edge ``(a, b)`` is arterial when some valid
    pair ``(u, v)`` on opposite sides satisfies
    ``d_u(a) + w + d_v(b) == d_u(v)`` (a tied shortest spanning path
    through the edge).  Crossing edges with an outside endpoint are the
    path's entry/exit edge and are checked against the other side's
    distances; fully-outside crossing edges between valid endpoint
    columns are marked directly (single-edge spanning paths).

    The solver maps the sub-problem onto dense local indices so the many
    tiny Dijkstras run over lists instead of dictionaries.
    """
    marked: Set[Tuple[int, int]] = set()
    if not problem.crossing:
        return marked
    expandable = problem.expandable

    # ---- local index over inside nodes --------------------------------
    ids: List[int] = list(problem.inside_out.keys())
    k = len(ids)
    idx: Dict[int, int] = {u: i for i, u in enumerate(ids)}
    out_local: List[List[Tuple[int, float]]] = [
        [(idx[v], w) for v, w in problem.inside_out[u]] for u in ids
    ]
    in_local: List[List[Tuple[int, float]]] = [
        [(idx[v], w) for v, w in problem.inside_in[u]] for u in ids
    ]
    if expandable is None:
        can_expand = [True] * k
    else:
        can_expand = [u in expandable for u in ids]

    def dij(
        seeds: List[Tuple[int, float]],
        adj: List[List[Tuple[int, float]]],
        free: int,
    ) -> List[float]:
        """List-based Dijkstra; ``free`` expands even if not a core."""
        dist = [INF] * k
        heap: List[Tuple[float, int]] = []
        for i, d0 in seeds:
            if d0 < dist[i]:
                dist[i] = d0
                heap.append((d0, i))
        heap.sort()
        done = [False] * k
        while heap:
            d, i = heappop(heap)
            if done[i]:
                continue
            done[i] = True
            if not can_expand[i] and i != free:
                continue
            for j, w in adj[i]:
                nd = d + w
                if nd < dist[j]:
                    dist[j] = nd
                    heappush(heap, (nd, j))
        for i in range(k):
            if not done[i]:
                dist[i] = INF
        return dist

    # ---- forward / backward sweeps from valid endpoints ---------------
    fwd: Dict[int, List[float]] = {}
    fwd_side: Dict[int, int] = {}
    for u in problem.west_inside:
        fwd[u] = dij([(idx[u], 0.0)], out_local, idx[u])
        fwd_side[u] = -1
    for u in problem.east_inside:
        fwd[u] = dij([(idx[u], 0.0)], out_local, idx[u])
        fwd_side[u] = 1
    enter_by_u: Dict[int, List[Tuple[int, float]]] = {}
    for u, x, w in problem.enter_edges:
        if problem.outside_side.get(u) is not None:
            enter_by_u.setdefault(u, []).append((idx[x], w))
    for u, seeds in enter_by_u.items():
        fwd[u] = dij(seeds, out_local, -1)
        fwd_side[u] = problem.outside_side[u]

    bwd: Dict[int, List[float]] = {}
    bwd_side: Dict[int, int] = {}
    for v in problem.west_inside:
        bwd[v] = dij([(idx[v], 0.0)], in_local, idx[v])
        bwd_side[v] = -1
    for v in problem.east_inside:
        bwd[v] = dij([(idx[v], 0.0)], in_local, idx[v])
        bwd_side[v] = 1
    exit_by_v: Dict[int, List[Tuple[int, float]]] = {}
    for x, v, w in problem.exit_edges:
        if problem.outside_side.get(v) is not None:
            exit_by_v.setdefault(v, []).append((idx[x], w))
    for v, seeds in exit_by_v.items():
        bwd[v] = dij(seeds, in_local, -1)
        bwd_side[v] = problem.outside_side[v]

    # ---- valid (u, v) pairs with their spanning distances --------------
    # D(u, v) is read off the forward sweep directly: d_u(v) for inside
    # targets, min over v's exit seeds for outside targets (an outside
    # source's entry cost is already folded into its sweep seeds).
    outside_src = set(enter_by_u)
    outside_tgt = set(exit_by_v)
    pairs: List[Tuple[int, int, float]] = []
    for u, du in fwd.items():
        su = fwd_side[u]
        u_out = u in outside_src
        for v, seeds in exit_by_v.items():
            if u == v or bwd_side[v] == su or u_out:
                continue  # same node, same side, or two crossings
            best = INF
            for i, w in seeds:
                d = du[i] + w
                if d < best:
                    best = d
            if best < INF:
                pairs.append((u, v, best))
        for v in bwd:
            if v in outside_tgt or u == v or bwd_side[v] == su:
                continue
            d = du[idx[v]]
            if d < INF:
                pairs.append((u, v, d))

    # ---- mark crossing edges on tied shortest spanning paths ----------
    for a, b, w, a_in, b_in in problem.crossing:
        key = (a, b)
        if key in marked:
            continue
        if not a_in and not b_in:
            sa = problem.outside_side.get(a)
            sb = problem.outside_side.get(b)
            # A single flying edge is its own spanning path when both
            # endpoints are valid and on opposite sides.
            if sa is not None and sb is not None and sa != sb:
                marked.add(key)
            continue
        ia = idx[a] if a_in else -1
        ib = idx[b] if b_in else -1
        a_core = a_in and can_expand[ia]
        b_core = b_in and can_expand[ib]
        for u, v, duv in pairs:
            if a_in:
                if not a_core and a != u:
                    continue  # a would be a non-core interior node
                da = fwd[u][ia]
            else:
                if u != a:
                    continue  # the edge must be the entry edge from u = a
                da = 0.0
            if da == INF:
                continue
            if b_in:
                if not b_core and b != v:
                    continue
                db = bwd[v][ib]
            else:
                if v != b:
                    continue
                db = 0.0
            if db == INF:
                continue
            total = da + w + db
            if total <= duv * (1 + _REL_EPS) + 1e-15:
                marked.add(key)
                break
    return marked


# ----------------------------------------------------------------------
# Shared single-pass extraction
# ----------------------------------------------------------------------
def _in_strip(region: Region, cell: Tuple[int, int], axis: str, side: int) -> bool:
    """Cell membership in the outer strip of ``side`` for ``axis``."""
    if axis == "vertical":
        col = region.rx if side == -1 else region.rx + 3
        return cell[0] == col and region.ry <= cell[1] < region.ry + 4
    row = region.ry if side == -1 else region.ry + 3
    return cell[1] == row and region.rx <= cell[0] < region.rx + 4


def build_region_problems(
    node_grid: NodeGrid,
    region: Region,
    inside: Sequence[int],
    adjacency,
    expandable: Optional[Set[int]] = None,
) -> List[_RegionProblem]:
    """Extract the vertical and horizontal sub-problems in one edge pass.

    ``adjacency(u)`` must yield ``(v, w, is_out)`` for every usable edge
    incident to ``u`` (``is_out`` True for ``u -> v``); the caller bakes
    in any coverage filtering.  Inside endpoints are restricted to strip
    nodes with an edge leaving their strip — genuine Definition-2 border
    nodes.  This loses no arterial edges: any spanning path can be
    trimmed to the last in-strip node before / first after its crossing
    edge, both of which have strip-leaving edges, and the trimmed path is
    still a local shortest spanning path containing the same crossing
    edge.
    """
    graph = node_grid.graph
    pyramid = node_grid.pyramid
    xs, ys = graph.xs, graph.ys
    level = region.level
    inside_set = set(inside)
    cell_of = node_grid.cell_of

    problems: List[_RegionProblem] = []
    axes_info = [
        ("vertical", *_axis_info(region, pyramid, "vertical")),
        ("horizontal", *_axis_info(region, pyramid, "horizontal")),
    ]

    inside_out: Dict[int, List[Tuple[int, float]]] = {u: [] for u in inside}
    inside_in: Dict[int, List[Tuple[int, float]]] = {u: [] for u in inside}
    enter_edges: List[Tuple[int, int, float]] = []
    exit_edges: List[Tuple[int, int, float]] = []
    outside_cell: Dict[int, Tuple[int, int]] = {}
    crossing: Dict[str, List[Tuple[int, int, float, bool, bool]]] = {
        "vertical": [],
        "horizontal": [],
    }
    # endpoint candidates per axis/side: inside strip nodes with an edge
    # leaving the strip.
    border: Dict[Tuple[str, int], Set[int]] = {
        ("vertical", -1): set(),
        ("vertical", 1): set(),
        ("horizontal", -1): set(),
        ("horizontal", 1): set(),
    }
    strip_of: Dict[int, List[Tuple[str, int]]] = {}
    for u in inside:
        cu = cell_of(level, u)
        memberships = []
        for axis in ("vertical", "horizontal"):
            side = _endpoint_side(region, cu, axis)
            if side is not None and _in_strip(region, cu, axis, side):
                memberships.append((axis, side))
        if memberships:
            strip_of[u] = memberships

    seen_pairs: Set[Tuple[int, int, bool]] = set()
    for u in inside:
        cu = cell_of(level, u)
        u_strips = strip_of.get(u, ())
        for v, w, is_out in adjacency(u):
            v_in = v in inside_set
            if v_in:
                cv = cell_of(level, v)
                if is_out:
                    inside_out[u].append((v, w))
                else:
                    inside_in[u].append((v, w))
            else:
                cv = outside_cell.get(v)
                if cv is None:
                    cv = cell_of(level, v)
                    outside_cell[v] = cv
                if is_out:
                    exit_edges.append((u, v, w))
                else:
                    enter_edges.append((v, u, w))
            for axis, side in u_strips:
                if not _in_strip(region, cv, axis, side):
                    border[(axis, side)].add(u)
            key = (u, v) if is_out else (v, u)
            dedup = (key[0], key[1], True)
            if dedup in seen_pairs:
                continue
            seen_pairs.add(dedup)
            a, b = key
            a_in = a in inside_set
            b_in = b in inside_set
            for axis, pos, lo, hi, main, cross_idx in axes_info:
                if _segment_crosses_bisector(
                    xs[a], ys[a], xs[b], ys[b], pos, lo, hi, main, cross_idx
                ):
                    crossing[axis].append((a, b, w, a_in, b_in))

    for axis, pos, lo, hi, main, cross_idx in axes_info:
        outside_side = {
            v: _endpoint_side(region, c, axis) for v, c in outside_cell.items()
        }
        problems.append(
            _RegionProblem(
                inside_out=inside_out,
                inside_in=inside_in,
                west_inside=sorted(border[(axis, -1)]),
                east_inside=sorted(border[(axis, 1)]),
                enter_edges=enter_edges,
                exit_edges=exit_edges,
                outside_side=outside_side,
                crossing=crossing[axis],
                expandable=expandable,
            )
        )
    return problems


def region_arterial_edges(
    graph: Graph,
    node_grid: NodeGrid,
    region: Region,
    nodes: Optional[Sequence[int]] = None,
    max_region_nodes: Optional[int] = None,
    fly_edges: Optional[Sequence[Tuple[int, int, float]]] = None,
) -> Set[Tuple[int, int]]:
    """Exact arterial edges of one region (both bisectors, all ties).

    ``nodes`` restricts the interior to a subset (used on alive sets);
    ``max_region_nodes`` raises :class:`RegionTooLargeError` when the
    interior would exceed it.
    """
    if nodes is None:
        buckets = node_grid.buckets(region.level)
        inside: List[int] = []
        for dx in range(4):
            for dy in range(4):
                inside.extend(buckets.get((region.rx + dx, region.ry + dy), ()))
    else:
        inside = [
            u
            for u in nodes
            if region.contains_cell(node_grid.cell_of(region.level, u))
        ]
    if max_region_nodes is not None and len(inside) > max_region_nodes:
        raise RegionTooLargeError(
            f"region {region} holds {len(inside)} nodes (cap {max_region_nodes})"
        )
    out_adj, in_adj = graph.out, graph.inn

    def adjacency(u: int):
        return [(v, w, True) for v, w in out_adj[u]] + [
            (v, w, False) for v, w in in_adj[u]
        ]

    marked: Set[Tuple[int, int]] = set()
    for problem in build_region_problems(node_grid, region, inside, adjacency):
        if problem.crossing:
            marked |= _solve_region_axis(problem)
    if fly_edges is None:
        fly_edges = long_edges(graph, node_grid, region.level)
    marked |= _mark_fly_edges(graph, node_grid, region, fly_edges)
    return marked


def long_edges(
    graph: Graph, node_grid: NodeGrid, level: int
) -> List[Tuple[int, int, float]]:
    """Edges spanning >= 3 cells of ``R_level`` — the only edges able to
    fly over a 4x4 region without either endpoint being inside it.

    :func:`arterial_dimension_stats` precomputes this once per level and
    shares it across all regions of the sweep.
    """
    edges: List[Tuple[int, int, float]] = []
    cell_of = node_grid.cell_of
    for u, v, w in graph.edges():
        cu = cell_of(level, u)
        cv = cell_of(level, v)
        if max(abs(cu[0] - cv[0]), abs(cu[1] - cv[1])) >= 3:
            edges.append((u, v, w))
    return edges


def _mark_fly_edges(
    graph: Graph,
    node_grid: NodeGrid,
    region: Region,
    fly_edges: Sequence[Tuple[int, int, float]],
) -> Set[Tuple[int, int]]:
    """Single-edge spanning paths whose endpoints both lie outside ``B``.

    Such an edge crosses the region boundary twice — still one edge, so
    still a local path (Definition 1) — and is its own spanning path when
    it crosses a bisector between valid opposite-side endpoint columns.
    (When a shorter multi-hop local route exists between its endpoints
    the mark is conservative: harmless over-marking, see module docs.)
    """
    marked: Set[Tuple[int, int]] = set()
    if not fly_edges:
        return marked
    pyramid = node_grid.pyramid
    xs, ys = graph.xs, graph.ys
    level = region.level
    for axis in ("vertical", "horizontal"):
        pos, lo, hi, main, cross = _axis_info(region, pyramid, axis)
        for u, v, w in fly_edges:
            cu = node_grid.cell_of(level, u)
            cv = node_grid.cell_of(level, v)
            if region.contains_cell(cu) or region.contains_cell(cv):
                continue  # an inside endpoint was handled by the solver
            su = _endpoint_side(region, cu, axis)
            sv = _endpoint_side(region, cv, axis)
            if su is None or sv is None or su == sv:
                continue
            if _segment_crosses_bisector(
                xs[u], ys[u], xs[v], ys[v], pos, lo, hi, main, cross
            ):
                marked.add((u, v))
    return marked


# ----------------------------------------------------------------------
# Figure 3: arterial dimension statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArterialStats:
    """Arterial-edge count statistics for one grid resolution.

    Mirrors Figure 3's series: mean, 90% / 99% quantiles and max of the
    per-region arterial edge count over all non-empty 4x4 regions.
    """

    level: int
    resolution: int  # r such that the grid has 2^r cells per side
    regions: int
    skipped: int  # regions over the node cap (reported, not silently lost)
    mean: float
    q90: int
    q99: int
    max: int

    @staticmethod
    def from_counts(
        level: int, resolution: int, counts: Sequence[int], skipped: int
    ) -> "ArterialStats":
        """Aggregate raw per-region counts into the figure's statistics."""
        if not counts:
            return ArterialStats(level, resolution, 0, skipped, 0.0, 0, 0, 0)
        ordered = sorted(counts)
        k = len(ordered)

        def quantile(q: float) -> int:
            return ordered[min(k - 1, int(q * k))]

        return ArterialStats(
            level=level,
            resolution=resolution,
            regions=k,
            skipped=skipped,
            mean=sum(ordered) / k,
            q90=quantile(0.90),
            q99=quantile(0.99),
            max=ordered[-1],
        )


def arterial_dimension_stats(
    graph: Graph,
    pyramid: Optional[GridPyramid] = None,
    levels: Optional[Iterable[int]] = None,
    max_region_nodes: int = 4000,
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[ArterialStats]:
    """Reproduce Figure 3: arterial-edge statistics per grid resolution.

    For each grid ``R_i`` (optionally restricted via ``levels``), sweeps
    every non-empty 4x4 region, computes its exact arterial edge count,
    and aggregates mean / 90% / 99% / max.  Regions whose interior
    exceeds ``max_region_nodes`` are skipped and counted in ``skipped``
    (the exact sweep is quadratic in region size — the very FC
    bottleneck the paper motivates AH with).
    """
    if pyramid is None:
        pyramid = GridPyramid.from_graph(graph)
    node_grid = NodeGrid(graph, pyramid)
    wanted = list(levels) if levels is not None else list(pyramid.levels())
    out: List[ArterialStats] = []
    for i in wanted:
        region_map = nonempty_regions(node_grid, i)
        counts: List[int] = []
        skipped = 0
        total = len(region_map)
        fly = long_edges(graph, node_grid, i)
        for done, region in enumerate(region_map):
            try:
                marked = region_arterial_edges(
                    graph,
                    node_grid,
                    region,
                    max_region_nodes=max_region_nodes,
                    fly_edges=fly,
                )
            except RegionTooLargeError:
                skipped += 1
                continue
            counts.append(len(marked))
            if progress is not None and done % 256 == 0:
                progress(done, total)
        out.append(
            ArterialStats.from_counts(i, pyramid.h + 2 - i, counts, skipped)
        )
    return out
