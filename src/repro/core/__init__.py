"""Core: the paper's contribution — arterial machinery, FC and AH."""

from .ah import AHIndex
from .arterial import (
    ArterialStats,
    RegionTooLargeError,
    arterial_dimension_stats,
    region_arterial_edges,
)
from .fc import FCIndex
from .hierarchy import LevelAssignment, assign_levels, exact_levels
from .lemmas import (
    CoveringViolation,
    DensityReport,
    check_covering_property,
    check_density_bound,
    check_sliding_window,
)
from .ordering import RankAssignment, compute_ranks, greedy_vertex_cover
from .perturb import PerturbedGraph, perturb_weights, recommended_tau
from .serialize import (
    BundleCorrupted,
    index_bytes,
    load_bundle,
    load_graph,
    load_hl_index,
    load_index,
    save_bundle,
    save_graph,
    save_hl_index,
    save_index,
)
from .sliding_window import SlidingWindowResult, sliding_window

__all__ = [
    "AHIndex",
    "BundleCorrupted",
    "FCIndex",
    "arterial_dimension_stats",
    "region_arterial_edges",
    "ArterialStats",
    "RegionTooLargeError",
    "LevelAssignment",
    "assign_levels",
    "exact_levels",
    "RankAssignment",
    "compute_ranks",
    "greedy_vertex_cover",
    "PerturbedGraph",
    "perturb_weights",
    "recommended_tau",
    "SlidingWindowResult",
    "sliding_window",
    "save_index",
    "load_index",
    "save_hl_index",
    "load_hl_index",
    "index_bytes",
    "save_graph",
    "load_graph",
    "save_bundle",
    "load_bundle",
    "CoveringViolation",
    "DensityReport",
    "check_covering_property",
    "check_density_bound",
    "check_sliding_window",
]
