"""Node ranking and selection (Section 4.4).

AH's shortcut construction needs a strict total order on the nodes of
each level.  The paper's heuristic: build the graph formed by the level's
pseudo-arterial edges ``S_i``, compute a greedy vertex cover ``ξ`` (the
classic "repeatedly take the node covering the most uncovered edges"
approximation), give the ``i``-th node of ``ξ`` the ``i``-th *highest*
rank within the level, and push cores outside the cover to the bottom —
optionally *downgrading* them a level entirely, which is safe because a
vertex cover keeps at least one endpoint of every pseudo-arterial edge at
the original level, preserving the covering property behind Lemma 3.
Level-0 nodes are ordered randomly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Dict, List, Sequence, Tuple

__all__ = ["RankAssignment", "greedy_vertex_cover", "compute_ranks"]


def greedy_vertex_cover(edges: Sequence[Tuple[int, int]]) -> List[int]:
    """Greedy max-degree vertex cover of the (undirected) edge set.

    Returns the selection sequence ``ξ``: the first node covers the most
    edges, each subsequent node covers the most edges disjoint from the
    previously selected nodes.  Self-loops are ignored; duplicate and
    reverse edges collapse.
    """
    adjacency: Dict[int, set] = {}
    for u, v in edges:
        if u == v:
            continue
        a, b = (u, v) if u < v else (v, u)
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    heap: List[Tuple[int, int]] = [(-len(nbrs), u) for u, nbrs in adjacency.items()]
    heapify(heap)
    xi: List[int] = []
    while heap:
        neg_deg, u = heappop(heap)
        nbrs = adjacency.get(u)
        if nbrs is None:
            continue
        if -neg_deg != len(nbrs):
            # Stale entry: reinsert with the current degree (lazy update).
            if nbrs:
                heappush(heap, (-len(nbrs), u))
            continue
        if not nbrs:
            continue
        xi.append(u)
        for v in list(nbrs):
            adjacency[v].discard(u)
        del adjacency[u]
    return xi


@dataclass(frozen=True)
class RankAssignment:
    """Output of :func:`compute_ranks`.

    Attributes
    ----------
    rank:
        ``rank[u]`` in ``0 .. n-1``; higher means more important.  The
        contraction order of :func:`repro.baselines.ch.contract_graph`
        is exactly ascending rank.
    levels:
        Node levels *after* the optional downgrading step.
    order:
        Node ids sorted by ascending rank (``order[rank[u]] == u``).
    """

    rank: List[int]
    levels: List[int]
    order: List[int]


def compute_ranks(
    levels: Sequence[int],
    pseudo_arterial: Dict[int, Sequence[Tuple[int, int]]],
    downgrade: bool = True,
    seed: int = 0,
) -> RankAssignment:
    """Derive the strict total order of §4.4 from levels and ``S_i`` sets.

    Within level ``i >= 1``: nodes outside the vertex cover of ``S_i``
    rank lowest (random order), then the cover sequence reversed (the
    first-selected hub ranks highest).  With ``downgrade=True`` the
    non-cover cores drop to level ``i - 1`` instead (the paper's
    query-speed optimisation).  Level-0 nodes are ordered randomly.
    """
    n = len(levels)
    rng = random.Random(seed)
    eff_levels = list(levels)
    max_level = max(eff_levels) if n else 0

    in_cover_pos: Dict[int, int] = {}  # node -> position in its level's xi
    for i in range(max_level, 0, -1):
        edges = pseudo_arterial.get(i, ())
        level_nodes = {u for u in range(n) if eff_levels[u] == i}
        xi = [u for u in greedy_vertex_cover(edges) if u in level_nodes]
        for pos, u in enumerate(xi):
            in_cover_pos[u] = pos
        if downgrade:
            cover = set(xi)
            for u in sorted(level_nodes):
                if u not in cover:
                    eff_levels[u] = i - 1

    def sort_key(u: int) -> Tuple[int, int, float]:
        lv = eff_levels[u]
        pos = in_cover_pos.get(u)
        if pos is None:
            # Non-cover / level-0 nodes: below every cover node, shuffled.
            return (lv, 0, rng.random())
        # Cover nodes: earlier in xi = more important = later contraction.
        return (lv, 1, -pos)

    order = sorted(range(n), key=sort_key)
    rank = [0] * n
    for pos, u in enumerate(order):
        rank[u] = pos
    return RankAssignment(rank=rank, levels=eff_levels, order=order)
