"""Arterial Hierarchy index (Section 4) — the paper's main contribution.

Construction pipeline
---------------------
1. **Levels** — :func:`repro.core.hierarchy.assign_levels` classifies
   nodes into ``0..h`` grid levels via pseudo-arterial edges on reduced
   graphs (§4.2).
2. **Ranks** — :func:`repro.core.ordering.compute_ranks` turns levels
   into a strict total order using the §4.4 vertex-cover heuristic, with
   optional downgrading.
3. **Shortcuts** — the graph is contracted in ascending rank order
   (:func:`repro.baselines.ch.contract_graph`).  Every shortcut carries
   the *middle node* it bypasses, which realises the paper's two-hop
   invariant (§4.1): any shortcut expands into two shorter edges, so a
   packed query path unpacks into the original-graph path in ``O(k)``.
4. **Elevating edges** (optional, §4.2/§4.3) — for border nodes of the
   coarser grids, precomputed jumps to the first nodes of level ``>= j``
   on upward shortest paths, letting queries skip the low hierarchy
   levels entirely.

Query processing (§4.3)
-----------------------
A bidirectional Dijkstra over upward edges only (the **rank
constraint**), optionally pruning any relaxation toward a level-``i``
node that falls outside every 3x3-cell region of ``R_{i+1}`` around the
query endpoint (the **proximity constraint**), optionally jumping along
elevating edges up to the separation level of the query pair.

Correctness notes
-----------------
The rank constraint alone is complete: contraction guarantees a
rank-unimodal path of optimal length for every pair (the paper's
Lemma 16).  The proximity constraint is additionally safe because the
level assignment marks arterial edges tie-inclusively, so *every*
shortest path between nodes separated at ``R_{i+1}`` passes a node above
level ``i`` (Lemma 3), and hence the canonical unimodal path never
leaves the 5x5-cell neighbourhoods the constraint searches.  Elevating
jumps replay precomputed prefixes of the same upward search, and fall
back to plain relaxation whenever a node has no (complete) jump table.
Every constraint can be toggled per query engine for ablation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from heapq import heappop, heappush

from ..baselines.base import QueryEngine
from ..baselines.ch import contract_graph
from ..graph.graph import Graph
from ..graph.path import Path
from ..graph.workspace import acquire, release
from ..spatial.grid import GridPyramid, NodeGrid
from .hierarchy import LevelAssignment, assign_levels
from .ordering import RankAssignment, compute_ranks

__all__ = ["AHIndex"]

INF = float("inf")

# parent entry: (predecessor, packed chain from predecessor to node)
_Parent = Tuple[int, Tuple[int, ...]]


class AHIndex(QueryEngine):
    """The Arterial Hierarchy query engine.

    Parameters
    ----------
    graph:
        The road network to index.
    pyramid:
        Optional pre-built grid pyramid (defaults to one covering the
        graph with ≤ one node per finest cell).
    proximity:
        Enable the proximity constraint at query time.
    downgrade:
        Apply §4.4's downgrading of non-cover cores.
    elevating:
        Precompute elevating edges and use them at query time.
    stall_on_demand:
        Enable the CH-style stalling optimisation (off by default: the
        paper's AH does not use it; flip it on for ablations).
    hop_limit, settle_limit:
        Witness-search truncation for the contraction phase.
    elevating_settle_cap:
        Abandon a node/level jump table when its upward search exceeds
        this many settled nodes (the query then falls back to plain
        relaxation for that node — always safe).
    ordering:
        ``"cover"`` uses §4.4's vertex-cover heuristic within levels;
        ``"random"`` orders levels randomly (the ablation baseline — any
        strict total order preserves correctness, per the paper).
    seed:
        Randomness for the within-level ordering.
    """

    name = "AH"

    def __init__(
        self,
        graph: Graph,
        pyramid: Optional[GridPyramid] = None,
        proximity: bool = True,
        downgrade: bool = True,
        elevating: bool = False,
        stall_on_demand: bool = False,
        hop_limit: int = 8,
        settle_limit: int = 64,
        elevating_settle_cap: int = 512,
        ordering: str = "cover",
        seed: int = 0,
    ) -> None:
        super().__init__(graph)
        self.proximity = proximity
        self.use_elevating = elevating
        self.stall_on_demand = stall_on_demand
        self.build_times: Dict[str, float] = {}

        t0 = time.perf_counter()
        self.assignment: LevelAssignment = assign_levels(graph, pyramid)
        self.build_times["levels"] = time.perf_counter() - t0

        if ordering not in ("cover", "random"):
            raise ValueError(f"ordering must be 'cover' or 'random', got {ordering!r}")
        t0 = time.perf_counter()
        pseudo = self.assignment.pseudo_arterial if ordering == "cover" else {}
        self.ranking: RankAssignment = compute_ranks(
            self.assignment.levels,
            pseudo,
            downgrade=downgrade and ordering == "cover",
            seed=seed,
        )
        self.build_times["ordering"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        self._res = contract_graph(
            graph,
            order=self.ranking.order,
            hop_limit=hop_limit,
            settle_limit=settle_limit,
        )
        self.build_times["contraction"] = time.perf_counter() - t0

        self.levels: List[int] = self.ranking.levels
        self.node_grid: NodeGrid = self.assignment.node_grid
        self.h: int = self.assignment.h

        self._elev_f: Dict[int, Dict[int, List[Tuple[int, float, Tuple[int, ...]]]]] = {}
        self._elev_b: Dict[int, Dict[int, List[Tuple[int, float, Tuple[int, ...]]]]] = {}
        if elevating:
            t0 = time.perf_counter()
            self._build_elevating(elevating_settle_cap)
            self.build_times["elevating"] = time.perf_counter() - t0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Upward edges (both directions) plus elevating entries."""
        res = self._res
        size = sum(len(a) for a in res.up_out) + sum(len(a) for a in res.up_in)
        for table in (self._elev_f, self._elev_b):
            for per_level in table.values():
                for entries in per_level.values():
                    size += len(entries)
        return size

    @property
    def shortcut_count(self) -> int:
        """Shortcuts added by the contraction phase."""
        return self._res.shortcut_count

    def build_time(self) -> float:
        """Total preprocessing seconds across all phases."""
        return sum(self.build_times.values())

    def describe(self) -> str:
        """Summary including the level histogram."""
        sizes = {}
        for lv in self.levels:
            sizes[lv] = sizes.get(lv, 0) + 1
        return (
            f"AH(n={self.graph.n}, h={self.h}, shortcuts={self.shortcut_count}, "
            f"levels={dict(sorted(sizes.items()))})"
        )

    # ------------------------------------------------------------------
    # Metric customization (§7 future work: time-varying edge weights)
    # ------------------------------------------------------------------
    def with_weights(
        self,
        graph: Graph,
        hop_limit: int = 8,
        settle_limit: int = 64,
    ) -> "AHIndex":
        """Rebuild the index for new edge weights, reusing the hierarchy.

        The paper's §7 names traffic-driven weight changes as future
        work.  This customization step answers it in the spirit of
        customizable route planning: the expensive, largely structural
        phases (grid levels, vertex-cover ranks) are kept, and only the
        cheap contraction phase re-runs on the new metric — typically
        two orders of magnitude faster than a full rebuild.

        Because the covering property behind the proximity constraint
        and elevating edges is metric-dependent, the customized index
        runs with the rank constraint only (which is exact for *any*
        weights); re-run the full constructor when the metric change is
        permanent and the extra query speed matters.

        ``graph`` must have the same node count as the original network;
        edges may change weight freely (added/removed edges are allowed
        too — contraction consumes whatever adjacency it is given).
        """
        if self.ranking is None:
            raise ValueError(
                "this index was deserialized without its ranking; "
                "customization needs a fully built index"
            )
        if graph.n != self.graph.n:
            raise ValueError(
                f"new graph has {graph.n} nodes, index was built for "
                f"{self.graph.n}"
            )
        custom = AHIndex.__new__(AHIndex)
        custom.graph = graph
        custom.proximity = False
        custom.use_elevating = False
        custom.stall_on_demand = self.stall_on_demand
        custom.build_times = dict(self.build_times)
        custom.assignment = self.assignment
        custom.ranking = self.ranking
        custom.levels = self.levels
        custom.node_grid = self.node_grid
        custom.h = self.h
        t0 = time.perf_counter()
        custom._res = contract_graph(
            graph,
            order=self.ranking.order,
            hop_limit=hop_limit,
            settle_limit=settle_limit,
        )
        custom.build_times["customization"] = time.perf_counter() - t0
        custom._elev_f = {}
        custom._elev_b = {}
        return custom

    # ------------------------------------------------------------------
    # Elevating edges
    # ------------------------------------------------------------------
    def _build_elevating(self, cap: int) -> None:
        levels = self.levels
        border = self.assignment.border_by_level
        for j in range(2, self.h + 1):
            for u in border.get(j, ()):
                if levels[u] >= j:
                    continue
                fwd = self._elevating_search(u, j, self._res.up_out, cap)
                if fwd:
                    self._elev_f.setdefault(u, {})[j] = fwd
                bwd = self._elevating_search(u, j, self._res.up_in, cap)
                if bwd:
                    # The backward search walks in-edges, so its chains are
                    # in reverse graph order; flip them for unpacking.
                    self._elev_b.setdefault(u, {})[j] = [
                        (v, w, tuple(reversed(chain))) for v, w, chain in bwd
                    ]

    def _elevating_search(
        self,
        source: int,
        j: int,
        adjacency: List[List[Tuple[int, float, Optional[int]]]],
        cap: int,
    ) -> Optional[List[Tuple[int, float, Tuple[int, ...]]]]:
        """Upward search from ``source`` through sub-``j`` levels.

        Returns ``(terminal, distance, packed chain)`` for every first
        crossing into level ``>= j``; ``None`` when the search exceeds
        ``cap`` settled nodes (the jump table would be incomplete and is
        therefore discarded).
        """
        levels = self.levels
        graph = self.graph
        ws = acquire(graph)
        try:
            c = ws.begin()
            dist = ws.dist
            visit = ws.visit
            parent = ws.parent
            dist[source] = 0.0
            visit[source] = c
            parent[source] = -1
            heap: List[Tuple[float, int]] = [(0.0, source)]
            settled = 0
            terminals: List[Tuple[int, float]] = []
            while heap:
                d, u = heappop(heap)
                if d > dist[u]:
                    continue
                settled += 1
                if settled > cap:
                    return None
                if levels[u] >= j:
                    terminals.append((u, d))
                    continue  # first crossing: do not expand further
                for v, w, _mid in adjacency[u]:
                    nd = d + w
                    if visit[v] != c:
                        visit[v] = c
                        dist[v] = nd
                        parent[v] = u
                        heappush(heap, (nd, v))
                    elif nd < dist[v]:
                        dist[v] = nd
                        parent[v] = u
                        heappush(heap, (nd, v))
            out: List[Tuple[int, float, Tuple[int, ...]]] = []
            for node, d in terminals:
                chain = [node]
                x = node
                while x != source:
                    x = parent[x]
                    chain.append(x)
                chain.reverse()  # source .. node, consecutive pairs are edges
                out.append((node, d, tuple(chain)))
            return out
        finally:
            release(graph, ws)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Network distance via the constrained bidirectional search."""
        d, _ = self._query(source, target, want_parents=False)
        return d

    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """Shortest path: constrained search, then two-hop unpacking."""
        d, meet = self._query(source, target, want_parents=True)
        if meet is None:
            return None
        node, parent_f, parent_b = meet
        packed: List[int] = []
        segments: List[Tuple[int, ...]] = []
        x = node
        while x != source:
            pred, chain = parent_f[x]
            segments.append(chain)
            x = pred
        packed.append(source)
        for chain in reversed(segments):
            packed.extend(chain[1:])
        x = node
        while x != target:
            nxt, chain = parent_b[x]
            packed.extend(chain[1:])
            x = nxt
        nodes = self._unpack(packed)
        return Path(tuple(nodes), d)

    def _unpack(self, packed: List[int]) -> List[int]:
        middle = self._res.middle
        nodes: List[int] = [packed[0]]
        stack: List[Tuple[int, int]] = [
            (packed[i], packed[i + 1]) for i in range(len(packed) - 2, -1, -1)
        ]
        while stack:
            a, b = stack.pop()
            mid = middle.get((a, b))
            if mid is None:
                nodes.append(b)
            else:
                stack.append((mid, b))
                stack.append((a, mid))
        return nodes

    def _query(
        self, source: int, target: int, want_parents: bool
    ) -> Tuple[float, Optional[Tuple[int, Dict[int, _Parent], Dict[int, _Parent]]]]:
        if source == target:
            return 0.0, (source, {}, {})
        res = self._res
        up_out, up_in = res.up_out, res.up_in
        levels = self.levels
        node_grid = self.node_grid
        h = self.h
        proximity = self.proximity
        stall = self.stall_on_demand
        j_sep = (
            node_grid.coarsest_separating_level(source, target)
            if self.use_elevating
            else 0
        )

        graph = self.graph
        ws_f = acquire(graph)
        ws_b = acquire(graph)
        cf = ws_f.begin()
        cb = ws_b.begin()
        dist_f = ws_f.dist
        dist_b = ws_b.dist
        visit_f = ws_f.visit
        visit_b = ws_b.visit
        parent_f: Dict[int, _Parent] = {}
        parent_b: Dict[int, _Parent] = {}
        dist_f[source] = 0.0
        visit_f[source] = cf
        dist_b[target] = 0.0
        visit_b[target] = cb
        heap_f: List[Tuple[float, int]] = [(0.0, source)]
        heap_b: List[Tuple[float, int]] = [(0.0, target)]
        best = INF
        best_node: Optional[int] = None
        # Inlined proximity test: node v at level i must share a 3x3-cell
        # region of R_{i+1} with the anchor, i.e. the cell Chebyshev
        # distance at shift i is <= 2.  Anchor cells are precomputed per
        # level so the hot loop is pure integer arithmetic.
        fx = node_grid._fx
        fy = node_grid._fy
        if proximity:
            src_cx = [fx[source] >> i for i in range(h)]
            src_cy = [fy[source] >> i for i in range(h)]
            tgt_cx = [fx[target] >> i for i in range(h)]
            tgt_cy = [fy[target] >> i for i in range(h)]

        def allowed_f(v: int) -> bool:
            lv = levels[v]
            if lv >= h:
                return True
            return (
                -2 <= (fx[v] >> lv) - src_cx[lv] <= 2
                and -2 <= (fy[v] >> lv) - src_cy[lv] <= 2
            )

        def allowed_b(v: int) -> bool:
            lv = levels[v]
            if lv >= h:
                return True
            return (
                -2 <= (fx[v] >> lv) - tgt_cx[lv] <= 2
                and -2 <= (fy[v] >> lv) - tgt_cy[lv] <= 2
            )

        try:
            while heap_f or heap_b:
                top_f = heap_f[0][0] if heap_f else INF
                top_b = heap_b[0][0] if heap_b else INF
                if best <= min(top_f, top_b):
                    break
                forward = top_f <= top_b
                if forward:
                    d, u = heappop(heap_f)
                    if d > dist_f[u]:
                        continue
                    if visit_b[u] == cb and d + dist_b[u] < best:
                        best = d + dist_b[u]
                        best_node = u
                    if stall and self._stalled(u, d, dist_f, visit_f, cf, up_in):
                        continue
                    jumped = False
                    if j_sep and levels[u] < j_sep:
                        per_level = self._elev_f.get(u)
                        if per_level:
                            jj = max((k for k in per_level if k <= j_sep), default=None)
                            if jj is not None and jj > levels[u]:
                                jumped = True
                                for v, w, chain in per_level[jj]:
                                    nd = d + w
                                    if (
                                        visit_f[v] != cf or nd < dist_f[v]
                                    ) and (not proximity or allowed_f(v)):
                                        visit_f[v] = cf
                                        dist_f[v] = nd
                                        if want_parents:
                                            parent_f[v] = (u, chain)
                                        heappush(heap_f, (nd, v))
                    if not jumped:
                        for v, w, _mid in up_out[u]:
                            nd = d + w
                            if visit_f[v] != cf:
                                if not proximity or allowed_f(v):
                                    visit_f[v] = cf
                                    dist_f[v] = nd
                                    if want_parents:
                                        parent_f[v] = (u, (u, v))
                                    heappush(heap_f, (nd, v))
                            elif nd < dist_f[v]:
                                if not proximity or allowed_f(v):
                                    dist_f[v] = nd
                                    if want_parents:
                                        parent_f[v] = (u, (u, v))
                                    heappush(heap_f, (nd, v))
                else:
                    d, u = heappop(heap_b)
                    if d > dist_b[u]:
                        continue
                    if visit_f[u] == cf and d + dist_f[u] < best:
                        best = d + dist_f[u]
                        best_node = u
                    if stall and self._stalled(u, d, dist_b, visit_b, cb, up_out):
                        continue
                    jumped = False
                    if j_sep and levels[u] < j_sep:
                        per_level = self._elev_b.get(u)
                        if per_level:
                            jj = max((k for k in per_level if k <= j_sep), default=None)
                            if jj is not None and jj > levels[u]:
                                jumped = True
                                for v, w, chain in per_level[jj]:
                                    nd = d + w
                                    if (
                                        visit_b[v] != cb or nd < dist_b[v]
                                    ) and (not proximity or allowed_b(v)):
                                        visit_b[v] = cb
                                        dist_b[v] = nd
                                        if want_parents:
                                            # chain runs v .. u in graph order
                                            parent_b[v] = (u, chain)
                                        heappush(heap_b, (nd, v))
                    if not jumped:
                        for v, w, _mid in up_in[u]:
                            nd = d + w
                            if visit_b[v] != cb:
                                if not proximity or allowed_b(v):
                                    visit_b[v] = cb
                                    dist_b[v] = nd
                                    if want_parents:
                                        parent_b[v] = (u, (v, u))
                                    heappush(heap_b, (nd, v))
                            elif nd < dist_b[v]:
                                if not proximity or allowed_b(v):
                                    dist_b[v] = nd
                                    if want_parents:
                                        parent_b[v] = (u, (v, u))
                                    heappush(heap_b, (nd, v))
        finally:
            release(graph, ws_b)
            release(graph, ws_f)
        if best_node is None:
            return INF, None
        return best, (best_node, parent_f, parent_b)

    @staticmethod
    def _stalled(
        u: int,
        d: float,
        dist: List[float],
        visit: List[int],
        c: int,
        reverse_adj: List[List[Tuple[int, float, Optional[int]]]],
    ) -> bool:
        for v, w, _ in reverse_adj[u]:
            if visit[v] == c and dist[v] + w < d:
                return True
        return False
