"""FC — the first-cut index (Section 3).

FC demonstrates the paper's key idea in its simplest form:

* node levels come from the *exact* arterial-edge computation on the full
  graph (:func:`repro.core.hierarchy.exact_levels`);
* a shortcut ``u -> v`` is added whenever the shortest path from ``u`` to
  ``v`` passes only through nodes whose levels are lower than both
  endpoints', with length equal to that distance (§3.1);
* queries run two alternating constrained Dijkstra traversals over the
  hierarchy, subject to the **level constraint** (never descend) and the
  **proximity constraint** (at level ``i``, stay within the 3x3-cell
  regions of ``R_{i+1}`` around the query endpoint) (§3.2).

As the paper stresses, FC's preprocessing is prohibitive for large
networks — the constructor enforces a node cap so nobody builds it on a
continent by accident.  The shortcut chains are retained, so unlike the
paper's distance-only presentation, this implementation answers shortest
path queries too (each shortcut unpacks to its stored interior).
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..baselines.base import QueryEngine
from ..graph.graph import Graph
from ..graph.path import Path
from ..graph.workspace import acquire, release
from ..spatial.grid import GridPyramid, NodeGrid
from .hierarchy import LevelAssignment, exact_levels

__all__ = ["FCIndex"]

INF = float("inf")


class FCIndex(QueryEngine):
    """The first-cut index of Section 3.

    Parameters
    ----------
    graph:
        The road network; must have at most ``max_nodes`` nodes.
    pyramid:
        Optional pre-built grid pyramid.
    proximity:
        Enable the proximity constraint at query time.
    max_nodes:
        Safety cap on the input size (FC preprocessing is the paper's
        acknowledged bottleneck: per-region shortest paths over the full
        graph).
    """

    name = "FC"

    DEFAULT_MAX_NODES = 5_000

    def __init__(
        self,
        graph: Graph,
        pyramid: Optional[GridPyramid] = None,
        proximity: bool = True,
        max_nodes: Optional[int] = None,
    ) -> None:
        super().__init__(graph)
        limit = self.DEFAULT_MAX_NODES if max_nodes is None else max_nodes
        if graph.n > limit:
            raise ValueError(
                f"FC preprocessing is quadratic; {graph.n} nodes exceeds the "
                f"cap of {limit} (pass max_nodes to override, or use AHIndex)"
            )
        self.proximity = proximity
        self.build_times: Dict[str, float] = {}

        t0 = time.perf_counter()
        self.assignment: LevelAssignment = exact_levels(graph, pyramid)
        self.build_times["levels"] = time.perf_counter() - t0
        self.levels: List[int] = self.assignment.levels
        self.node_grid: NodeGrid = self.assignment.node_grid
        self.h: int = self.assignment.h

        t0 = time.perf_counter()
        # Hierarchy adjacency: original edges plus shortcuts, pre-filtered
        # by the level constraint (edges descending in level can never be
        # traversed, per §3.2's remark).
        self._out: List[List[Tuple[int, float]]] = [[] for _ in graph.nodes()]
        self._inn: List[List[Tuple[int, float]]] = [[] for _ in graph.nodes()]
        self._chains: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._edge_weight: Dict[Tuple[int, int], float] = {}
        for u, v, w in graph.edges():
            self._add_hierarchy_edge(u, v, w, None)
        self._build_shortcuts()
        self.build_times["shortcuts"] = time.perf_counter() - t0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add_hierarchy_edge(
        self, u: int, v: int, w: float, chain: Optional[Tuple[int, ...]]
    ) -> None:
        key = (u, v)
        old = self._edge_weight.get(key)
        if old is not None and old <= w:
            return
        self._edge_weight[key] = w
        if old is None:
            self._out[u].append((v, w))
            self._inn[v].append((u, w))
        else:
            self._out[u] = [(x, w if x == v else wx) for x, wx in self._out[u]]
            self._inn[v] = [(x, w if x == u else wx) for x, wx in self._inn[v]]
        if chain is not None:
            self._chains[key] = chain
        else:
            self._chains.pop(key, None)

    def _build_shortcuts(self) -> None:
        """Add a shortcut for every pair whose shortest path stays below
        both endpoints' levels (tracking interiors tie-robustly).

        The per-source Dijkstras share one workspace (``ws.parent`` holds
        the parent pointers); ``maxlev`` needs a second integer column and
        a tie-update rule the versioned arrays do not model, so it stays a
        per-source dict — it only holds the searched ball, not n entries.
        """
        graph = self.graph
        levels = self.levels
        adj = graph.out
        ws = acquire(graph)
        try:
            dist = ws.dist
            visit = ws.visit
            parent = ws.parent
            for u in graph.nodes():
                lu = levels[u]
                if lu == 0:
                    continue  # interiors must have level < 0: impossible
                # Dijkstra from u expanding only through nodes below lu.
                # maxlev[v] = smallest achievable "highest interior level"
                # over all tied shortest u->v paths (min over optimal
                # predecessors).
                c = ws.begin()
                dist[u] = 0.0
                visit[u] = c
                parent[u] = -1
                maxlev: Dict[int, int] = {u: -1}
                settled: List[int] = []
                heap: List[Tuple[float, int]] = [(0.0, u)]
                while heap:
                    d, x = heappop(heap)
                    if d > dist[x]:
                        continue
                    settled.append(x)
                    if x != u and levels[x] >= lu:
                        continue  # terminal: may end a shortcut, not extend
                    interior = maxlev[x] if x == u else max(maxlev[x], levels[x])
                    for y, w in adj[x]:
                        nd = d + w
                        if visit[y] != c:
                            visit[y] = c
                            dist[y] = nd
                            maxlev[y] = interior
                            parent[y] = x
                            heappush(heap, (nd, y))
                        elif nd < dist[y]:
                            dist[y] = nd
                            maxlev[y] = interior
                            parent[y] = x
                            heappush(heap, (nd, y))
                        elif nd == dist[y] and interior < maxlev[y]:
                            maxlev[y] = interior
                            parent[y] = x
                for v in settled:
                    if v == u:
                        continue
                    lv = levels[v]
                    # A multi-hop shortest path may undercut a direct edge;
                    # _add_hierarchy_edge keeps the cheaper of the two.
                    if maxlev[v] < min(lu, lv) and parent[v] != u:
                        chain = self._walk(parent, u, v)
                        self._add_hierarchy_edge(u, v, dist[v], chain)
        finally:
            release(graph, ws)

    @staticmethod
    def _walk(parent: List[int], source: int, target: int) -> Tuple[int, ...]:
        """Reconstruct ``source -> target`` from workspace parent pointers."""
        nodes = [target]
        x = target
        while x != source:
            x = parent[x]
            nodes.append(x)
        nodes.reverse()
        return tuple(nodes)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def index_size(self) -> int:
        """Hierarchy edges stored (original + shortcuts, one direction)."""
        return len(self._edge_weight)

    @property
    def shortcut_count(self) -> int:
        """Number of stored shortcut edges."""
        return len(self._chains)

    def build_time(self) -> float:
        """Total preprocessing seconds."""
        return sum(self.build_times.values())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Distance via level/proximity-constrained alternating search."""
        d, _ = self._query(source, target, want_parents=False)
        return d

    def shortest_path(self, source: int, target: int) -> Optional[Path]:
        """Shortest path: constrained search plus chain expansion."""
        d, meet = self._query(source, target, want_parents=True)
        if meet is None:
            return None
        node, chain_f, chain_b = meet
        packed: List[int] = [node]
        packed.extend(chain_f)
        packed.reverse()
        packed.extend(chain_b)
        nodes: List[int] = [packed[0]]
        for a, b in zip(packed, packed[1:]):
            chain = self._chains.get((a, b))
            if chain is None:
                nodes.append(b)
            else:
                nodes.extend(chain[1:])
        return Path(tuple(nodes), d)

    def _query(
        self, source: int, target: int, want_parents: bool
    ) -> Tuple[float, Optional[Tuple[int, List[int], List[int]]]]:
        """Alternating constrained search.

        Returns ``(distance, (meeting node, chain to source, chain to
        target))`` with both chains excluding the meeting node, or
        ``(inf, None)`` when unreachable.
        """
        if source == target:
            return 0.0, (source, [], [])
        levels = self.levels
        h = self.h
        proximity = self.proximity
        cheb = self.node_grid.chebyshev_cells

        def allowed(anchor: int, v: int) -> bool:
            lv = levels[v]
            if lv >= h:
                return True
            return cheb(lv + 1, anchor, v) <= 2

        graph = self.graph
        ws_f = acquire(graph)
        ws_b = acquire(graph)
        try:
            cf = ws_f.begin()
            cb = ws_b.begin()
            dist_f = ws_f.dist
            dist_b = ws_b.dist
            visit_f = ws_f.visit
            visit_b = ws_b.visit
            parent_f = ws_f.parent
            parent_b = ws_b.parent
            dist_f[source] = 0.0
            visit_f[source] = cf
            dist_b[target] = 0.0
            visit_b[target] = cb
            heap_f: List[Tuple[float, int]] = [(0.0, source)]
            heap_b: List[Tuple[float, int]] = [(0.0, target)]
            best = INF
            best_node: Optional[int] = None
            out, inn = self._out, self._inn
            while heap_f or heap_b:
                top_f = heap_f[0][0] if heap_f else INF
                top_b = heap_b[0][0] if heap_b else INF
                if best <= min(top_f, top_b):
                    break
                if top_f <= top_b:
                    d, u = heappop(heap_f)
                    if d > dist_f[u]:
                        continue
                    if visit_b[u] == cb and d + dist_b[u] < best:
                        best = d + dist_b[u]
                        best_node = u
                    lu = levels[u]
                    for v, w in out[u]:
                        if levels[v] < lu:
                            continue  # level constraint
                        if proximity and not allowed(source, v):
                            continue
                        nd = d + w
                        if visit_f[v] != cf:
                            visit_f[v] = cf
                            dist_f[v] = nd
                            parent_f[v] = u
                            heappush(heap_f, (nd, v))
                        elif nd < dist_f[v]:
                            dist_f[v] = nd
                            parent_f[v] = u
                            heappush(heap_f, (nd, v))
                else:
                    d, u = heappop(heap_b)
                    if d > dist_b[u]:
                        continue
                    if visit_f[u] == cf and d + dist_f[u] < best:
                        best = d + dist_f[u]
                        best_node = u
                    lu = levels[u]
                    for v, w in inn[u]:
                        if levels[v] < lu:
                            continue
                        if proximity and not allowed(target, v):
                            continue
                        nd = d + w
                        if visit_b[v] != cb:
                            visit_b[v] = cb
                            dist_b[v] = nd
                            parent_b[v] = u
                            heappush(heap_b, (nd, v))
                        elif nd < dist_b[v]:
                            dist_b[v] = nd
                            parent_b[v] = u
                            heappush(heap_b, (nd, v))
            if best_node is None:
                return INF, None
            if not want_parents:
                return best, (best_node, [], [])
            # Materialise the two parent chains before the workspaces go
            # back to the pool.
            packed_f: List[int] = []
            x = best_node
            while x != source:
                x = parent_f[x]
                packed_f.append(x)
            packed_b: List[int] = []
            x = best_node
            while x != target:
                x = parent_b[x]
                packed_b.append(x)
            return best, (best_node, packed_f, packed_b)
        finally:
            release(graph, ws_b)
            release(graph, ws_f)
