"""Compact binary serialization of graphs and AH indexes.

The paper's §7 names the index's memory footprint as future work ("as is
the case for mobile devices").  This module provides a dependency-free
binary format for the query-time state of an :class:`AHIndex` — levels,
ranks, the upward search graphs with their two-hop middles, and the grid
pyramid — using ``array``-packed primitives rather than pickle, so the
on-disk footprint is close to the information-theoretic content and the
file is loadable without trusting arbitrary code execution.

Index format (little-endian)::

    magic  b"AHIDX1\\n"
    header: n, h, flags, then pyramid origin_x/origin_y/side as doubles
    arrays: levels[n] (int32), rank[n] (int32)
    up_out: counts[n] (int32), targets (int32), weights (float64),
            middles (int32, -1 for original edges)
    up_in:  same layout

Elevating tables are *not* serialized (they are an optional query
accelerator, cheaply rebuilt); a loaded index answers every query the
saved one did, with ``elevating`` off.

Since the graph substrate is CSR (flat parallel arrays), graphs now
serialize as straight ``array.tofile`` dumps of those columns — *both*
directions, so :func:`load_graph` hands the arrays to
:meth:`Graph.from_csr` verbatim and loading skips re-deriving the reverse
adjacency::

    magic  b"GCSR1\\n"
    header: n, m (int64)
    xs[n], ys[n]                     (float64)
    out_head[n+1] (int64), out_dst[m] (int64), out_w[m] (float64)
    in_head[n+1]  (int64), in_src[m] (int64), in_w[m]  (float64)

Hub-label indexes (:class:`repro.baselines.hl.HubLabelIndex`) get their
own ``HL1`` section: the label columns are already flat parallel arrays,
so the dump is a straight ``array.tofile`` of the eight label columns
plus the shortcut-middle triples that path unpacking needs::

    magic  b"HLIDX1\\n"
    header: n (int64)
    forward:  head[n+1] (int64), count (int64),
              hub (int64), dist (float64), parent (int64)
    backward: same layout
    middles:  count (int64), a (int64), b (int64), mid (int64)

:func:`save_bundle` / :func:`load_bundle` concatenate a graph section
with an index section (AH or HL — the magic picks the loader) so one
file round-trips a deployable (graph, index) pair.

All flat sections move as whole-column ``tobytes`` blocks (loaded back
with ``frombuffer`` under the numpy backend) — no per-entry ``struct``
packing anywhere on the fast paths, and the same bytes regardless of
which :mod:`repro.backend` produced the columns, so bundles are
byte-identical and freely interchangeable between backends.

Buffer sources (the worker-tier substrate)
------------------------------------------
Every loader also accepts an in-memory buffer (``bytes`` / ``bytearray``
/ ``memoryview``) or, via ``mmap=True``, a path to memory-map — the two
transports a multi-process serving tier boots engine replicas from
(:mod:`repro.serve.pool`).  Buffer loads are **zero-copy for the big
read-only sections**: the CSR graph columns come up as
``numpy.frombuffer`` views straight over the buffer under the numpy
backend, and the hub-label columns come up as ``memoryview`` casts on
*both* backends (plain-scalar indexing for the two-pointer merge-join,
``numpy.frombuffer``-viewable for the batched kernels).  An mmap'd
bundle therefore shares its label pages between every worker process
that maps it — N replicas, one page-cache copy.  :func:`bundle_bytes`
is the matching writer-side helper (one in-memory bundle to hand a
worker over a pipe).
"""

from __future__ import annotations

import io
import struct
from array import array
from typing import BinaryIO, List, Optional, Tuple, Union

from .. import backend
from ..baselines.ch import ContractionResult
from ..baselines.hl import HubLabelIndex
from ..graph.graph import Graph
from ..spatial.grid import GridPyramid, NodeGrid
from .ah import AHIndex

__all__ = [
    "save_index",
    "load_index",
    "index_bytes",
    "bundle_bytes",
    "save_hl_index",
    "load_hl_index",
    "save_graph",
    "load_graph",
    "save_bundle",
    "load_bundle",
]

_MAGIC = b"AHIDX1\n"
_HL_MAGIC = b"HLIDX1\n"
_GRAPH_MAGIC = b"GCSR1\n"

_FLAG_PROXIMITY = 1
_FLAG_STALL = 2


# ----------------------------------------------------------------------
# Flat-section I/O: tobytes / frombytes on whole columns
# ----------------------------------------------------------------------
# Every flat section moves through ``col.tobytes()`` / ``fh.read`` as one
# contiguous block: no per-entry ``struct`` packing, works with any
# file-like object (``array.tofile`` needed a real file under numpy), and
# — because stdlib arrays and numpy arrays serialise int64/float64 to the
# same little-endian bytes — the on-disk format is *backend-invariant*:
# bundles written under either backend are byte-identical
# (``tests/test_backend_parity.py`` pins this).
class _BufferReader:
    """File-like ``read()`` over a bytes-like object, serving zero-copy slices.

    Every ``read`` returns a ``memoryview`` window into the underlying
    buffer instead of a fresh ``bytes`` copy, which is what makes
    buffer/mmap loads zero-copy: ``numpy.frombuffer`` and
    ``memoryview.cast`` both view the window, and the views keep the
    buffer (and an mmap behind it) alive for as long as the loaded
    columns live.
    """

    __slots__ = ("_mv", "_pos")

    def __init__(self, buf) -> None:
        mv = memoryview(buf)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        self._mv = mv
        self._pos = 0

    def read(self, nbytes: int = -1) -> memoryview:
        if nbytes is None or nbytes < 0:
            nbytes = len(self._mv) - self._pos
        out = self._mv[self._pos : self._pos + nbytes]
        self._pos += len(out)
        return out


#: Loader sources: a path, an open binary file, or an in-memory buffer.
Source = Union[str, bytes, bytearray, memoryview, BinaryIO]


def _open_source(source: Source, use_mmap: bool = False):
    """Normalise a loader source to ``(file_like, owns_handle)``.

    ``use_mmap=True`` (paths only) memory-maps the file read-only and
    reads through a :class:`_BufferReader`, so the loaded columns view
    the mapping directly — the OS page cache backs every process that
    maps the same bundle, which is the worker-tier sharing story.  The
    mapping is kept alive by the column views and reclaimed by GC; the
    file descriptor is closed as soon as the map exists.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        return _BufferReader(source), False
    if isinstance(source, str):
        if use_mmap:
            import mmap as _mmap

            with open(source, "rb") as f:
                mapped = _mmap.mmap(f.fileno(), 0, access=_mmap.ACCESS_READ)
            return _BufferReader(mapped), False
        return open(source, "rb"), True
    if use_mmap:
        raise ValueError("mmap=True requires a filesystem path source")
    return source, False


def _read_exact(fh, nbytes: int):
    """``nbytes`` from ``fh`` — ``bytes`` from files, a zero-copy
    ``memoryview`` window from buffer sources."""
    buf = fh.read(nbytes)
    if len(buf) != nbytes:
        raise EOFError(
            f"truncated section: wanted {nbytes} bytes, got {len(buf)}"
        )
    return buf


def _write_col(fh: BinaryIO, col) -> None:
    fh.write(col.tobytes())


def _read_i64_col(fh, count: int):
    """An int64 column of the *active* backend, straight off the bytes."""
    return backend.index_col_from_bytes(_read_exact(fh, 8 * count))


def _read_f64_col(fh, count: int):
    """A float64 column of the *active* backend, straight off the bytes."""
    return backend.float_col_from_bytes(_read_exact(fh, 8 * count))


def _read_q_array(fh, count: int) -> array:
    """A stdlib ``array('q')`` (e.g. the shortcut-middle triples).

    Filled via ``frombytes`` rather than the ``array(typecode, buf)``
    constructor: the constructor treats a ``memoryview`` as an iterable
    of byte values and would silently build garbage from buffer sources.
    """
    out = array("q")
    out.frombytes(_read_exact(fh, 8 * count))
    return out


def _read_d_array(fh, count: int) -> array:
    out = array("d")
    out.frombytes(_read_exact(fh, 8 * count))
    return out


def _read_i32_array(fh, count: int) -> array:
    out = array("i")
    out.frombytes(_read_exact(fh, 4 * count))
    return out


def _read_label_col(fh, count: int, typecode: str):
    """One hub-label column: zero-copy from buffers, stdlib from files.

    Buffer sources (bytes / mmap) return a read-only ``memoryview``
    cast — no copy, plain Python scalars on indexing (so the two-pointer
    merge-join keeps its speed), and ``numpy.frombuffer``-viewable for
    the batched kernels — identically on both backends.  File sources
    keep returning stdlib arrays, exactly as before.
    """
    buf = _read_exact(fh, 8 * count)
    if isinstance(buf, memoryview):
        return buf.cast(typecode)
    out = array(typecode)
    out.frombytes(buf)
    return out


def _write_adjacency(
    fh: BinaryIO, adjacency: List[List[Tuple[int, float, Optional[int]]]]
) -> None:
    counts = array("i", (len(adj) for adj in adjacency))
    targets = array("i")
    middles = array("i")
    weights = array("d")
    for adj in adjacency:
        for v, w, mid in adj:
            targets.append(v)
            weights.append(w)
            middles.append(-1 if mid is None else mid)
    _write_col(fh, counts)
    fh.write(struct.pack("<q", len(targets)))
    _write_col(fh, targets)
    _write_col(fh, weights)
    _write_col(fh, middles)


def _read_adjacency(
    fh: BinaryIO, n: int
) -> List[List[Tuple[int, float, Optional[int]]]]:
    counts = _read_i32_array(fh, n)
    (total,) = struct.unpack("<q", _read_exact(fh, 8))
    # tolist() up front so the tuple-building loop below handles plain
    # Python ints/floats only (one C conversion pass per column).
    targets = _read_i32_array(fh, total).tolist()
    weights = _read_d_array(fh, total).tolist()
    middles = _read_i32_array(fh, total).tolist()
    adjacency: List[List[Tuple[int, float, Optional[int]]]] = []
    pos = 0
    for count in counts:
        nxt = pos + count
        adjacency.append(
            [
                (v, w, None if mid < 0 else mid)
                for v, w, mid in zip(
                    targets[pos:nxt], weights[pos:nxt], middles[pos:nxt]
                )
            ]
        )
        pos = nxt
    return adjacency


def save_index(index: AHIndex, sink: Union[str, BinaryIO]) -> None:
    """Write the query-time state of ``index`` to ``sink``."""
    fh: BinaryIO
    own = isinstance(sink, str)
    fh = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        res = index._res
        flags = (_FLAG_PROXIMITY if index.proximity else 0) | (
            _FLAG_STALL if index.stall_on_demand else 0
        )
        pyramid = index.node_grid.pyramid
        fh.write(_MAGIC)
        fh.write(
            struct.pack(
                "<iii3d",
                index.graph.n,
                index.h,
                flags,
                pyramid.origin_x,
                pyramid.origin_y,
                pyramid.side,
            )
        )
        _write_col(fh, array("i", index.levels))
        _write_col(fh, array("i", res.rank))
        _write_adjacency(fh, res.up_out)
        _write_adjacency(fh, res.up_in)
    finally:
        if own:
            fh.close()


def load_index(source: Source, graph: Graph, *, mmap: bool = False) -> AHIndex:
    """Reconstruct a queryable :class:`AHIndex` from ``source``.

    ``source`` may be a path, an open binary file, or an in-memory
    buffer; ``mmap=True`` memory-maps a path source.  ``graph`` must be
    the network the index was built on (used for path validation
    metadata and the node-to-cell mapping); a node-count mismatch is
    rejected.
    """
    fh, own = _open_source(source, mmap)
    try:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError("not an AH index file (bad magic)")
        return _load_index_body(fh, graph)
    finally:
        if own:
            fh.close()


def _load_index_body(fh: BinaryIO, graph: Graph) -> AHIndex:
    """Read everything after the ``AHIDX1`` magic and rebuild the index."""
    n, h, flags, ox, oy, side = struct.unpack("<iii3d", fh.read(36))
    if n != graph.n:
        raise ValueError(
            f"index was built for {n} nodes but the graph has {graph.n}"
        )
    levels = _read_i32_array(fh, n)
    rank = _read_i32_array(fh, n)
    up_out = _read_adjacency(fh, n)
    up_in = _read_adjacency(fh, n)

    middle = {}
    shortcut_count = 0
    for u, adj in enumerate(up_out):
        for v, w, mid in adj:
            if mid is not None:
                middle[(u, v)] = mid
                shortcut_count += 1
    for u, adj in enumerate(up_in):
        for v, w, mid in adj:
            if mid is not None and (v, u) not in middle:
                middle[(v, u)] = mid
                shortcut_count += 1

    index = AHIndex.__new__(AHIndex)
    index.graph = graph
    index.proximity = bool(flags & _FLAG_PROXIMITY)
    index.stall_on_demand = bool(flags & _FLAG_STALL)
    index.use_elevating = False
    index.build_times = {}
    index.assignment = None  # not serialized; query path never reads it
    index.ranking = None
    index.levels = list(levels)
    index.h = h
    index.node_grid = NodeGrid(graph, GridPyramid(ox, oy, side, h))
    index._res = ContractionResult(
        rank=list(rank),
        up_out=up_out,
        up_in=up_in,
        middle=middle,
        shortcut_count=shortcut_count,
    )
    index._elev_f = {}
    index._elev_b = {}
    return index


def index_bytes(index: Union[AHIndex, HubLabelIndex]) -> int:
    """Size of the serialized index in bytes (Figure 10a in real units)."""
    buf = io.BytesIO()
    if isinstance(index, HubLabelIndex):
        save_hl_index(index, buf)
    else:
        save_index(index, buf)
    return buf.tell()


def bundle_bytes(index: Union[AHIndex, HubLabelIndex]) -> bytes:
    """The full :func:`save_bundle` image as one in-memory ``bytes``.

    The transport :mod:`repro.serve.pool` ships to worker processes: one
    serialization in the parent, then each worker boots its replica via
    ``load_bundle(blob)`` with the big columns viewing the blob in place.
    """
    buf = io.BytesIO()
    save_bundle(index, buf)
    return buf.getvalue()


# ----------------------------------------------------------------------
# HL1: hub-label indexes
# ----------------------------------------------------------------------
def _write_label_side(
    fh: BinaryIO, head: array, hub: array, dist: array, parent: array
) -> None:
    _write_col(fh, head)
    fh.write(struct.pack("<q", len(hub)))
    _write_col(fh, hub)
    _write_col(fh, dist)
    _write_col(fh, parent)


def _read_label_side(fh, n: int) -> Tuple:
    # Label columns are backend-independent on the read path: stdlib
    # arrays from file sources (the per-query two-pointer merge-join
    # indexes them scalar-by-scalar; the numpy kernels wrap them in
    # zero-copy views), read-only memoryview casts from buffer/mmap
    # sources (same scalar indexing, zero copy — see _read_label_col).
    head = _read_label_col(fh, n + 1, "q")
    (total,) = struct.unpack("<q", _read_exact(fh, 8))
    hub = _read_label_col(fh, total, "q")
    dist = _read_label_col(fh, total, "d")
    parent = _read_label_col(fh, total, "q")
    return head, hub, dist, parent


def save_hl_index(index: HubLabelIndex, sink: Union[str, BinaryIO]) -> None:
    """Write a hub-label index's query-time state to ``sink``.

    The label columns are dumped verbatim (they already are flat
    arrays); the shortcut-middle dict becomes three parallel int
    columns so path unpacking survives the round-trip.
    """
    own = isinstance(sink, str)
    fh: BinaryIO = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        fh.write(_HL_MAGIC)
        fh.write(struct.pack("<q", index.graph.n))
        _write_label_side(
            fh, index.fwd_head, index.fwd_hub, index.fwd_dist, index.fwd_parent
        )
        _write_label_side(
            fh, index.bwd_head, index.bwd_hub, index.bwd_dist, index.bwd_parent
        )
        middle = index._middle
        fh.write(struct.pack("<q", len(middle)))
        if backend.use_numpy():
            np = backend.np
            pairs = np.fromiter(
                middle.keys(), dtype=np.dtype((np.int64, 2)), count=len(middle)
            ).reshape(len(middle), 2)
            _write_col(fh, np.ascontiguousarray(pairs[:, 0]))
            _write_col(fh, np.ascontiguousarray(pairs[:, 1]))
            _write_col(
                fh, np.fromiter(middle.values(), dtype=np.int64, count=len(middle))
            )
        else:
            a_col = array("q")
            b_col = array("q")
            mid_col = array("q")
            for (a, b), mid in middle.items():
                a_col.append(a)
                b_col.append(b)
                mid_col.append(mid)
            _write_col(fh, a_col)
            _write_col(fh, b_col)
            _write_col(fh, mid_col)
    finally:
        if own:
            fh.close()


def load_hl_index(
    source: Source, graph: Graph, *, mmap: bool = False
) -> HubLabelIndex:
    """Reconstruct a queryable :class:`HubLabelIndex` from ``source``.

    The loaded index answers distance *and* path queries without any
    rebuilding: labels, parent hubs and shortcut middles all come off
    the file.  Buffer sources (``bytes`` or ``mmap=True`` paths) give
    zero-copy read-only label columns — see :func:`_read_label_col`.
    """
    fh, own = _open_source(source, mmap)
    try:
        magic = fh.read(len(_HL_MAGIC))
        if magic != _HL_MAGIC:
            raise ValueError("not a hub-label index file (bad magic)")
        return _load_hl_body(fh, graph)
    finally:
        if own:
            fh.close()


def _load_hl_body(fh: BinaryIO, graph: Graph) -> HubLabelIndex:
    """Read everything after the ``HLIDX1`` magic and rebuild the index."""
    (n,) = struct.unpack("<q", fh.read(8))
    if n != graph.n:
        raise ValueError(
            f"index was built for {n} nodes but the graph has {graph.n}"
        )
    fwd = _read_label_side(fh, n)
    bwd = _read_label_side(fh, n)
    (mcount,) = struct.unpack("<q", _read_exact(fh, 8))
    a_col = _read_q_array(fh, mcount).tolist()
    b_col = _read_q_array(fh, mcount).tolist()
    mid_col = _read_q_array(fh, mcount).tolist()

    index = HubLabelIndex.__new__(HubLabelIndex)
    index.graph = graph
    index.fwd_head, index.fwd_hub, index.fwd_dist, index.fwd_parent = fwd
    index.bwd_head, index.bwd_hub, index.bwd_dist, index.bwd_parent = bwd
    index._middle = dict(zip(zip(a_col, b_col), mid_col))
    # View cache + target-inversion memo (PR 4 state): without this a
    # loaded index would crash on its first distance_table call.
    index._init_runtime_state()
    return index


# ----------------------------------------------------------------------
# Graph CSR serialization
# ----------------------------------------------------------------------
def save_graph(graph: Graph, sink: Union[str, BinaryIO]) -> None:
    """Write ``graph``'s CSR columns (both directions) to ``sink``.

    Every column is a single contiguous ``array.tofile`` block — no
    per-edge Python objects touch the disk path.
    """
    own = isinstance(sink, str)
    fh: BinaryIO = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        fh.write(_GRAPH_MAGIC)
        fh.write(struct.pack("<qq", graph.n, graph.m))
        _write_col(fh, array("d", graph.xs))
        _write_col(fh, array("d", graph.ys))
        _write_col(fh, graph.out_head)
        _write_col(fh, graph.out_dst)
        _write_col(fh, graph.out_w)
        _write_col(fh, graph.in_head)
        _write_col(fh, graph.in_src)
        _write_col(fh, graph.in_w)
    finally:
        if own:
            fh.close()


def load_graph(source: Source, *, mmap: bool = False) -> Graph:
    """Reconstruct a :class:`Graph` from :func:`save_graph` output.

    Both CSR triples come straight off the file, so the load path never
    re-derives the reverse adjacency (and never allocates per-edge
    tuples): it is ``fromfile`` into six flat arrays plus the coordinate
    columns.  From a buffer source under the numpy backend the six CSR
    columns are ``frombuffer`` views over the buffer itself — read-only
    and zero-copy.
    """
    fh, own = _open_source(source, mmap)
    try:
        magic = fh.read(len(_GRAPH_MAGIC))
        if magic != _GRAPH_MAGIC:
            raise ValueError("not a CSR graph file (bad magic)")
        n, m = struct.unpack("<qq", _read_exact(fh, 16))
        # Coordinates stay plain Python lists (Graph.coord hands them
        # out directly); the six CSR columns come up in the active
        # backend's container with zero re-derivation.
        xs = _read_d_array(fh, n).tolist()
        ys = _read_d_array(fh, n).tolist()
        out_head = _read_i64_col(fh, n + 1)
        out_dst = _read_i64_col(fh, m)
        out_w = _read_f64_col(fh, m)
        in_head = _read_i64_col(fh, n + 1)
        in_src = _read_i64_col(fh, m)
        in_w = _read_f64_col(fh, m)
    finally:
        if own:
            fh.close()
    return Graph.from_csr(
        xs, ys, out_head, out_dst, out_w, in_head, in_src, in_w
    )


# ----------------------------------------------------------------------
# Bundles: one file holding the graph and its index
# ----------------------------------------------------------------------
def save_bundle(
    index: Union[AHIndex, HubLabelIndex], sink: Union[str, BinaryIO]
) -> None:
    """Write ``index``'s graph followed by the index itself.

    Works for AH and hub-label indexes alike (the index section's magic
    records which it was).  The result is self-contained:
    :func:`load_bundle` needs no separately-loaded network, which is the
    deployment story the paper's §7 memory-footprint discussion asks
    for.
    """
    own = isinstance(sink, str)
    fh: BinaryIO = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        save_graph(index.graph, fh)
        if isinstance(index, HubLabelIndex):
            save_hl_index(index, fh)
        else:
            save_index(index, fh)
    finally:
        if own:
            fh.close()


def load_bundle(
    source: Source, *, mmap: bool = False
) -> Tuple[Graph, Union[AHIndex, HubLabelIndex]]:
    """Load a ``(graph, index)`` pair written by :func:`save_bundle`.

    The index section's magic selects the loader, so callers get back
    whichever engine the bundle was saved with (``AHIDX1`` and
    ``HLIDX1`` magics are deliberately the same length).

    ``source`` may also be an in-memory buffer (``bytes`` /
    ``bytearray`` / ``memoryview``) or, with ``mmap=True``, a path to
    memory-map — the worker-tier boot paths: a worker process hands
    this either the bundle blob it received over a pipe or the shared
    bundle path, and gets a replica whose big read-only columns view
    that buffer in place (zero-copy under numpy; label columns
    zero-copy on both backends).
    """
    fh, own = _open_source(source, mmap)
    try:
        graph = load_graph(fh)
        magic = fh.read(len(_MAGIC))
        if magic == _MAGIC:
            index = _load_index_body(fh, graph)
        elif magic == _HL_MAGIC:
            index = _load_hl_body(fh, graph)
        else:
            raise ValueError("bundle's index section has an unknown magic")
    finally:
        if own:
            fh.close()
    return graph, index
