"""Compact binary serialization of graphs and AH indexes.

The paper's §7 names the index's memory footprint as future work ("as is
the case for mobile devices").  This module provides a dependency-free
binary format for the query-time state of an :class:`AHIndex` — levels,
ranks, the upward search graphs with their two-hop middles, and the grid
pyramid — using ``array``-packed primitives rather than pickle, so the
on-disk footprint is close to the information-theoretic content and the
file is loadable without trusting arbitrary code execution.

Index format (little-endian)::

    magic  b"AHIDX1\\n"
    header: n, h, flags, then pyramid origin_x/origin_y/side as doubles
    arrays: levels[n] (int32), rank[n] (int32)
    up_out: counts[n] (int32), targets (int32), weights (float64),
            middles (int32, -1 for original edges)
    up_in:  same layout

Elevating tables are *not* serialized (they are an optional query
accelerator, cheaply rebuilt); a loaded index answers every query the
saved one did, with ``elevating`` off.

Since the graph substrate is CSR (flat parallel arrays), graphs now
serialize as straight ``array.tofile`` dumps of those columns — *both*
directions, so :func:`load_graph` hands the arrays to
:meth:`Graph.from_csr` verbatim and loading skips re-deriving the reverse
adjacency::

    magic  b"GCSR1\\n"
    header: n, m (int64)
    xs[n], ys[n]                     (float64)
    out_head[n+1] (int64), out_dst[m] (int64), out_w[m] (float64)
    in_head[n+1]  (int64), in_src[m] (int64), in_w[m]  (float64)

Hub-label indexes (:class:`repro.baselines.hl.HubLabelIndex`) get their
own ``HL1`` section: the label columns are already flat parallel arrays,
so the dump is a straight ``array.tofile`` of the eight label columns
plus the shortcut-middle triples that path unpacking needs::

    magic  b"HLIDX1\\n"
    header: n (int64)
    forward:  head[n+1] (int64), count (int64),
              hub (int64), dist (float64), parent (int64)
    backward: same layout
    middles:  count (int64), a (int64), b (int64), mid (int64)

:func:`save_bundle` / :func:`load_bundle` concatenate a graph section
with an index section (AH or HL — the magic picks the loader) so one
file round-trips a deployable (graph, index) pair.
"""

from __future__ import annotations

import struct
from array import array
from typing import BinaryIO, List, Optional, Tuple, Union

from ..baselines.ch import ContractionResult
from ..baselines.hl import HubLabelIndex
from ..graph.graph import Graph
from ..spatial.grid import GridPyramid, NodeGrid
from .ah import AHIndex

__all__ = [
    "save_index",
    "load_index",
    "index_bytes",
    "save_hl_index",
    "load_hl_index",
    "save_graph",
    "load_graph",
    "save_bundle",
    "load_bundle",
]

_MAGIC = b"AHIDX1\n"
_HL_MAGIC = b"HLIDX1\n"
_GRAPH_MAGIC = b"GCSR1\n"

_FLAG_PROXIMITY = 1
_FLAG_STALL = 2


def _write_adjacency(
    fh: BinaryIO, adjacency: List[List[Tuple[int, float, Optional[int]]]]
) -> None:
    counts = array("i", (len(adj) for adj in adjacency))
    targets = array("i")
    middles = array("i")
    weights = array("d")
    for adj in adjacency:
        for v, w, mid in adj:
            targets.append(v)
            weights.append(w)
            middles.append(-1 if mid is None else mid)
    counts.tofile(fh)
    fh.write(struct.pack("<q", len(targets)))
    targets.tofile(fh)
    weights.tofile(fh)
    middles.tofile(fh)


def _read_adjacency(
    fh: BinaryIO, n: int
) -> List[List[Tuple[int, float, Optional[int]]]]:
    counts = array("i")
    counts.fromfile(fh, n)
    (total,) = struct.unpack("<q", fh.read(8))
    targets = array("i")
    targets.fromfile(fh, total)
    weights = array("d")
    weights.fromfile(fh, total)
    middles = array("i")
    middles.fromfile(fh, total)
    adjacency: List[List[Tuple[int, float, Optional[int]]]] = []
    pos = 0
    for count in counts:
        adj = []
        for _ in range(count):
            mid = middles[pos]
            adj.append((targets[pos], weights[pos], None if mid < 0 else mid))
            pos += 1
        adjacency.append(adj)
    return adjacency


def save_index(index: AHIndex, sink: Union[str, BinaryIO]) -> None:
    """Write the query-time state of ``index`` to ``sink``."""
    fh: BinaryIO
    own = isinstance(sink, str)
    fh = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        res = index._res
        flags = (_FLAG_PROXIMITY if index.proximity else 0) | (
            _FLAG_STALL if index.stall_on_demand else 0
        )
        pyramid = index.node_grid.pyramid
        fh.write(_MAGIC)
        fh.write(
            struct.pack(
                "<iii3d",
                index.graph.n,
                index.h,
                flags,
                pyramid.origin_x,
                pyramid.origin_y,
                pyramid.side,
            )
        )
        array("i", index.levels).tofile(fh)
        array("i", res.rank).tofile(fh)
        _write_adjacency(fh, res.up_out)
        _write_adjacency(fh, res.up_in)
    finally:
        if own:
            fh.close()


def load_index(source: Union[str, BinaryIO], graph: Graph) -> AHIndex:
    """Reconstruct a queryable :class:`AHIndex` from ``source``.

    ``graph`` must be the network the index was built on (used for path
    validation metadata and the node-to-cell mapping); a node-count
    mismatch is rejected.
    """
    own = isinstance(source, str)
    fh = open(source, "rb") if own else source  # type: ignore[assignment]
    try:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError("not an AH index file (bad magic)")
        return _load_index_body(fh, graph)
    finally:
        if own:
            fh.close()


def _load_index_body(fh: BinaryIO, graph: Graph) -> AHIndex:
    """Read everything after the ``AHIDX1`` magic and rebuild the index."""
    n, h, flags, ox, oy, side = struct.unpack("<iii3d", fh.read(36))
    if n != graph.n:
        raise ValueError(
            f"index was built for {n} nodes but the graph has {graph.n}"
        )
    levels = array("i")
    levels.fromfile(fh, n)
    rank = array("i")
    rank.fromfile(fh, n)
    up_out = _read_adjacency(fh, n)
    up_in = _read_adjacency(fh, n)

    middle = {}
    shortcut_count = 0
    for u, adj in enumerate(up_out):
        for v, w, mid in adj:
            if mid is not None:
                middle[(u, v)] = mid
                shortcut_count += 1
    for u, adj in enumerate(up_in):
        for v, w, mid in adj:
            if mid is not None and (v, u) not in middle:
                middle[(v, u)] = mid
                shortcut_count += 1

    index = AHIndex.__new__(AHIndex)
    index.graph = graph
    index.proximity = bool(flags & _FLAG_PROXIMITY)
    index.stall_on_demand = bool(flags & _FLAG_STALL)
    index.use_elevating = False
    index.build_times = {}
    index.assignment = None  # not serialized; query path never reads it
    index.ranking = None
    index.levels = list(levels)
    index.h = h
    index.node_grid = NodeGrid(graph, GridPyramid(ox, oy, side, h))
    index._res = ContractionResult(
        rank=list(rank),
        up_out=up_out,
        up_in=up_in,
        middle=middle,
        shortcut_count=shortcut_count,
    )
    index._elev_f = {}
    index._elev_b = {}
    return index


def index_bytes(index: Union[AHIndex, HubLabelIndex]) -> int:
    """Size of the serialized index in bytes (Figure 10a in real units)."""
    import io

    buf = io.BytesIO()
    if isinstance(index, HubLabelIndex):
        save_hl_index(index, buf)
    else:
        save_index(index, buf)
    return buf.tell()


# ----------------------------------------------------------------------
# HL1: hub-label indexes
# ----------------------------------------------------------------------
def _write_label_side(
    fh: BinaryIO, head: array, hub: array, dist: array, parent: array
) -> None:
    head.tofile(fh)
    fh.write(struct.pack("<q", len(hub)))
    hub.tofile(fh)
    dist.tofile(fh)
    parent.tofile(fh)


def _read_label_side(fh: BinaryIO, n: int) -> Tuple[array, array, array, array]:
    head = array("q")
    head.fromfile(fh, n + 1)
    (total,) = struct.unpack("<q", fh.read(8))
    hub = array("q")
    hub.fromfile(fh, total)
    dist = array("d")
    dist.fromfile(fh, total)
    parent = array("q")
    parent.fromfile(fh, total)
    return head, hub, dist, parent


def save_hl_index(index: HubLabelIndex, sink: Union[str, BinaryIO]) -> None:
    """Write a hub-label index's query-time state to ``sink``.

    The label columns are dumped verbatim (they already are flat
    arrays); the shortcut-middle dict becomes three parallel int
    columns so path unpacking survives the round-trip.
    """
    own = isinstance(sink, str)
    fh: BinaryIO = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        fh.write(_HL_MAGIC)
        fh.write(struct.pack("<q", index.graph.n))
        _write_label_side(
            fh, index.fwd_head, index.fwd_hub, index.fwd_dist, index.fwd_parent
        )
        _write_label_side(
            fh, index.bwd_head, index.bwd_hub, index.bwd_dist, index.bwd_parent
        )
        middle = index._middle
        fh.write(struct.pack("<q", len(middle)))
        a_col = array("q")
        b_col = array("q")
        mid_col = array("q")
        for (a, b), mid in middle.items():
            a_col.append(a)
            b_col.append(b)
            mid_col.append(mid)
        a_col.tofile(fh)
        b_col.tofile(fh)
        mid_col.tofile(fh)
    finally:
        if own:
            fh.close()


def load_hl_index(source: Union[str, BinaryIO], graph: Graph) -> HubLabelIndex:
    """Reconstruct a queryable :class:`HubLabelIndex` from ``source``.

    The loaded index answers distance *and* path queries without any
    rebuilding: labels, parent hubs and shortcut middles all come off
    the file.
    """
    own = isinstance(source, str)
    fh: BinaryIO = open(source, "rb") if own else source  # type: ignore[assignment]
    try:
        magic = fh.read(len(_HL_MAGIC))
        if magic != _HL_MAGIC:
            raise ValueError("not a hub-label index file (bad magic)")
        return _load_hl_body(fh, graph)
    finally:
        if own:
            fh.close()


def _load_hl_body(fh: BinaryIO, graph: Graph) -> HubLabelIndex:
    """Read everything after the ``HLIDX1`` magic and rebuild the index."""
    (n,) = struct.unpack("<q", fh.read(8))
    if n != graph.n:
        raise ValueError(
            f"index was built for {n} nodes but the graph has {graph.n}"
        )
    fwd = _read_label_side(fh, n)
    bwd = _read_label_side(fh, n)
    (mcount,) = struct.unpack("<q", fh.read(8))
    a_col = array("q")
    a_col.fromfile(fh, mcount)
    b_col = array("q")
    b_col.fromfile(fh, mcount)
    mid_col = array("q")
    mid_col.fromfile(fh, mcount)

    index = HubLabelIndex.__new__(HubLabelIndex)
    index.graph = graph
    index.fwd_head, index.fwd_hub, index.fwd_dist, index.fwd_parent = fwd
    index.bwd_head, index.bwd_hub, index.bwd_dist, index.bwd_parent = bwd
    index._middle = {
        (a_col[i], b_col[i]): mid_col[i] for i in range(mcount)
    }
    return index


# ----------------------------------------------------------------------
# Graph CSR serialization
# ----------------------------------------------------------------------
def save_graph(graph: Graph, sink: Union[str, BinaryIO]) -> None:
    """Write ``graph``'s CSR columns (both directions) to ``sink``.

    Every column is a single contiguous ``array.tofile`` block — no
    per-edge Python objects touch the disk path.
    """
    own = isinstance(sink, str)
    fh: BinaryIO = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        fh.write(_GRAPH_MAGIC)
        fh.write(struct.pack("<qq", graph.n, graph.m))
        array("d", graph.xs).tofile(fh)
        array("d", graph.ys).tofile(fh)
        graph.out_head.tofile(fh)
        graph.out_dst.tofile(fh)
        graph.out_w.tofile(fh)
        graph.in_head.tofile(fh)
        graph.in_src.tofile(fh)
        graph.in_w.tofile(fh)
    finally:
        if own:
            fh.close()


def load_graph(source: Union[str, BinaryIO]) -> Graph:
    """Reconstruct a :class:`Graph` from :func:`save_graph` output.

    Both CSR triples come straight off the file, so the load path never
    re-derives the reverse adjacency (and never allocates per-edge
    tuples): it is ``fromfile`` into six flat arrays plus the coordinate
    columns.
    """
    own = isinstance(source, str)
    fh: BinaryIO = open(source, "rb") if own else source  # type: ignore[assignment]
    try:
        magic = fh.read(len(_GRAPH_MAGIC))
        if magic != _GRAPH_MAGIC:
            raise ValueError("not a CSR graph file (bad magic)")
        n, m = struct.unpack("<qq", fh.read(16))
        xs = array("d")
        xs.fromfile(fh, n)
        ys = array("d")
        ys.fromfile(fh, n)
        out_head = array("q")
        out_head.fromfile(fh, n + 1)
        out_dst = array("q")
        out_dst.fromfile(fh, m)
        out_w = array("d")
        out_w.fromfile(fh, m)
        in_head = array("q")
        in_head.fromfile(fh, n + 1)
        in_src = array("q")
        in_src.fromfile(fh, m)
        in_w = array("d")
        in_w.fromfile(fh, m)
    finally:
        if own:
            fh.close()
    return Graph.from_csr(
        xs, ys, out_head, out_dst, out_w, in_head, in_src, in_w
    )


# ----------------------------------------------------------------------
# Bundles: one file holding the graph and its index
# ----------------------------------------------------------------------
def save_bundle(
    index: Union[AHIndex, HubLabelIndex], sink: Union[str, BinaryIO]
) -> None:
    """Write ``index``'s graph followed by the index itself.

    Works for AH and hub-label indexes alike (the index section's magic
    records which it was).  The result is self-contained:
    :func:`load_bundle` needs no separately-loaded network, which is the
    deployment story the paper's §7 memory-footprint discussion asks
    for.
    """
    own = isinstance(sink, str)
    fh: BinaryIO = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        save_graph(index.graph, fh)
        if isinstance(index, HubLabelIndex):
            save_hl_index(index, fh)
        else:
            save_index(index, fh)
    finally:
        if own:
            fh.close()


def load_bundle(
    source: Union[str, BinaryIO],
) -> Tuple[Graph, Union[AHIndex, HubLabelIndex]]:
    """Load a ``(graph, index)`` pair written by :func:`save_bundle`.

    The index section's magic selects the loader, so callers get back
    whichever engine the bundle was saved with (``AHIDX1`` and
    ``HLIDX1`` magics are deliberately the same length).
    """
    own = isinstance(source, str)
    fh: BinaryIO = open(source, "rb") if own else source  # type: ignore[assignment]
    try:
        graph = load_graph(fh)
        magic = fh.read(len(_MAGIC))
        if magic == _MAGIC:
            index = _load_index_body(fh, graph)
        elif magic == _HL_MAGIC:
            index = _load_hl_body(fh, graph)
        else:
            raise ValueError("bundle's index section has an unknown magic")
    finally:
        if own:
            fh.close()
    return graph, index
