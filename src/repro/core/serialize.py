"""Compact binary serialization of graphs and AH indexes.

The paper's §7 names the index's memory footprint as future work ("as is
the case for mobile devices").  This module provides a dependency-free
binary format for the query-time state of an :class:`AHIndex` — levels,
ranks, the upward search graphs with their two-hop middles, and the grid
pyramid — using ``array``-packed primitives rather than pickle, so the
on-disk footprint is close to the information-theoretic content and the
file is loadable without trusting arbitrary code execution.

Index format (little-endian)::

    magic  b"AHIDX1\\n"
    header: n, h, flags, then pyramid origin_x/origin_y/side as doubles
    arrays: levels[n] (int32), rank[n] (int32)
    up_out: counts[n] (int32), targets (int32), weights (float64),
            middles (int32, -1 for original edges)
    up_in:  same layout

Elevating tables are *not* serialized (they are an optional query
accelerator, cheaply rebuilt); a loaded index answers every query the
saved one did, with ``elevating`` off.

Since the graph substrate is CSR (flat parallel arrays), graphs now
serialize as straight ``array.tofile`` dumps of those columns — *both*
directions, so :func:`load_graph` hands the arrays to
:meth:`Graph.from_csr` verbatim and loading skips re-deriving the reverse
adjacency::

    magic  b"GCSR1\\n"
    header: n, m (int64)
    xs[n], ys[n]                     (float64)
    out_head[n+1] (int64), out_dst[m] (int64), out_w[m] (float64)
    in_head[n+1]  (int64), in_src[m] (int64), in_w[m]  (float64)

Hub-label indexes (:class:`repro.baselines.hl.HubLabelIndex`) get their
own ``HL1`` section: the label columns are already flat parallel arrays,
so the dump is a straight ``array.tofile`` of the eight label columns
plus the shortcut-middle triples that path unpacking needs::

    magic  b"HLIDX1\\n"
    header: n (int64)
    forward:  head[n+1] (int64), count (int64),
              hub (int64), dist (float64), parent (int64)
    backward: same layout
    middles:  count (int64), a (int64), b (int64), mid (int64)

``HL2`` is the **compact** hub-label section (the default writer since
the compact-column PR) — same information, ~3-4x fewer bytes, decoded
back to exact values so queries are bit-identical to the flat path::

    magic  b"HLIDX2\\n"
    header: n (int64)
    per direction (forward, then backward):
      dist-encoding byte: 0 = i4, 1 = f8, 2 = dd
      entry count (int64)
      lengths:  per-node label sizes        (uvarint stream, framed)
      hubs:     per node: first hub absolute, then ``delta - 1``
                (hubs are strictly ascending per node)  (uvarint, framed)
      parents:  per entry: 0 = root, else 1 + position of the parent hub
                within the node's own label slice       (uvarint, framed)
      dists:    i4 -> raw int32; f8 -> raw float64;
                dd -> dict size (int64) + float64 delta dictionary
                (sorted by descending frequency, value) + per-entry
                uvarint dictionary indexes (framed)
    middles: count (int64), a (int32), b (int32), mid (int32)

The distance encoding is picked per direction by an **exactness
guard**, in order: ``i4`` when every distance is a non-negative
integral value below 2^31 (int32 -> float64 casts are exact, so query
sums are unchanged); else ``dd`` (*delta dictionary*) when every
entry's distance bit-exactly equals its parent entry's distance plus a
stored float64 delta — true by construction for labels grown one edge
relaxation at a time, and verified entry by entry at save; else raw
``f8``.  Quantisation can therefore never change an answer: lossy
cases fall back to wider sections automatically.

:func:`save_bundle` / :func:`load_bundle` concatenate a graph section
with an index section (AH or HL — the magic picks the loader) so one
file round-trips a deployable (graph, index) pair.

Bundles end with a **CRC trailer** (the robustness PR)::

    per section: offset (int64), length (int64), crc32 (uint32)
    count  (int64)
    magic  b"BCRC1\\n"

The magic sits *last* so the trailer is locatable from the file end
without parsing any section, and so every pre-trailer bundle remains
loadable: :func:`load_bundle` verifies each section's CRC32 before
decoding anything and raises :class:`BundleCorrupted` naming the
failing section — a torn or bit-flipped bundle fails typed instead of
serving garbage — while a trailer-less (legacy) bundle loads with a
one-time :class:`RuntimeWarning`.  Raw ``struct.error`` / ``EOFError``
from a damaged legacy file are wrapped into :class:`BundleCorrupted`
too, so callers need exactly one except clause.

All flat sections move as whole-column ``tobytes`` blocks (loaded back
with ``frombuffer`` under the numpy backend) — no per-entry ``struct``
packing anywhere on the fast paths, and the same bytes regardless of
which :mod:`repro.backend` produced the columns, so bundles are
byte-identical and freely interchangeable between backends.

Buffer sources (the worker-tier substrate)
------------------------------------------
Every loader also accepts an in-memory buffer (``bytes`` / ``bytearray``
/ ``memoryview``) or, via ``mmap=True``, a path to memory-map — the two
transports a multi-process serving tier boots engine replicas from
(:mod:`repro.serve.pool`).  Buffer loads are **zero-copy for the big
read-only sections**: the CSR graph columns come up as
``numpy.frombuffer`` views straight over the buffer under the numpy
backend, and the hub-label columns come up as ``memoryview`` casts on
*both* backends (plain-scalar indexing for the two-pointer merge-join,
``numpy.frombuffer``-viewable for the batched kernels).  An mmap'd
bundle therefore shares its label pages between every worker process
that maps it — N replicas, one page-cache copy.  :func:`bundle_bytes`
is the matching writer-side helper (one in-memory bundle to hand a
worker over a pipe).
"""

from __future__ import annotations

import io
import struct
import sys
import warnings
import zlib
from array import array
from bisect import bisect_left
from typing import BinaryIO, Dict, List, Optional, Tuple, Union

from .. import backend
from ..baselines.base import (
    DistanceRequest,
    OneToManyRequest,
    Request,
    TableRequest,
)
from ..baselines.ch import ContractionResult
from ..baselines.hl import HubLabelIndex
from ..graph.graph import Graph
from ..spatial.grid import GridPyramid, NodeGrid
from .ah import AHIndex

__all__ = [
    "BundleCorrupted",
    "save_index",
    "load_index",
    "index_bytes",
    "bundle_bytes",
    "save_hl_index",
    "load_hl_index",
    "save_graph",
    "load_graph",
    "save_bundle",
    "load_bundle",
    "inspect_bundle",
    "pack_requests",
    "unpack_requests",
    "pack_label_entries",
    "unpack_label_entries",
    "main",
]

_MAGIC = b"AHIDX1\n"
_HL_MAGIC = b"HLIDX1\n"
_HL2_MAGIC = b"HLIDX2\n"
_GRAPH_MAGIC = b"GCSR1\n"

#: HL2 distance-section encodings, in exactness-guard order.
_DIST_I4, _DIST_F8, _DIST_DD = 0, 1, 2
_DIST_ENC_NAMES = {_DIST_I4: "i4", _DIST_F8: "f8", _DIST_DD: "dd"}

_FLAG_PROXIMITY = 1
_FLAG_STALL = 2

#: Bundle CRC trailer (written by :func:`save_bundle`): per-section
#: ``<qqI`` (offset, length, crc32) entries, then the entry count, then
#: the magic — magic LAST so the trailer is found from the file end.
_TRAILER_MAGIC = b"BCRC1\n"
_TRAILER_ENTRY = struct.Struct("<qqI")
_TRAILER_TAIL = 8 + len(_TRAILER_MAGIC)  # count + magic

_MAGIC_NAMES = {
    _MAGIC: "AHIDX1",
    _HL_MAGIC: "HLIDX1",
    _HL2_MAGIC: "HLIDX2",
    _GRAPH_MAGIC: "GCSR1",
}


class BundleCorrupted(ValueError):
    """A serialized bundle/index/graph failed CRC verification or decode.

    ``section`` names where the damage was detected (a section magic
    such as ``"GCSR1"``, or ``"trailer"`` for a mangled trailer);
    ``detail`` says what went wrong.  Subclasses :class:`ValueError` so
    every pre-existing ``except ValueError`` handler keeps working.
    """

    def __init__(self, section: str, detail: str) -> None:
        self.section = section
        self.detail = detail
        super().__init__(f"bundle section {section!r} is corrupted: {detail}")

    def __reduce__(self):
        # Two required __init__ args, one message in .args: the default
        # exception reduce would rebuild from the message alone and
        # TypeError — and this exception crosses worker pipes (a pool
        # replica booting from a torn bundle reports it to the parent).
        return (type(self), (self.section, self.detail))


def _section_name(head: bytes, offset: int) -> str:
    for magic, name in _MAGIC_NAMES.items():
        if head.startswith(magic):
            return name
    return f"section@{offset}"


_warned_crcless = False


def _warn_crcless() -> None:
    """One warning per process for legacy (pre-``BCRC1``) bundles."""
    global _warned_crcless
    if not _warned_crcless:
        _warned_crcless = True
        warnings.warn(
            "bundle has no CRC trailer (pre-BCRC1 format); loading "
            "without integrity verification — re-save to add checksums",
            RuntimeWarning,
            stacklevel=3,
        )


class _CrcWriter:
    """Write-through wrapper that tracks crc32 + byte count per section.

    :func:`save_bundle` routes the section writers through this so the
    trailer entries come straight off the outgoing byte stream — no
    second pass, no seekability requirement on ``sink``.
    """

    __slots__ = ("_fh", "crc", "nbytes")

    def __init__(self, fh: BinaryIO) -> None:
        self._fh = fh
        self.crc = 0
        self.nbytes = 0

    def write(self, data) -> None:
        self._fh.write(data)
        self.crc = zlib.crc32(data, self.crc)
        self.nbytes += len(data)

    def section_done(self) -> Tuple[int, int]:
        """(length, crc) of the section written so far; resets counters."""
        out = (self.nbytes, self.crc)
        self.crc = 0
        self.nbytes = 0
        return out


# ----------------------------------------------------------------------
# Flat-section I/O: tobytes / frombytes on whole columns
# ----------------------------------------------------------------------
# Every flat section moves through ``col.tobytes()`` / ``fh.read`` as one
# contiguous block: no per-entry ``struct`` packing, works with any
# file-like object (``array.tofile`` needed a real file under numpy), and
# — because stdlib arrays and numpy arrays serialise int64/float64 to the
# same little-endian bytes — the on-disk format is *backend-invariant*:
# bundles written under either backend are byte-identical
# (``tests/test_backend_parity.py`` pins this).
class _BufferReader:
    """File-like ``read()`` over a bytes-like object, serving zero-copy slices.

    Every ``read`` returns a ``memoryview`` window into the underlying
    buffer instead of a fresh ``bytes`` copy, which is what makes
    buffer/mmap loads zero-copy: ``numpy.frombuffer`` and
    ``memoryview.cast`` both view the window, and the views keep the
    buffer (and an mmap behind it) alive for as long as the loaded
    columns live.
    """

    __slots__ = ("_mv", "_pos")

    def __init__(self, buf) -> None:
        mv = memoryview(buf)
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        self._mv = mv
        self._pos = 0

    def read(self, nbytes: int = -1) -> memoryview:
        if nbytes is None or nbytes < 0:
            nbytes = len(self._mv) - self._pos
        out = self._mv[self._pos : self._pos + nbytes]
        self._pos += len(out)
        return out


#: Loader sources: a path, an open binary file, or an in-memory buffer.
Source = Union[str, bytes, bytearray, memoryview, BinaryIO]


def _open_source(source: Source, use_mmap: bool = False):
    """Normalise a loader source to ``(file_like, owns_handle)``.

    ``use_mmap=True`` (paths only) memory-maps the file read-only and
    reads through a :class:`_BufferReader`, so the loaded columns view
    the mapping directly — the OS page cache backs every process that
    maps the same bundle, which is the worker-tier sharing story.  The
    mapping is kept alive by the column views and reclaimed by GC; the
    file descriptor is closed as soon as the map exists.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        return _BufferReader(source), False
    if isinstance(source, str):
        if use_mmap:
            import mmap as _mmap

            with open(source, "rb") as f:
                mapped = _mmap.mmap(f.fileno(), 0, access=_mmap.ACCESS_READ)
            return _BufferReader(mapped), False
        return open(source, "rb"), True
    if use_mmap:
        raise ValueError("mmap=True requires a filesystem path source")
    return source, False


def _read_exact(fh, nbytes: int):
    """``nbytes`` from ``fh`` — ``bytes`` from files, a zero-copy
    ``memoryview`` window from buffer sources."""
    buf = fh.read(nbytes)
    if len(buf) != nbytes:
        raise EOFError(
            f"truncated section: wanted {nbytes} bytes, got {len(buf)}"
        )
    return buf


def _write_col(fh: BinaryIO, col) -> None:
    fh.write(col.tobytes())


def _read_i64_col(fh, count: int):
    """An int64 column of the *active* backend, straight off the bytes."""
    return backend.index_col_from_bytes(_read_exact(fh, 8 * count))


def _read_f64_col(fh, count: int):
    """A float64 column of the *active* backend, straight off the bytes."""
    return backend.float_col_from_bytes(_read_exact(fh, 8 * count))


def _read_q_array(fh, count: int) -> array:
    """A stdlib ``array('q')`` (e.g. the shortcut-middle triples).

    Filled via ``frombytes`` rather than the ``array(typecode, buf)``
    constructor: the constructor treats a ``memoryview`` as an iterable
    of byte values and would silently build garbage from buffer sources.
    """
    out = array("q")
    out.frombytes(_read_exact(fh, 8 * count))
    return out


def _read_d_array(fh, count: int) -> array:
    out = array("d")
    out.frombytes(_read_exact(fh, 8 * count))
    return out


def _read_i32_array(fh, count: int) -> array:
    out = array("i")
    out.frombytes(_read_exact(fh, 4 * count))
    return out


def _read_label_col(fh, count: int, typecode: str):
    """One hub-label column: zero-copy from buffers, stdlib from files.

    Buffer sources (bytes / mmap) return a read-only ``memoryview``
    cast — no copy, plain Python scalars on indexing (so the two-pointer
    merge-join keeps its speed), and ``numpy.frombuffer``-viewable for
    the batched kernels — identically on both backends.  File sources
    keep returning stdlib arrays, exactly as before.
    """
    buf = _read_exact(fh, 8 * count)
    if isinstance(buf, memoryview):
        return buf.cast(typecode)
    out = array(typecode)
    out.frombytes(buf)
    return out


def _write_adjacency(
    fh: BinaryIO, adjacency: List[List[Tuple[int, float, Optional[int]]]]
) -> None:
    counts = array("i", (len(adj) for adj in adjacency))
    targets = array("i")
    middles = array("i")
    weights = array("d")
    for adj in adjacency:
        for v, w, mid in adj:
            targets.append(v)
            weights.append(w)
            middles.append(-1 if mid is None else mid)
    _write_col(fh, counts)
    fh.write(struct.pack("<q", len(targets)))
    _write_col(fh, targets)
    _write_col(fh, weights)
    _write_col(fh, middles)


def _read_adjacency(
    fh: BinaryIO, n: int
) -> List[List[Tuple[int, float, Optional[int]]]]:
    counts = _read_i32_array(fh, n)
    (total,) = struct.unpack("<q", _read_exact(fh, 8))
    # tolist() up front so the tuple-building loop below handles plain
    # Python ints/floats only (one C conversion pass per column).
    targets = _read_i32_array(fh, total).tolist()
    weights = _read_d_array(fh, total).tolist()
    middles = _read_i32_array(fh, total).tolist()
    adjacency: List[List[Tuple[int, float, Optional[int]]]] = []
    pos = 0
    for count in counts:
        nxt = pos + count
        adjacency.append(
            [
                (v, w, None if mid < 0 else mid)
                for v, w, mid in zip(
                    targets[pos:nxt], weights[pos:nxt], middles[pos:nxt]
                )
            ]
        )
        pos = nxt
    return adjacency


def save_index(index: AHIndex, sink: Union[str, BinaryIO]) -> None:
    """Write the query-time state of ``index`` to ``sink``."""
    fh: BinaryIO
    own = isinstance(sink, str)
    fh = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        res = index._res
        flags = (_FLAG_PROXIMITY if index.proximity else 0) | (
            _FLAG_STALL if index.stall_on_demand else 0
        )
        pyramid = index.node_grid.pyramid
        fh.write(_MAGIC)
        fh.write(
            struct.pack(
                "<iii3d",
                index.graph.n,
                index.h,
                flags,
                pyramid.origin_x,
                pyramid.origin_y,
                pyramid.side,
            )
        )
        _write_col(fh, array("i", index.levels))
        _write_col(fh, array("i", res.rank))
        _write_adjacency(fh, res.up_out)
        _write_adjacency(fh, res.up_in)
    finally:
        if own:
            fh.close()


def load_index(source: Source, graph: Graph, *, mmap: bool = False) -> AHIndex:
    """Reconstruct a queryable :class:`AHIndex` from ``source``.

    ``source`` may be a path, an open binary file, or an in-memory
    buffer; ``mmap=True`` memory-maps a path source.  ``graph`` must be
    the network the index was built on (used for path validation
    metadata and the node-to-cell mapping); a node-count mismatch is
    rejected.
    """
    fh, own = _open_source(source, mmap)
    try:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError("not an AH index file (bad magic)")
        try:
            return _load_index_body(fh, graph)
        except (struct.error, EOFError) as exc:
            raise BundleCorrupted("AHIDX1", str(exc)) from exc
    finally:
        if own:
            fh.close()


def _load_index_body(fh: BinaryIO, graph: Graph) -> AHIndex:
    """Read everything after the ``AHIDX1`` magic and rebuild the index."""
    n, h, flags, ox, oy, side = struct.unpack("<iii3d", fh.read(36))
    if n != graph.n:
        raise ValueError(
            f"index was built for {n} nodes but the graph has {graph.n}"
        )
    levels = _read_i32_array(fh, n)
    rank = _read_i32_array(fh, n)
    up_out = _read_adjacency(fh, n)
    up_in = _read_adjacency(fh, n)

    middle = {}
    shortcut_count = 0
    for u, adj in enumerate(up_out):
        for v, w, mid in adj:
            if mid is not None:
                middle[(u, v)] = mid
                shortcut_count += 1
    for u, adj in enumerate(up_in):
        for v, w, mid in adj:
            if mid is not None and (v, u) not in middle:
                middle[(v, u)] = mid
                shortcut_count += 1

    index = AHIndex.__new__(AHIndex)
    index.graph = graph
    index.proximity = bool(flags & _FLAG_PROXIMITY)
    index.stall_on_demand = bool(flags & _FLAG_STALL)
    index.use_elevating = False
    index.build_times = {}
    index.assignment = None  # not serialized; query path never reads it
    index.ranking = None
    index.levels = list(levels)
    index.h = h
    index.node_grid = NodeGrid(graph, GridPyramid(ox, oy, side, h))
    index._res = ContractionResult(
        rank=list(rank),
        up_out=up_out,
        up_in=up_in,
        middle=middle,
        shortcut_count=shortcut_count,
    )
    index._elev_f = {}
    index._elev_b = {}
    return index


def index_bytes(
    index: Union[AHIndex, HubLabelIndex], *, compact: bool = True
) -> int:
    """Size of the serialized index in bytes (Figure 10a in real units)."""
    buf = io.BytesIO()
    if isinstance(index, HubLabelIndex):
        save_hl_index(index, buf, compact=compact)
    else:
        save_index(index, buf)
    return buf.tell()


def bundle_bytes(
    index: Union[AHIndex, HubLabelIndex], *, compact: bool = True
) -> bytes:
    """The full :func:`save_bundle` image as one in-memory ``bytes``.

    The transport :mod:`repro.serve.pool` ships to worker processes: one
    serialization in the parent, then each worker boots its replica via
    ``load_bundle(blob)`` with the big columns viewing the blob in place.
    Compact by default — the HL2 section shrinks the bytes a worker boot
    moves over its pipe ~3x; pass ``compact=False`` for the flat HL1
    image whose label columns load as zero-copy views.
    """
    buf = io.BytesIO()
    save_bundle(index, buf, compact=compact)
    return buf.getvalue()


# ----------------------------------------------------------------------
# HL1: hub-label indexes (flat int64/float64 columns)
# ----------------------------------------------------------------------
def _coerce_col(col, typecode: str):
    """An 8-byte-wide image of a label column (no copy when already 8B).

    Lets the flat HL1 writer accept a compact-domain index (int32
    columns, possibly int32 distances): widening int32 -> int64/float64
    is exact, so a compact index saved with ``compact=False`` produces
    the same HL1 bytes as the original flat index did.
    """
    if getattr(col, "itemsize", 8) == 8:
        return col
    return array(typecode, col)


def _write_label_side(
    fh: BinaryIO, head: array, hub: array, dist: array, parent: array
) -> None:
    hub = _coerce_col(hub, "q")
    _write_col(fh, _coerce_col(head, "q"))
    fh.write(struct.pack("<q", len(hub)))
    _write_col(fh, hub)
    _write_col(fh, _coerce_col(dist, "d"))
    _write_col(fh, _coerce_col(parent, "q"))


def _read_label_side(fh, n: int) -> Tuple:
    # Label columns are backend-independent on the read path: stdlib
    # arrays from file sources (the per-query two-pointer merge-join
    # indexes them scalar-by-scalar; the numpy kernels wrap them in
    # zero-copy views), read-only memoryview casts from buffer/mmap
    # sources (same scalar indexing, zero copy — see _read_label_col).
    head = _read_label_col(fh, n + 1, "q")
    (total,) = struct.unpack("<q", _read_exact(fh, 8))
    hub = _read_label_col(fh, total, "q")
    dist = _read_label_col(fh, total, "d")
    parent = _read_label_col(fh, total, "q")
    return head, hub, dist, parent


def save_hl_index(
    index: HubLabelIndex, sink: Union[str, BinaryIO], *, compact: bool = True
) -> None:
    """Write a hub-label index's query-time state to ``sink``.

    ``compact=True`` (the default) writes the delta-encoded ``HL2``
    section — ~3-4x smaller, decoded back to exact values (see the
    module docstring's exactness guard).  ``compact=False`` keeps the
    flat ``HL1`` dump: label columns verbatim, zero-copy viewable
    straight off a buffer/mmap load.  Either way the shortcut-middle
    dict rides along as parallel int columns so path unpacking survives
    the round-trip, and both loaders answer identically.
    """
    own = isinstance(sink, str)
    fh: BinaryIO = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        if compact and index.graph.n < 2**31:
            _save_hl2(index, fh)
            return
        fh.write(_HL_MAGIC)
        fh.write(struct.pack("<q", index.graph.n))
        _write_label_side(
            fh, index.fwd_head, index.fwd_hub, index.fwd_dist, index.fwd_parent
        )
        _write_label_side(
            fh, index.bwd_head, index.bwd_hub, index.bwd_dist, index.bwd_parent
        )
        middle = index._middle
        fh.write(struct.pack("<q", len(middle)))
        if backend.use_numpy():
            np = backend.np
            pairs = np.fromiter(
                middle.keys(), dtype=np.dtype((np.int64, 2)), count=len(middle)
            ).reshape(len(middle), 2)
            _write_col(fh, np.ascontiguousarray(pairs[:, 0]))
            _write_col(fh, np.ascontiguousarray(pairs[:, 1]))
            _write_col(
                fh, np.fromiter(middle.values(), dtype=np.int64, count=len(middle))
            )
        else:
            a_col = array("q")
            b_col = array("q")
            mid_col = array("q")
            for (a, b), mid in middle.items():
                a_col.append(a)
                b_col.append(b)
                mid_col.append(mid)
            _write_col(fh, a_col)
            _write_col(fh, b_col)
            _write_col(fh, mid_col)
    finally:
        if own:
            fh.close()


def load_hl_index(
    source: Source, graph: Graph, *, mmap: bool = False
) -> HubLabelIndex:
    """Reconstruct a queryable :class:`HubLabelIndex` from ``source``.

    The loaded index answers distance *and* path queries without any
    rebuilding: labels, parent hubs and shortcut middles all come off
    the file.  The magic picks the decoder: flat ``HL1`` buffer sources
    (``bytes`` or ``mmap=True`` paths) give zero-copy read-only label
    columns (see :func:`_read_label_col`); compact ``HL2`` sections are
    decoded into int32 columns whose queries are bit-identical to the
    flat path's.
    """
    fh, own = _open_source(source, mmap)
    try:
        magic = fh.read(len(_HL_MAGIC))
        try:
            if magic == _HL_MAGIC:
                return _load_hl_body(fh, graph)
            if magic == _HL2_MAGIC:
                return _load_hl2_body(fh, graph)
        except (struct.error, EOFError) as exc:
            section = "HLIDX1" if magic == _HL_MAGIC else "HLIDX2"
            raise BundleCorrupted(section, str(exc)) from exc
        raise ValueError("not a hub-label index file (bad magic)")
    finally:
        if own:
            fh.close()


def _load_hl_body(fh: BinaryIO, graph: Graph) -> HubLabelIndex:
    """Read everything after the ``HLIDX1`` magic and rebuild the index."""
    (n,) = struct.unpack("<q", fh.read(8))
    if n != graph.n:
        raise ValueError(
            f"index was built for {n} nodes but the graph has {graph.n}"
        )
    fwd = _read_label_side(fh, n)
    bwd = _read_label_side(fh, n)
    (mcount,) = struct.unpack("<q", _read_exact(fh, 8))
    a_col = _read_q_array(fh, mcount).tolist()
    b_col = _read_q_array(fh, mcount).tolist()
    mid_col = _read_q_array(fh, mcount).tolist()

    index = HubLabelIndex.__new__(HubLabelIndex)
    index.graph = graph
    index.fwd_head, index.fwd_hub, index.fwd_dist, index.fwd_parent = fwd
    index.bwd_head, index.bwd_hub, index.bwd_dist, index.bwd_parent = bwd
    index._middle = dict(zip(zip(a_col, b_col), mid_col))
    # View cache + target-inversion memo (PR 4 state): without this a
    # loaded index would crash on its first distance_table call.
    index._init_runtime_state()
    return index


# ----------------------------------------------------------------------
# HL2: compact hub-label sections (varint streams + delta-dict dists)
# ----------------------------------------------------------------------
# Encode and decode are deliberately pure-Python loops over plain ints
# and floats: both backends therefore produce (and accept) the exact
# same bytes, preserving serialize's backend-invariance guarantee.  The
# loops touch each label entry a constant number of times — tens of
# milliseconds at the repo's benchmark scales, amortised over a bundle
# that is ~3-4x smaller on disk, over every pipe, and in every mmap.
def _uvarint_append(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _uvarint_decode(buf) -> List[int]:
    """Every uvarint in ``buf`` (the streams are framed, so bounds are
    known); one flat pass, no per-value function calls."""
    out: List[int] = []
    append = out.append
    value = 0
    shift = 0
    for b in buf:
        if b & 0x80:
            value |= (b & 0x7F) << shift
            shift += 7
        else:
            append(value | (b << shift))
            value = 0
            shift = 0
    if shift:
        raise ValueError("truncated uvarint stream")
    return out


def _write_blob(fh: BinaryIO, blob: bytes) -> None:
    fh.write(struct.pack("<q", len(blob)))
    fh.write(blob)


def _read_blob(fh):
    (nbytes,) = struct.unpack("<q", _read_exact(fh, 8))
    return _read_exact(fh, nbytes)


def _encode_dists(dists: list, parent_pos: list) -> Tuple[int, bytes]:
    """Pick the narrowest *exact* distance encoding and build its payload.

    Guard order: ``i4`` when every distance is a non-negative integral
    value below 2^31 (int32 and float64 agree exactly on those, so the
    query path's sums cannot change); else ``dd`` when every entry's
    distance bit-exactly equals its parent entry's distance plus a
    float64 delta — verified here value by value, never assumed; else
    the raw ``f8`` fallback.  Deterministic, so save -> load -> save is
    byte-identical.
    """
    i4_ok = True
    for d in dists:
        if not (0 <= d <= 0x7FFFFFFF and d == int(d)):
            i4_ok = False
            break
    if i4_ok:
        return _DIST_I4, array("i", (int(d) for d in dists)).tobytes()

    deltas = [0.0] * len(dists)
    dd_ok = True
    for k, d in enumerate(dists):
        p = parent_pos[k]
        dp = dists[p] if p >= 0 else 0.0
        delta = d - dp
        if dp + delta != d:  # reconstruction would not be bit-exact
            dd_ok = False
            break
        deltas[k] = delta
    if dd_ok:
        freq: Dict[float, int] = {}
        for delta in deltas:
            freq[delta] = freq.get(delta, 0) + 1
        values = sorted(freq, key=lambda v: (-freq[v], v))
        lookup = {v: i for i, v in enumerate(values)}
        idx_stream = bytearray()
        for delta in deltas:
            _uvarint_append(idx_stream, lookup[delta])
        payload = struct.pack("<q", len(values))
        payload += array("d", values).tobytes()
        payload += struct.pack("<q", len(idx_stream)) + bytes(idx_stream)
        return _DIST_DD, payload

    return _DIST_F8, array("d", (float(d) for d in dists)).tobytes()


def _encode_label_side(head, hub, dist, parent) -> Tuple[int, int, bytes, bytes, bytes, bytes]:
    """One direction's columns -> compact streams.

    Returns ``(enc, count, lengths, hubs, parents, dist_payload)``.
    Hubs are strictly ascending per node, so each node stores its first
    hub absolute and then ``delta - 1``; parents become 1-based
    positions *within the node's own label slice* (0 = root), which the
    pruning invariant guarantees exist (every kept hub's search-tree
    parent is itself a kept hub).
    """
    heads = head.tolist()
    hubs = hub.tolist()
    dists = dist.tolist()
    parents = parent.tolist()
    n = len(heads) - 1
    count = len(hubs)
    lengths = bytearray()
    hub_stream = bytearray()
    parent_stream = bytearray()
    parent_pos = [-1] * count  # absolute index of each entry's parent
    for u in range(n):
        lo, hi = heads[u], heads[u + 1]
        _uvarint_append(lengths, hi - lo)
        prev = 0
        for k in range(lo, hi):
            h = hubs[k]
            _uvarint_append(hub_stream, h if k == lo else h - prev - 1)
            prev = h
            p = parents[k]
            if p < 0:
                _uvarint_append(parent_stream, 0)
            else:
                pos = bisect_left(hubs, p, lo, hi)
                if pos == hi or hubs[pos] != p:
                    raise ValueError(
                        "label parent outside its node's label slice; "
                        "cannot compact"
                    )
                parent_pos[k] = pos
                _uvarint_append(parent_stream, pos - lo + 1)
    enc, dist_payload = _encode_dists(dists, parent_pos)
    return (
        enc,
        count,
        bytes(lengths),
        bytes(hub_stream),
        bytes(parent_stream),
        dist_payload,
    )


def _decode_label_side(fh, n: int) -> Tuple:
    """One HL2 direction -> ``(head, hub, dist, parent, enc)`` columns.

    ``head``/``hub``/``parent`` come back as int32 stdlib arrays (the
    compact query domain); ``dist`` as int32 for ``i4`` sections and
    float64 for ``dd``/``f8`` — in all cases holding the exact values
    the flat columns held.
    """
    enc, count = struct.unpack("<Bq", _read_exact(fh, 9))
    lengths = _uvarint_decode(_read_blob(fh))
    if len(lengths) != n:
        raise ValueError("HL2 lengths stream does not match the node count")
    hub_codes = _uvarint_decode(_read_blob(fh))
    parent_codes = _uvarint_decode(_read_blob(fh))
    if len(hub_codes) != count or len(parent_codes) != count:
        raise ValueError("HL2 label streams do not match the entry count")
    head = array("i", bytes(4 * (n + 1)))
    hub = array("i", bytes(4 * count))
    parent = array("i", bytes(4 * count))
    pabs = [-1] * count  # absolute parent index, for delta resolution
    pos = 0
    for u, ln in enumerate(lengths):
        base = pos
        prev = 0
        for j in range(ln):
            code = hub_codes[pos]
            prev = code if j == 0 else prev + code + 1
            hub[pos] = prev
            pos += 1
        head[u + 1] = pos
        for k in range(base, pos):
            code = parent_codes[k]
            if code:
                pabs[k] = base + code - 1
                parent[k] = hub[base + code - 1]
            else:
                parent[k] = -1
    if pos != count:
        raise ValueError("HL2 lengths disagree with the entry count")

    if enc == _DIST_I4:
        dist = _read_i32_array(fh, count)
    elif enc == _DIST_F8:
        dist = _read_d_array(fh, count)
    elif enc == _DIST_DD:
        (dsize,) = struct.unpack("<q", _read_exact(fh, 8))
        values = _read_d_array(fh, dsize).tolist()
        codes = _uvarint_decode(_read_blob(fh))
        if len(codes) != count:
            raise ValueError("HL2 delta indexes do not match the entry count")
        dist = array("d", bytes(8 * count))
        done = bytearray(count)
        for k in range(count):
            if done[k]:
                continue
            chain = [k]
            x = pabs[k]
            while x >= 0 and not done[x]:
                chain.append(x)
                x = pabs[x]
                if len(chain) > count:
                    raise ValueError("HL2 parent positions form a cycle")
            for j in reversed(chain):
                p = pabs[j]
                dp = dist[p] if p >= 0 else 0.0
                dist[j] = dp + values[codes[j]]
                done[j] = 1
    else:
        raise ValueError(f"unknown HL2 distance encoding {enc}")
    return head, hub, dist, parent, enc


# ----------------------------------------------------------------------
# Worker-tier column transport (request lanes + build-band sync chunks)
# ----------------------------------------------------------------------
# Transient wire formats for repro.serve.pool: same uvarint / width
# discipline as HL2, but never written to disk — a dispatcher packs a
# planner sub-batch (or a build worker packs a band's label entries)
# into one flat block, ships it through a shared-memory lane, and the
# other side reconstructs exact values.  Pure-Python loops over plain
# ints/floats keep the bytes identical under both backends.

#: Request kind codes in the REQCOL block (order is part of the format).
_REQ_DISTANCE, _REQ_ONE_TO_MANY, _REQ_TABLE = 0, 1, 2

#: Label-chunk distance encodings: raw float64, or uvarint when every
#: distance is a non-negative integral (int -> float64 is exact there).
_CHUNK_F8, _CHUNK_UV = 0, 1


def pack_requests(requests) -> Optional[bytes]:
    """A planner sub-batch -> one flat REQCOL block (or ``None``).

    Layout (little-endian)::

        u8  width          4 or 8 (HLIDX2's width discipline: int32
                           columns when every node id fits, else int64)
        <q  nreq
        kinds[nreq]        u8: 0 distance, 1 one_to_many, 2 table
        <q  nmeta; meta    uvarint stream, request order: one_to_many
                           contributes ``len(targets)``, table
                           contributes ``len(sources), len(targets)``
        <q  nids; ids      node-id column (width bytes each), request
                           order: distance ``s, t``; one_to_many
                           ``s, targets...``; table ``sources...,
                           targets...``

    Returns ``None`` when the batch contains anything but the three
    exact planner request types (e.g. a test-hook ``CrashRequest``) —
    those sub-batches keep the pickled pipe path, which preserves
    arbitrary request objects by construction.
    """
    kinds = bytearray()
    meta = bytearray()
    ids: List[int] = []
    for req in requests:
        t = type(req)
        if t is DistanceRequest:
            kinds.append(_REQ_DISTANCE)
            ids.append(req.source)
            ids.append(req.target)
        elif t is OneToManyRequest:
            kinds.append(_REQ_ONE_TO_MANY)
            _uvarint_append(meta, len(req.targets))
            ids.append(req.source)
            ids.extend(req.targets)
        elif t is TableRequest:
            kinds.append(_REQ_TABLE)
            _uvarint_append(meta, len(req.sources))
            _uvarint_append(meta, len(req.targets))
            ids.extend(req.sources)
            ids.extend(req.targets)
        else:
            return None
    width = 4
    for v in ids:
        if not 0 <= v <= 0x7FFFFFFF:
            width = 8
            break
    out = bytearray()
    out.append(width)
    out += struct.pack("<q", len(kinds))
    out += kinds
    out += struct.pack("<q", len(meta))
    out += meta
    out += struct.pack("<q", len(ids))
    out += array("i" if width == 4 else "q", ids).tobytes()
    return bytes(out)


def unpack_requests(blob) -> List[Request]:
    """REQCOL block -> typed planner requests, exact round-trip.

    The constructors re-coerce every id to a plain Python ``int``, so
    reconstructed requests group, hash, and execute exactly like the
    originals — :func:`pack_requests` then this is the identity on the
    three planner request types.
    """
    buf = memoryview(blob)
    width = buf[0]
    if width not in (4, 8):
        raise ValueError(f"bad REQCOL width {width}")
    pos = 1
    (nreq,) = struct.unpack_from("<q", buf, pos)
    pos += 8
    kinds = bytes(buf[pos : pos + nreq])
    pos += nreq
    (nmeta,) = struct.unpack_from("<q", buf, pos)
    pos += 8
    counts = _uvarint_decode(buf[pos : pos + nmeta])
    pos += nmeta
    (nids,) = struct.unpack_from("<q", buf, pos)
    pos += 8
    end = pos + nids * width
    if end > len(buf):
        raise ValueError("REQCOL id column truncated")
    ids = backend.ids_from_bytes(buf[pos:end], width)
    out: List[Request] = []
    mpos = 0
    ipos = 0
    for code in kinds:
        if code == _REQ_DISTANCE:
            out.append(DistanceRequest(ids[ipos], ids[ipos + 1]))
            ipos += 2
        elif code == _REQ_ONE_TO_MANY:
            k = counts[mpos]
            mpos += 1
            out.append(OneToManyRequest(ids[ipos], ids[ipos + 1 : ipos + 1 + k]))
            ipos += 1 + k
        elif code == _REQ_TABLE:
            ns, nt = counts[mpos], counts[mpos + 1]
            mpos += 2
            out.append(
                TableRequest(ids[ipos : ipos + ns], ids[ipos + ns : ipos + ns + nt])
            )
            ipos += ns + nt
        else:
            raise ValueError(f"unknown REQCOL request kind {code}")
    return out


def pack_label_entries(entries) -> bytes:
    """Build-band label entries -> one packed LBLCHUNK block.

    ``entries`` is the build workers' sync unit: ``(u, fwd, bwd)`` per
    node, each side a hub-ascending list of ``(hub, dist, parent)``
    tuples whose parent is either ``-1`` (root) or a hub of the *same*
    side (the pruning invariant — see ``_pruned_upward_labels``).  The
    block stores hubs as first-absolute-then-``delta-1`` uvarints and
    parents as 1-based in-slice positions, exactly like HL2; distances
    ride as raw float64, or as uvarints when every value is integral
    (bit-exact either way).  Replaces the pickled entry lists the
    barrier-mode build broadcasts — same information, a fraction of the
    bytes, and shareable through one shared-memory write.
    """
    stream = bytearray()
    dists: List[float] = []
    nnodes = 0
    for u, f, b in entries:
        nnodes += 1
        _uvarint_append(stream, u)
        _uvarint_append(stream, len(f))
        _uvarint_append(stream, len(b))
        for side in (f, b):
            prev = -1
            for hub, _, _ in side:
                _uvarint_append(stream, hub - prev - 1)
                prev = hub
            hubs = [e[0] for e in side]
            for hub, _, par in side:
                if par < 0:
                    _uvarint_append(stream, 0)
                else:
                    ppos = bisect_left(hubs, par)
                    if ppos >= len(hubs) or hubs[ppos] != par:
                        raise ValueError(
                            f"label entry parent {par} of hub {hub} is not "
                            "a kept hub of the same node"
                        )
                    _uvarint_append(stream, ppos + 1)
            for _, d, _ in side:
                dists.append(d)
    enc = _CHUNK_UV
    for d in dists:
        if not (0.0 <= d <= 9007199254740992.0 and float(int(d)) == d):
            enc = _CHUNK_F8
            break
    out = bytearray()
    out.append(enc)
    out += struct.pack("<q", nnodes)
    out += struct.pack("<q", len(stream))
    out += stream
    if enc == _CHUNK_UV:
        dstream = bytearray()
        for d in dists:
            _uvarint_append(dstream, int(d))
        out += struct.pack("<q", len(dstream))
        out += dstream
    else:
        out += struct.pack("<q", len(dists) * 8)
        out += array("d", dists).tobytes()
    return bytes(out)


def unpack_label_entries(blob) -> List[tuple]:
    """LBLCHUNK block -> ``(u, fwd, bwd)`` entry lists, exact round-trip."""
    buf = memoryview(blob)
    enc = buf[0]
    (nnodes,) = struct.unpack_from("<q", buf, 1)
    (nstream,) = struct.unpack_from("<q", buf, 9)
    pos = 17
    codes = _uvarint_decode(buf[pos : pos + nstream])
    pos += nstream
    (ndist,) = struct.unpack_from("<q", buf, pos)
    pos += 8
    if enc == _CHUNK_UV:
        dvals = [float(v) for v in _uvarint_decode(buf[pos : pos + ndist])]
    elif enc == _CHUNK_F8:
        darr = array("d")
        darr.frombytes(bytes(buf[pos : pos + ndist]))
        dvals = darr.tolist()
    else:
        raise ValueError(f"unknown LBLCHUNK distance encoding {enc}")
    out: List[tuple] = []
    ci = 0
    di = 0
    for _ in range(nnodes):
        u, nf, nb = codes[ci], codes[ci + 1], codes[ci + 2]
        ci += 3
        sides = []
        for count in (nf, nb):
            hubs: List[int] = []
            prev = -1
            for _ in range(count):
                prev = prev + 1 + codes[ci]
                ci += 1
                hubs.append(prev)
            entries = []
            for k in range(count):
                p = codes[ci]
                ci += 1
                par = -1 if p == 0 else hubs[p - 1]
                entries.append((hubs[k], dvals[di], par))
                di += 1
            sides.append(entries)
        out.append((u, sides[0], sides[1]))
    return out


def _save_hl2(index: HubLabelIndex, fh: BinaryIO) -> None:
    fh.write(_HL2_MAGIC)
    fh.write(struct.pack("<q", index.graph.n))
    for head, hub, dist, parent in (
        (index.fwd_head, index.fwd_hub, index.fwd_dist, index.fwd_parent),
        (index.bwd_head, index.bwd_hub, index.bwd_dist, index.bwd_parent),
    ):
        enc, count, lengths, hubs, parents, dist_payload = _encode_label_side(
            head, hub, dist, parent
        )
        fh.write(struct.pack("<Bq", enc, count))
        _write_blob(fh, lengths)
        _write_blob(fh, hubs)
        _write_blob(fh, parents)
        fh.write(dist_payload)
    middle = index._middle
    fh.write(struct.pack("<q", len(middle)))
    a_col = array("i")
    b_col = array("i")
    mid_col = array("i")
    for (a, b), mid in middle.items():
        a_col.append(a)
        b_col.append(b)
        mid_col.append(mid)
    _write_col(fh, a_col)
    _write_col(fh, b_col)
    _write_col(fh, mid_col)


def _load_hl2_body(fh, graph: Graph) -> HubLabelIndex:
    """Read everything after the ``HLIDX2`` magic and rebuild the index."""
    (n,) = struct.unpack("<q", _read_exact(fh, 8))
    if n != graph.n:
        raise ValueError(
            f"index was built for {n} nodes but the graph has {graph.n}"
        )
    fwd = _decode_label_side(fh, n)
    bwd = _decode_label_side(fh, n)
    (mcount,) = struct.unpack("<q", _read_exact(fh, 8))
    a_col = _read_i32_array(fh, mcount).tolist()
    b_col = _read_i32_array(fh, mcount).tolist()
    mid_col = _read_i32_array(fh, mcount).tolist()

    index = HubLabelIndex.__new__(HubLabelIndex)
    index.graph = graph
    index.fwd_head, index.fwd_hub, index.fwd_dist, index.fwd_parent = fwd[:4]
    index.bwd_head, index.bwd_hub, index.bwd_dist, index.bwd_parent = bwd[:4]
    index._middle = dict(zip(zip(a_col, b_col), mid_col))
    index.domain = "compact"
    index.dist_encoding = (_DIST_ENC_NAMES[fwd[4]], _DIST_ENC_NAMES[bwd[4]])
    index._init_runtime_state()
    return index


# ----------------------------------------------------------------------
# Graph CSR serialization
# ----------------------------------------------------------------------
def save_graph(graph: Graph, sink: Union[str, BinaryIO]) -> None:
    """Write ``graph``'s CSR columns (both directions) to ``sink``.

    Every column is a single contiguous ``array.tofile`` block — no
    per-edge Python objects touch the disk path.
    """
    own = isinstance(sink, str)
    fh: BinaryIO = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        fh.write(_GRAPH_MAGIC)
        fh.write(struct.pack("<qq", graph.n, graph.m))
        _write_col(fh, array("d", graph.xs))
        _write_col(fh, array("d", graph.ys))
        _write_col(fh, graph.out_head)
        _write_col(fh, graph.out_dst)
        _write_col(fh, graph.out_w)
        _write_col(fh, graph.in_head)
        _write_col(fh, graph.in_src)
        _write_col(fh, graph.in_w)
    finally:
        if own:
            fh.close()


def load_graph(source: Source, *, mmap: bool = False) -> Graph:
    """Reconstruct a :class:`Graph` from :func:`save_graph` output.

    Both CSR triples come straight off the file, so the load path never
    re-derives the reverse adjacency (and never allocates per-edge
    tuples): it is ``fromfile`` into six flat arrays plus the coordinate
    columns.  From a buffer source under the numpy backend the six CSR
    columns are ``frombuffer`` views over the buffer itself — read-only
    and zero-copy.
    """
    fh, own = _open_source(source, mmap)
    try:
        magic = fh.read(len(_GRAPH_MAGIC))
        if magic != _GRAPH_MAGIC:
            raise ValueError("not a CSR graph file (bad magic)")
        try:
            n, m = struct.unpack("<qq", _read_exact(fh, 16))
            # Coordinates stay plain Python lists (Graph.coord hands them
            # out directly); the six CSR columns come up in the active
            # backend's container with zero re-derivation.
            xs = _read_d_array(fh, n).tolist()
            ys = _read_d_array(fh, n).tolist()
            out_head = _read_i64_col(fh, n + 1)
            out_dst = _read_i64_col(fh, m)
            out_w = _read_f64_col(fh, m)
            in_head = _read_i64_col(fh, n + 1)
            in_src = _read_i64_col(fh, m)
            in_w = _read_f64_col(fh, m)
        except (struct.error, EOFError) as exc:
            raise BundleCorrupted("GCSR1", str(exc)) from exc
    finally:
        if own:
            fh.close()
    return Graph.from_csr(
        xs, ys, out_head, out_dst, out_w, in_head, in_src, in_w
    )


# ----------------------------------------------------------------------
# Bundles: one file holding the graph and its index
# ----------------------------------------------------------------------
def save_bundle(
    index: Union[AHIndex, HubLabelIndex],
    sink: Union[str, BinaryIO],
    *,
    compact: bool = True,
    crc: bool = True,
) -> None:
    """Write ``index``'s graph followed by the index itself.

    Works for AH and hub-label indexes alike (the index section's magic
    records which it was).  The result is self-contained:
    :func:`load_bundle` needs no separately-loaded network, which is the
    deployment story the paper's §7 memory-footprint discussion asks
    for.  ``compact`` selects HL2 vs HL1 for hub-label sections (AH
    sections are unaffected).

    ``crc=True`` (the default) appends the ``BCRC1`` trailer — one
    (offset, length, crc32) entry per section — so :func:`load_bundle`
    can verify integrity before decoding; ``crc=False`` reproduces the
    legacy trailer-less format.
    """
    own = isinstance(sink, str)
    fh: BinaryIO = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        w = _CrcWriter(fh)
        entries = []
        offset = 0
        save_graph(index.graph, w)  # type: ignore[arg-type]
        length, section_crc = w.section_done()
        entries.append((offset, length, section_crc))
        offset += length
        if isinstance(index, HubLabelIndex):
            save_hl_index(index, w, compact=compact)  # type: ignore[arg-type]
        else:
            save_index(index, w)  # type: ignore[arg-type]
        length, section_crc = w.section_done()
        entries.append((offset, length, section_crc))
        if crc:
            for entry in entries:
                fh.write(_TRAILER_ENTRY.pack(*entry))
            fh.write(struct.pack("<q", len(entries)))
            fh.write(_TRAILER_MAGIC)
    finally:
        if own:
            fh.close()


def _parse_trailer_tail(tail: bytes, total: int):
    """``(count, trailer_start)`` from a bundle's last bytes, or None.

    ``tail`` is the final ``_TRAILER_TAIL`` bytes of the image and
    ``total`` the number of bundle bytes; a present-but-implausible
    trailer raises (it means the trailer itself took the damage).
    """
    if len(tail) < _TRAILER_TAIL or tail[8:] != _TRAILER_MAGIC:
        return None
    (count,) = struct.unpack("<q", tail[:8])
    tstart = total - _TRAILER_TAIL - _TRAILER_ENTRY.size * count
    if count <= 0 or tstart < 0:
        raise BundleCorrupted(
            "trailer", f"implausible section count {count}"
        )
    return count, tstart


def _check_entry(offset: int, length: int, limit: int) -> None:
    if offset < 0 or length < 0 or offset + length > limit:
        raise BundleCorrupted(
            "trailer",
            f"section entry ({offset}, {length}) outside the "
            f"{limit}-byte data region",
        )


def _verify_crc_trailer(fh) -> str:
    """Verify a bundle's ``BCRC1`` trailer before anything is decoded.

    Returns ``"verified"``, ``"legacy"`` (no trailer — caller warns) or
    ``"skipped"`` (non-seekable stream, nothing to be done); raises
    :class:`BundleCorrupted` naming the damaged section on mismatch.
    The read position is left where it was found.
    """
    if isinstance(fh, _BufferReader):
        mv, base = fh._mv, fh._pos
        total = len(mv) - base
        if total < _TRAILER_TAIL:
            return "legacy"
        parsed = _parse_trailer_tail(bytes(mv[len(mv) - _TRAILER_TAIL :]), total)
        if parsed is None:
            return "legacy"
        count, tstart = parsed
        for i in range(count):
            offset, length, crc = _TRAILER_ENTRY.unpack_from(
                mv, base + tstart + _TRAILER_ENTRY.size * i
            )
            _check_entry(offset, length, tstart)
            actual = zlib.crc32(mv[base + offset : base + offset + length])
            if actual != crc:
                name = _section_name(
                    bytes(mv[base + offset : base + offset + 8]), offset
                )
                raise BundleCorrupted(
                    name,
                    f"CRC mismatch (stored 0x{crc:08x}, "
                    f"computed 0x{actual:08x})",
                )
        return "verified"
    # Real file handle: verify by seeking, then restore the position.
    try:
        pos = fh.tell()
        fh.seek(0, 2)
        end = fh.tell()
    except (OSError, AttributeError, io.UnsupportedOperation):
        return "skipped"
    try:
        if end - pos < _TRAILER_TAIL:
            return "legacy"
        fh.seek(end - _TRAILER_TAIL)
        parsed = _parse_trailer_tail(fh.read(_TRAILER_TAIL), end - pos)
        if parsed is None:
            return "legacy"
        count, tstart = parsed
        fh.seek(pos + tstart)
        entries = [
            _TRAILER_ENTRY.unpack(fh.read(_TRAILER_ENTRY.size))
            for _ in range(count)
        ]
        for offset, length, crc in entries:
            _check_entry(offset, length, tstart)
            fh.seek(pos + offset)
            actual = 0
            remaining = length
            while remaining:
                chunk = fh.read(min(remaining, 1 << 20))
                if not chunk:
                    raise BundleCorrupted(
                        "trailer", "file shorter than its trailer claims"
                    )
                actual = zlib.crc32(chunk, actual)
                remaining -= len(chunk)
            if actual != crc:
                fh.seek(pos + offset)
                name = _section_name(fh.read(8), offset)
                raise BundleCorrupted(
                    name,
                    f"CRC mismatch (stored 0x{crc:08x}, "
                    f"computed 0x{actual:08x})",
                )
        return "verified"
    finally:
        fh.seek(pos)


def load_bundle(
    source: Source, *, mmap: bool = False, verify: bool = True
) -> Tuple[Graph, Union[AHIndex, HubLabelIndex]]:
    """Load a ``(graph, index)`` pair written by :func:`save_bundle`.

    The index section's magic selects the loader, so callers get back
    whichever engine the bundle was saved with (``AHIDX1`` and
    ``HLIDX1`` magics are deliberately the same length).

    ``source`` may also be an in-memory buffer (``bytes`` /
    ``bytearray`` / ``memoryview``) or, with ``mmap=True``, a path to
    memory-map — the worker-tier boot paths: a worker process hands
    this either the bundle blob it received over a pipe or the shared
    bundle path, and gets a replica whose big read-only columns view
    that buffer in place (zero-copy under numpy; label columns
    zero-copy on both backends).

    ``verify=True`` (the default) checks the ``BCRC1`` trailer's
    section CRCs before decoding: a torn or bit-flipped bundle raises
    :class:`BundleCorrupted` naming the failing section instead of
    mis-decoding; a legacy trailer-less bundle loads with a one-time
    :class:`RuntimeWarning`.  Decode-time ``struct.error``/``EOFError``
    (a damaged legacy file) are wrapped into :class:`BundleCorrupted`
    as well.
    """
    fh, own = _open_source(source, mmap)
    try:
        if verify and _verify_crc_trailer(fh) == "legacy":
            _warn_crcless()
        section = "GCSR1"
        try:
            graph = load_graph(fh)
            section = "index"
            magic = fh.read(len(_MAGIC))
            if magic == _MAGIC:
                section = "AHIDX1"
                index = _load_index_body(fh, graph)
            elif magic == _HL_MAGIC:
                section = "HLIDX1"
                index = _load_hl_body(fh, graph)
            elif magic == _HL2_MAGIC:
                section = "HLIDX2"
                index = _load_hl2_body(fh, graph)
            else:
                raise ValueError(
                    "bundle's index section has an unknown magic"
                )
        except (struct.error, EOFError) as exc:
            raise BundleCorrupted(section, str(exc)) from exc
    finally:
        if own:
            fh.close()
    return graph, index


# ----------------------------------------------------------------------
# Inspection: structural footprint report + CLI
# ----------------------------------------------------------------------
def _skip_adjacency_bytes(data: bytes, pos: int, n: int) -> int:
    """Bytes one serialized AH adjacency occupies, starting at ``pos``."""
    (total,) = struct.unpack_from("<q", data, pos + 4 * n)
    return 4 * n + 8 + total * (4 + 8 + 4)


def inspect_bundle(source: Source) -> List[dict]:
    """Parse a bundle's (or bare index/graph file's) section structure.

    Purely structural — nothing is decoded into arrays or objects.
    Returns one dict per section with its magic, byte offset/size and a
    footprint breakdown: per-stream sizes and the distance encoding for
    ``HLIDX2``, label-column bytes for ``HLIDX1``, node/edge counts for
    graphs.  ``label_bytes`` spans everything between a hub-label
    section's header and its middles block, so HL1-vs-HL2 ratios
    compare like with like.  Backs ``python -m repro.serialize
    --inspect`` and the footprint benchmarks.
    """
    fh, own = _open_source(source, False)
    try:
        data = bytes(fh.read(-1))
    finally:
        if own:
            fh.close()
    sections: List[dict] = []
    # A BCRC1 trailer (magic last) bounds the section walk; report it as
    # its own pseudo-section so offsets/sizes still tile the file.
    limit = len(data)
    trailer: Optional[dict] = None
    parsed = (
        _parse_trailer_tail(data[-_TRAILER_TAIL:], len(data))
        if len(data) >= _TRAILER_TAIL
        else None
    )
    if parsed is not None:
        count, tstart = parsed
        entries = [
            _TRAILER_ENTRY.unpack_from(data, tstart + _TRAILER_ENTRY.size * i)
            for i in range(count)
        ]
        limit = tstart
        trailer = {
            "magic": "BCRC1",
            "offset": tstart,
            "bytes": len(data) - tstart,
            "detail": {
                "sections": count,
                "crc32": [
                    {"offset": off, "bytes": ln, "crc32": f"0x{crc:08x}"}
                    for off, ln, crc in entries
                ],
            },
        }
    pos = 0
    while pos < limit:
        start = pos
        if data.startswith(_GRAPH_MAGIC, pos):
            pos += len(_GRAPH_MAGIC)
            n, m = struct.unpack_from("<qq", data, pos)
            pos += 16 + 16 * n + 16 * (n + 1) + 32 * m
            detail = {"n": n, "m": m}
            magic = _GRAPH_MAGIC
        elif data.startswith(_MAGIC, pos):
            pos += len(_MAGIC)
            n = struct.unpack_from("<i", data, pos)[0]
            pos += 36 + 8 * n  # header + levels + rank (int32 each)
            pos += _skip_adjacency_bytes(data, pos, n)
            pos += _skip_adjacency_bytes(data, pos, n)
            detail = {"n": n}
            magic = _MAGIC
        elif data.startswith(_HL_MAGIC, pos):
            pos += len(_HL_MAGIC)
            (n,) = struct.unpack_from("<q", data, pos)
            pos += 8
            label_start = pos
            entries = 0
            per_side = []
            for _ in range(2):
                (total,) = struct.unpack_from("<q", data, pos + 8 * (n + 1))
                entries += total
                per_side.append({"entries": total, "bytes": 8 * (n + 1) + 8 + 24 * total})
                pos += 8 * (n + 1) + 8 + 24 * total
            label_bytes = pos - label_start
            (mcount,) = struct.unpack_from("<q", data, pos)
            pos += 8 + 24 * mcount
            detail = {
                "n": n,
                "entries": entries,
                "label_bytes": label_bytes,
                "bytes_per_entry": round(label_bytes / entries, 3) if entries else 0.0,
                "middles": mcount,
                "encoding": {"hub": "i8", "dist": "f8", "parent": "i8"},
                "sides": per_side,
            }
            magic = _HL_MAGIC
        elif data.startswith(_HL2_MAGIC, pos):
            pos += len(_HL2_MAGIC)
            (n,) = struct.unpack_from("<q", data, pos)
            pos += 8
            label_start = pos
            entries = 0
            encs = []
            per_side = []
            for _ in range(2):
                side_start = pos
                enc, count = struct.unpack_from("<Bq", data, pos)
                pos += 9
                entries += count
                streams = {}
                for name in ("lengths", "hubs", "parents"):
                    (nb,) = struct.unpack_from("<q", data, pos)
                    streams[name] = nb
                    pos += 8 + nb
                if enc == _DIST_I4:
                    streams["dists"] = 4 * count
                    pos += 4 * count
                elif enc == _DIST_F8:
                    streams["dists"] = 8 * count
                    pos += 8 * count
                else:
                    (dsize,) = struct.unpack_from("<q", data, pos)
                    (inb,) = struct.unpack_from("<q", data, pos + 8 + 8 * dsize)
                    streams["dists"] = 8 + 8 * dsize + 8 + inb
                    streams["delta_dict_values"] = dsize
                    pos += streams["dists"]
                encs.append(_DIST_ENC_NAMES[enc])
                per_side.append(
                    {"entries": count, "bytes": pos - side_start, "streams": streams}
                )
            label_bytes = pos - label_start
            (mcount,) = struct.unpack_from("<q", data, pos)
            pos += 8 + 12 * mcount
            detail = {
                "n": n,
                "entries": entries,
                "label_bytes": label_bytes,
                "bytes_per_entry": round(label_bytes / entries, 3) if entries else 0.0,
                "middles": mcount,
                "encoding": {"hub": "uvarint-delta", "dist": "/".join(encs), "parent": "uvarint-pos"},
                "dist_encoding": encs,
                "sides": per_side,
            }
            magic = _HL2_MAGIC
        else:
            raise ValueError(f"unknown section magic at byte {pos}")
        if pos > limit:
            raise EOFError("truncated section: file ends inside a section")
        sections.append(
            {
                "magic": magic.decode().strip(),
                "offset": start,
                "bytes": pos - start,
                "detail": detail,
            }
        )
    if trailer is not None:
        sections.append(trailer)
    return sections


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.serialize --inspect <bundle>``: footprint report."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serialize",
        description="Inspect the section structure of a serialized "
        "bundle / index / graph file.",
    )
    parser.add_argument(
        "--inspect",
        metavar="PATH",
        required=True,
        help="bundle (or bare index/graph) file to report on",
    )
    args = parser.parse_args(argv)
    try:
        sections = inspect_bundle(args.inspect)
    except OSError as exc:
        print(f"error: cannot read {args.inspect}: {exc.strerror or exc}", file=sys.stderr)
        return 2
    except (struct.error, ValueError, EOFError) as exc:
        print(
            f"error: {args.inspect} is not a valid bundle: {exc}", file=sys.stderr
        )
        return 2
    if not sections:
        print(f"error: {args.inspect} is empty (no sections)", file=sys.stderr)
        return 2
    total = 0
    for sec in sections:
        total += sec["bytes"]
        detail = sec["detail"]
        print(f"{sec['magic']:<8} offset={sec['offset']:<12} bytes={sec['bytes']}")
        if "m" in detail:
            print(f"         n={detail['n']} m={detail['m']}")
        elif "entries" in detail:
            enc = detail["encoding"]
            print(
                f"         n={detail['n']} entries={detail['entries']} "
                f"middles={detail['middles']}"
            )
            print(
                f"         label_bytes={detail['label_bytes']} "
                f"({detail['bytes_per_entry']} B/entry)  "
                f"hub={enc['hub']} dist={enc['dist']} parent={enc['parent']}"
            )
            for tag, side in zip(("fwd", "bwd"), detail["sides"]):
                streams = side.get("streams")
                if streams:
                    parts = " ".join(
                        f"{k}={v}" for k, v in streams.items()
                        if k != "delta_dict_values"
                    )
                    print(f"           {tag}: {side['bytes']} B  {parts}")
        elif "sections" in detail:
            crcs = " ".join(e["crc32"] for e in detail["crc32"])
            print(f"         covers {detail['sections']} section(s)  {crcs}")
        else:
            print(f"         n={detail['n']}")
    print(f"total    {total} bytes, {len(sections)} section(s)")
    return 0
