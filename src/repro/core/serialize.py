"""Compact binary serialization of AH indexes.

The paper's §7 names the index's memory footprint as future work ("as is
the case for mobile devices").  This module provides a dependency-free
binary format for the query-time state of an :class:`AHIndex` — levels,
ranks, the upward search graphs with their two-hop middles, and the grid
pyramid — using ``array``-packed primitives rather than pickle, so the
on-disk footprint is close to the information-theoretic content and the
file is loadable without trusting arbitrary code execution.

Format (little-endian)::

    magic  b"AHIDX1\\n"
    header: n, h, flags, then pyramid origin_x/origin_y/side as doubles
    arrays: levels[n] (int32), rank[n] (int32)
    up_out: counts[n] (int32), targets (int32), weights (float64),
            middles (int32, -1 for original edges)
    up_in:  same layout

Elevating tables are *not* serialized (they are an optional query
accelerator, cheaply rebuilt); a loaded index answers every query the
saved one did, with ``elevating`` off.
"""

from __future__ import annotations

import struct
from array import array
from typing import BinaryIO, List, Optional, Tuple, Union

from ..baselines.ch import ContractionResult
from ..graph.graph import Graph
from ..spatial.grid import GridPyramid, NodeGrid
from .ah import AHIndex

__all__ = ["save_index", "load_index", "index_bytes"]

_MAGIC = b"AHIDX1\n"

_FLAG_PROXIMITY = 1
_FLAG_STALL = 2


def _write_adjacency(
    fh: BinaryIO, adjacency: List[List[Tuple[int, float, Optional[int]]]]
) -> None:
    counts = array("i", (len(adj) for adj in adjacency))
    targets = array("i")
    middles = array("i")
    weights = array("d")
    for adj in adjacency:
        for v, w, mid in adj:
            targets.append(v)
            weights.append(w)
            middles.append(-1 if mid is None else mid)
    counts.tofile(fh)
    fh.write(struct.pack("<q", len(targets)))
    targets.tofile(fh)
    weights.tofile(fh)
    middles.tofile(fh)


def _read_adjacency(
    fh: BinaryIO, n: int
) -> List[List[Tuple[int, float, Optional[int]]]]:
    counts = array("i")
    counts.fromfile(fh, n)
    (total,) = struct.unpack("<q", fh.read(8))
    targets = array("i")
    targets.fromfile(fh, total)
    weights = array("d")
    weights.fromfile(fh, total)
    middles = array("i")
    middles.fromfile(fh, total)
    adjacency: List[List[Tuple[int, float, Optional[int]]]] = []
    pos = 0
    for count in counts:
        adj = []
        for _ in range(count):
            mid = middles[pos]
            adj.append((targets[pos], weights[pos], None if mid < 0 else mid))
            pos += 1
        adjacency.append(adj)
    return adjacency


def save_index(index: AHIndex, sink: Union[str, BinaryIO]) -> None:
    """Write the query-time state of ``index`` to ``sink``."""
    fh: BinaryIO
    own = isinstance(sink, str)
    fh = open(sink, "wb") if own else sink  # type: ignore[assignment]
    try:
        res = index._res
        flags = (_FLAG_PROXIMITY if index.proximity else 0) | (
            _FLAG_STALL if index.stall_on_demand else 0
        )
        pyramid = index.node_grid.pyramid
        fh.write(_MAGIC)
        fh.write(
            struct.pack(
                "<iii3d",
                index.graph.n,
                index.h,
                flags,
                pyramid.origin_x,
                pyramid.origin_y,
                pyramid.side,
            )
        )
        array("i", index.levels).tofile(fh)
        array("i", res.rank).tofile(fh)
        _write_adjacency(fh, res.up_out)
        _write_adjacency(fh, res.up_in)
    finally:
        if own:
            fh.close()


def load_index(source: Union[str, BinaryIO], graph: Graph) -> AHIndex:
    """Reconstruct a queryable :class:`AHIndex` from ``source``.

    ``graph`` must be the network the index was built on (used for path
    validation metadata and the node-to-cell mapping); a node-count
    mismatch is rejected.
    """
    own = isinstance(source, str)
    fh = open(source, "rb") if own else source  # type: ignore[assignment]
    try:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError("not an AH index file (bad magic)")
        n, h, flags, ox, oy, side = struct.unpack("<iii3d", fh.read(36))
        if n != graph.n:
            raise ValueError(
                f"index was built for {n} nodes but the graph has {graph.n}"
            )
        levels = array("i")
        levels.fromfile(fh, n)
        rank = array("i")
        rank.fromfile(fh, n)
        up_out = _read_adjacency(fh, n)
        up_in = _read_adjacency(fh, n)
    finally:
        if own:
            fh.close()

    middle = {}
    shortcut_count = 0
    for u, adj in enumerate(up_out):
        for v, w, mid in adj:
            if mid is not None:
                middle[(u, v)] = mid
                shortcut_count += 1
    for u, adj in enumerate(up_in):
        for v, w, mid in adj:
            if mid is not None and (v, u) not in middle:
                middle[(v, u)] = mid
                shortcut_count += 1

    index = AHIndex.__new__(AHIndex)
    index.graph = graph
    index.proximity = bool(flags & _FLAG_PROXIMITY)
    index.stall_on_demand = bool(flags & _FLAG_STALL)
    index.use_elevating = False
    index.build_times = {}
    index.assignment = None  # not serialized; query path never reads it
    index.ranking = None
    index.levels = list(levels)
    index.h = h
    index.node_grid = NodeGrid(graph, GridPyramid(ox, oy, side, h))
    index._res = ContractionResult(
        rank=list(rank),
        up_out=up_out,
        up_in=up_in,
        middle=middle,
        shortcut_count=shortcut_count,
    )
    index._elev_f = {}
    index._elev_b = {}
    return index


def index_bytes(index: AHIndex) -> int:
    """Size of the serialized index in bytes (Figure 10a in real units)."""
    import io

    buf = io.BytesIO()
    save_index(index, buf)
    return buf.tell()
