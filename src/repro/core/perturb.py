"""Weight perturbation for unique shortest paths (Appendix A).

The paper's analysis assumes no two local shortest paths share endpoints
and length (Assumption 2), enforced by adding to each edge a random
integer *nuance* ``ρ(e) ∈ [0, τ-1]`` and comparing paths by
``(length, nuance)`` lexicographically.  Theorem 2 shows
``τ ≥ 32·h·n³·C(Δ,2)`` makes Assumption 2 hold with probability
``≥ 1 − 1/n``.

Our implementation realises the lexicographic comparison numerically: all
weights are scaled by a factor ``S`` and each edge receives a nuance in
``[0, S / (n+1))``, so any simple path's perturbed length is
``S · length + Σ nuance`` with the nuance term too small to reorder paths
of different true length (for integral true lengths), while breaking ties
between equal-length paths — the paper's "multiple narrow-range integers"
remark implemented with one scaled integer per edge.
:meth:`PerturbedGraph.unperturb_distance` inverts the transform.

Exactness discipline
--------------------
``S ≈ n²`` grows fast, and graph weights are ultimately stored as IEEE
doubles: once any quantity in the pipeline crosses ``2^53`` the nuance
bits round away *silently* and the floor division in
:meth:`~PerturbedGraph.unperturb_distance` stops being exact — precisely
the failure mode Assumption 2 exists to rule out.  ``perturb_weights``
therefore does the whole transform in exact **integer** arithmetic when
the original weights are integral, and then checks the worst-case
perturbed *path* length ``(n-1) · max_edge`` against ``2^53``: within
the bound, every Dijkstra partial sum is an exactly-representable
integer and recovery is exact; beyond it, the default is to raise (pass
``strict=False`` to proceed with ``exact=False`` flagged and
division-based approximate recovery).

Note that the *correctness* of this package's indexes never depends on
perturbation (arterial marking is tie-inclusive, see
:mod:`repro.core.arterial`); the module exists for faithfulness and for
experiments on the paper's uniqueness machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from ..graph.graph import Graph

__all__ = ["PerturbedGraph", "perturb_weights", "recommended_tau"]

#: Largest integer magnitude below which IEEE-754 doubles are exact.
_FLOAT_EXACT_LIMIT = 2 ** 53


def recommended_tau(graph: Graph, h: int) -> int:
    """Theorem 2's lower bound for ``τ``: ``32·h·n³·C(Δ,2)``."""
    n = graph.n
    delta = graph.max_degree()
    pairs = delta * (delta - 1) // 2 if delta >= 2 else 1
    return 32 * max(1, h) * n ** 3 * pairs


@dataclass(frozen=True)
class PerturbedGraph:
    """A graph with tie-breaking nuances folded into its weights.

    Attributes
    ----------
    graph:
        The perturbed graph; every weight is ``scale * w + nuance(e)``.
    scale:
        The (integer) multiplier ``S`` applied to original weights.
    nuances:
        Map from directed edge to its integer nuance.
    integral:
        True when every original weight was an integer.
    exact:
        True when recovery via floor division is guaranteed exact:
        integral weights *and* every simple-path sum of perturbed
        weights stays below ``2^53`` (the double-precision integer
        limit), so no nuance bit is ever rounded away.
    """

    graph: Graph
    scale: int
    nuances: Dict[Tuple[int, int], int]
    integral: bool
    exact: bool

    def unperturb_distance(self, perturbed: float) -> float:
        """Recover the original-weight distance from a perturbed one.

        Exact when :attr:`exact` (the nuance share of any simple path is
        below ``scale`` and no rounding occurred anywhere); otherwise
        the closest rational approximation ``perturbed / scale``.
        """
        if perturbed == float("inf"):
            return perturbed
        if self.exact:
            return float(int(perturbed) // self.scale)
        return perturbed / self.scale

    def nuance_of(self, u: int, v: int) -> int:
        """Nuance assigned to edge ``u -> v``."""
        return self.nuances[(u, v)]


def perturb_weights(graph: Graph, seed: int = 0, strict: bool = True) -> PerturbedGraph:
    """Apply Appendix A's perturbation and return the perturbed graph.

    The nuance range is ``[0, B)`` with ``B = max(2, n)`` and the scale
    ``S = B · (n + 1)``: a simple path has at most ``n - 1`` edges, so it
    accumulates strictly less than ``S`` of nuance.  For integer original
    weights the transform runs in exact integer arithmetic, so the true
    distance is always ``perturbed // S`` and path ordering by true
    length is preserved exactly; among equal-length paths, nuances break
    ties uniformly at random, which is Assumption 2's mechanism.

    Exactness cannot be guaranteed when the original weights are not
    integral, or when a worst-case simple path's perturbed length
    ``(n-1) · (S · max_w + B - 1)`` reaches ``2^53`` — beyond that the
    double-precision storage (and Dijkstra's running sums) silently
    round the nuance away.  With ``strict=True`` (default) the overflow
    case raises ``ValueError``; with ``strict=False`` it proceeds and
    the result carries ``exact=False`` so
    :meth:`PerturbedGraph.unperturb_distance` falls back to approximate
    division.
    """
    rng = random.Random(seed)
    n = graph.n
    nuance_bound = max(2, n)
    scale = nuance_bound * (n + 1)
    nuances: Dict[Tuple[int, int], int] = {}
    integral = all(float(w).is_integer() for w in graph.out_w)
    exact = integral
    if integral and graph.m:
        # Worst-case perturbed simple-path sum; if it stays below 2^53
        # every Dijkstra partial sum is an exactly-representable integer.
        max_pw = scale * int(max(graph.out_w)) + nuance_bound - 1
        if (n - 1) * max_pw >= _FLOAT_EXACT_LIMIT:
            if strict:
                raise ValueError(
                    f"perturbation overflow: scale {scale} * max weight "
                    f"{int(max(graph.out_w))} over up to {n - 1} hops "
                    f"exceeds 2^53, so float64 storage would silently "
                    f"drop nuance bits; pass strict=False to accept "
                    f"approximate (exact=False) recovery"
                )
            exact = False
    out = []
    for u in graph.nodes():
        adj = []
        for v, w in graph.out[u]:
            rho = rng.randrange(nuance_bound)
            nuances[(u, v)] = rho
            if integral:
                adj.append((v, scale * int(w) + rho))
            else:
                adj.append((v, scale * w + rho))
        out.append(adj)
    perturbed = Graph(graph.xs, graph.ys, out)
    return PerturbedGraph(perturbed, scale, nuances, integral, exact)
