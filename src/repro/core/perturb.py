"""Weight perturbation for unique shortest paths (Appendix A).

The paper's analysis assumes no two local shortest paths share endpoints
and length (Assumption 2), enforced by adding to each edge a random
integer *nuance* ``ρ(e) ∈ [0, τ-1]`` and comparing paths by
``(length, nuance)`` lexicographically.  Theorem 2 shows
``τ ≥ 32·h·n³·C(Δ,2)`` makes Assumption 2 hold with probability
``≥ 1 − 1/n``.

Our implementation realises the lexicographic comparison numerically: all
weights are scaled by a factor ``S`` and each edge receives a nuance in
``[0, S / (n+1))``, so any simple path's perturbed length is
``S · length + Σ nuance`` with the nuance term too small to reorder paths
of different true length (for integral true lengths), while breaking ties
between equal-length paths — the paper's "multiple narrow-range integers"
remark implemented with one scaled integer per edge.
:meth:`PerturbedGraph.unperturb_distance` inverts the transform.

Note that the *correctness* of this package's indexes never depends on
perturbation (arterial marking is tie-inclusive, see
:mod:`repro.core.arterial`); the module exists for faithfulness and for
experiments on the paper's uniqueness machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from ..graph.graph import Graph

__all__ = ["PerturbedGraph", "perturb_weights", "recommended_tau"]


def recommended_tau(graph: Graph, h: int) -> int:
    """Theorem 2's lower bound for ``τ``: ``32·h·n³·C(Δ,2)``."""
    n = graph.n
    delta = graph.max_degree()
    pairs = delta * (delta - 1) // 2 if delta >= 2 else 1
    return 32 * max(1, h) * n ** 3 * pairs


@dataclass(frozen=True)
class PerturbedGraph:
    """A graph with tie-breaking nuances folded into its weights.

    Attributes
    ----------
    graph:
        The perturbed graph; every weight is ``scale * w + nuance(e)``.
    scale:
        The multiplier ``S`` applied to original weights.
    nuances:
        Map from directed edge to its integer nuance.
    integral:
        True when every original weight was an integer, in which case
        :meth:`unperturb_distance` is exact.
    """

    graph: Graph
    scale: float
    nuances: Dict[Tuple[int, int], int]
    integral: bool

    def unperturb_distance(self, perturbed: float) -> float:
        """Recover the original-weight distance from a perturbed one.

        Exact for integral original weights (the nuance share of any
        simple path is below ``scale``); otherwise the closest rational
        approximation ``perturbed / scale``.
        """
        if perturbed == float("inf"):
            return perturbed
        if self.integral:
            return float(int(perturbed // self.scale))
        return perturbed / self.scale

    def nuance_of(self, u: int, v: int) -> int:
        """Nuance assigned to edge ``u -> v``."""
        return self.nuances[(u, v)]


def perturb_weights(graph: Graph, seed: int = 0) -> PerturbedGraph:
    """Apply Appendix A's perturbation and return the perturbed graph.

    The nuance range is ``[0, B)`` with ``B = max(2, n)`` and the scale
    ``S = B · (n + 1)``: a simple path has at most ``n - 1`` edges, so it
    accumulates strictly less than ``S`` of nuance.  For integer original
    weights the true distance is therefore always ``perturbed // S`` and
    path ordering by true length is preserved exactly; among equal-length
    paths, nuances break ties uniformly at random, which is Assumption
    2's mechanism.
    """
    rng = random.Random(seed)
    n = graph.n
    nuance_bound = max(2, n)
    scale = float(nuance_bound * (n + 1))
    nuances: Dict[Tuple[int, int], int] = {}
    integral = True
    out = []
    for u in graph.nodes():
        adj = []
        for v, w in graph.out[u]:
            rho = rng.randrange(nuance_bound)
            nuances[(u, v)] = rho
            adj.append((v, scale * w + rho))
            if integral and not float(w).is_integer():
                integral = False
        out.append(adj)
    perturbed = Graph(graph.xs, graph.ys, out)
    return PerturbedGraph(perturbed, scale, nuances, integral)
