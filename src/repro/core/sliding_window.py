"""The SlidingWindow algorithm (Appendix B, Figure 13).

Given a path ``P`` and a grid ``R_i`` such that no 3x3-cell region of
``R_i`` covers all of ``P``, SlidingWindow returns a 4x4-cell region
``B`` of ``R_i`` together with a sub-path ``P'`` of ``P`` that is a
*spanning path candidate* of ``B``: its endpoints lie on opposite sides
of one of ``B``'s bisectors in non-adjacent columns, and every node of
``P'`` except possibly its jumping endpoint is covered by ``B``
(Lemma 7).  The paper uses the algorithm purely inside proofs; we
implement it executably because it turns Lemma 2 / Lemma 3 into
machine-checkable properties (:mod:`repro.core.lemmas`).

Construction (following Figure 13, with the jump cases of Lemma 7 spelled
out): scan the path until the cell-space bounding box of the scanned
prefix first reaches 4 cells in width or height at node ``v_theta``; the
trigger node is then a strict extreme along the triggering axis, and the
region is anchored so that the opposite extreme of the prefix sits in the
far outer strip while the body ``v_1 .. v_{theta-1}`` (whose span is at
most 3x3 cells) is fully covered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..spatial.grid import NodeGrid
from ..spatial.regions import Region

__all__ = ["SlidingWindowResult", "sliding_window"]


@dataclass(frozen=True)
class SlidingWindowResult:
    """Output of :func:`sliding_window`.

    Attributes
    ----------
    region:
        The located 4x4-cell region ``B`` of ``R_level``.
    subpath:
        Indices ``(a, b)`` (inclusive) into the input path delimiting the
        spanning sub-path ``P'``.
    axis:
        ``"vertical"`` when ``P'`` spans west-east, ``"horizontal"`` for
        south-north.
    """

    region: Region
    subpath: Tuple[int, int]
    axis: str


def sliding_window(
    node_grid: NodeGrid, path: Sequence[int], level: int
) -> Optional[SlidingWindowResult]:
    """Locate a region of ``R_level`` spanned by a sub-path of ``path``.

    Returns ``None`` when the whole path fits inside a 3x3-cell region of
    ``R_level`` (the negation of Lemma 2's premise).
    """
    if not path:
        return None
    cells = [node_grid.cell_of(level, u) for u in path]
    min_x = max_x = cells[0][0]
    min_y = max_y = cells[0][1]
    theta = None
    for j, (cx, cy) in enumerate(cells):
        min_x = min(min_x, cx)
        max_x = max(max_x, cx)
        min_y = min(min_y, cy)
        max_y = max(max_y, cy)
        if max_x - min_x >= 3 or max_y - min_y >= 3:
            theta = j
            break
    if theta is None:
        return None

    prefix = cells[: theta + 1]
    body = prefix[:-1]  # v_1 .. v_{theta-1}; non-empty because theta >= 1
    # The triggering axis: x if the width reached 4 cells first.
    span_x = max(c[0] for c in prefix) - min(c[0] for c in prefix)
    coord = 0 if span_x >= 3 else 1
    other = 1 - coord
    values = [c[coord] for c in prefix]
    mn, mx = min(values), max(values)
    alpha = values.index(mn)
    beta = values.index(mx)
    a, b = (alpha, beta) if alpha <= beta else (beta, alpha)

    body_vals = [c[coord] for c in body]
    trigger = values[theta]
    if trigger == mx and trigger > max(body_vals):
        # Jumped toward the high side: anchor at the body's minimum so the
        # low extreme sits in the low strip; the trigger node lies at
        # column offset >= 3 (in or beyond the high strip).
        lo_main = mn
    else:
        # Jumped toward the low side: anchor so the body's maximum sits in
        # the high strip; the trigger lies at column offset <= 0.
        lo_main = max(body_vals) - 3

    grid_cells = node_grid.pyramid.cells_per_side(level)
    lo_other = min(c[other] for c in body)
    lo_other = max(0, min(lo_other, grid_cells - 4))
    lo_main = max(0, min(lo_main, grid_cells - 4))
    if coord == 0:
        region = Region(level, lo_main, lo_other)
        axis = "vertical"
    else:
        region = Region(level, lo_other, lo_main)
        axis = "horizontal"
    return SlidingWindowResult(region=region, subpath=(a, b), axis=axis)
