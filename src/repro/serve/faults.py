"""``repro.serve.faults`` — deterministic, seedable fault injection.

The serving tier's resilience claims (watchdogs, hedging, retry,
breakers, CRC-verified replies — see ``repro.serve.pool``) are only as
good as the failures they were demonstrated against.  This module is
the failure generator: a :class:`FaultPlan` scripts *which worker
misbehaves how at which dispatch*, and the pool carries the selected
action to the worker inside the batch message, where
:func:`apply_pre` / :func:`apply_reply` execute it at exactly the
moment the matching production fault would strike.

Design rules:

* **Deterministic.**  A plan is a plain ``{(dispatch, slot): action}``
  mapping; :meth:`FaultPlan.random` derives one from a seed via
  ``random.Random`` — same seed, same outage, every run.  No fault
  ever consults wall-clock state.
* **Consumed once.**  :meth:`FaultPlan.take` pops the action, so the
  pool's retry/hedge machinery re-runs the sub-batch *clean* — the
  harness tests recovery, not permanent sabotage (schedule the same
  ``(dispatch, slot)`` key once per dispatch; repeated failures are
  expressed as faults across consecutive dispatches).
* **Off the hot path.**  The production pool runs with
  ``fault_plan=None`` and every injection site sits behind an
  ``is None`` fast path (mechanically enforced by the
  ``recv-timeout-discipline`` analysis rule).

Worker-side actions (dicts, picklable across the pipe):

==========  ===========================================================
``kill``    ``os._exit`` mid-batch — the OOM-kill / segfault stand-in.
``stall``   sleep ``seconds`` before computing — a stuck-but-alive
            worker (SIGSTOP, lock wedge); invisible to liveness
            checks, only a recv watchdog can see it.
``corrupt`` flip one payload byte *after* the CRC was computed — a
            torn shared-memory write or DMA bit-flip.
``truncate`` drop the payload's last 8 bytes, CRC unchanged — a
            short write.
==========  ===========================================================

Dispatcher-side actions (the symmetric **request-lane** faults, applied
by the pool *before* the frame is sent — the worker only ever sees the
damage, exactly like a torn write it did not cause):

=================  ====================================================
``req_corrupt``    flip one byte of the packed request payload after
                   its CRC went into the control frame.
``req_truncate``   short-write the packed request payload into the
                   lane, frame metadata unchanged.
=================  ====================================================

Request faults are a documented no-op when the sub-batch rides the
pickled pipe path (``request_transport="pipe"``, or a batch carrying
non-column request types): there is no packed payload to damage, and
the contract under test — never a wrong answer — holds trivially.

File-level helpers :func:`torn_copy` / :func:`flipped_copy` damage a
*copy* of a bundle file for the ``BundleCorrupted`` tests; they never
touch the original.
"""

from __future__ import annotations

import os
import random
import shutil
import time
from typing import Dict, Optional, Tuple

__all__ = [
    "CRASH_EXIT_CODE",
    "FaultPlan",
    "apply_pre",
    "apply_reply",
    "apply_request",
    "corrupt",
    "flipped_copy",
    "is_request_fault",
    "kill",
    "req_corrupt",
    "req_truncate",
    "stall",
    "torn_copy",
    "truncate",
]

#: Exit code for a deliberate injected death, so a scripted kill is
#: distinguishable from a real fault in CI logs (shared with the
#: pool's ``CrashRequest`` hook).
CRASH_EXIT_CODE = 86

_REPLY_KINDS = ("corrupt", "truncate")
_REQUEST_KINDS = ("req_corrupt", "req_truncate")
_ALL_KINDS = ("kill", "stall") + _REPLY_KINDS + _REQUEST_KINDS


# ----------------------------------------------------------------------
# Action constructors — tiny dict factories so schedules read declaratively
# ----------------------------------------------------------------------
def kill() -> dict:
    """Die mid-batch (``os._exit``), after the batch was received."""
    return {"kind": "kill"}


def stall(seconds: float) -> dict:
    """Sleep ``seconds`` before computing — a stuck-but-alive worker."""
    if seconds < 0:
        raise ValueError(f"stall seconds must be >= 0, got {seconds}")
    return {"kind": "stall", "seconds": seconds}


def corrupt(offset: Optional[int] = None) -> dict:
    """Flip one reply-payload byte (at ``offset``, default last byte)."""
    return {"kind": "corrupt", "offset": offset}


def truncate(drop: int = 8) -> dict:
    """Drop the reply payload's last ``drop`` bytes, CRC unchanged."""
    if drop <= 0:
        raise ValueError(f"truncate drop must be positive, got {drop}")
    return {"kind": "truncate", "drop": drop}


def req_corrupt(offset: Optional[int] = None) -> dict:
    """Flip one *request*-payload byte (at ``offset``, default last)."""
    return {"kind": "req_corrupt", "offset": offset}


def req_truncate(drop: int = 8) -> dict:
    """Short-write the packed request payload by ``drop`` bytes."""
    if drop <= 0:
        raise ValueError(f"req_truncate drop must be positive, got {drop}")
    return {"kind": "req_truncate", "drop": drop}


def is_request_fault(action: dict) -> bool:
    """True when the action damages the outbound request payload —
    the dispatcher consumes those itself instead of forwarding them."""
    return action.get("kind") in _REQUEST_KINDS


class FaultPlan:
    """A scripted schedule of worker faults, keyed by (dispatch, slot).

    ``dispatch`` is the pool's 0-based dispatch counter (one ``execute``
    call that reaches the workers is one dispatch); ``slot`` is the
    worker index the sub-batch was sent to.  Actions are the dicts the
    module-level constructors build.
    """

    def __init__(
        self, schedule: Optional[Dict[Tuple[int, int], dict]] = None
    ) -> None:
        self._schedule: Dict[Tuple[int, int], dict] = {}
        for key, action in (schedule or {}).items():
            d, s = key
            if d < 0 or s < 0:
                raise ValueError(f"bad schedule key {key!r}")
            if action.get("kind") not in _ALL_KINDS:
                raise ValueError(
                    f"unknown fault kind {action.get('kind')!r}; "
                    f"expected one of {_ALL_KINDS}"
                )
            self._schedule[(d, s)] = dict(action)
        self.injected = 0

    @classmethod
    def scripted(cls, schedule: Dict[Tuple[int, int], dict]) -> "FaultPlan":
        return cls(schedule)

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        dispatches: int,
        slots: int,
        rate: float = 0.25,
        kinds: Tuple[str, ...] = _ALL_KINDS,
        stall_s: float = 0.5,
    ) -> "FaultPlan":
        """A seed-derived schedule: each (dispatch, slot) cell draws a
        fault with probability ``rate``.  Same seed, same outage."""
        if not 0 <= rate <= 1:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        for k in kinds:
            if k not in _ALL_KINDS:
                raise ValueError(f"unknown fault kind {k!r}")
        rng = random.Random(seed)
        schedule: Dict[Tuple[int, int], dict] = {}
        for d in range(dispatches):
            for s in range(slots):
                if rng.random() >= rate:
                    continue
                k = rng.choice(kinds)
                if k == "kill":
                    schedule[(d, s)] = kill()
                elif k == "stall":
                    schedule[(d, s)] = stall(stall_s)
                elif k == "corrupt":
                    schedule[(d, s)] = corrupt()
                elif k == "req_corrupt":
                    schedule[(d, s)] = req_corrupt()
                elif k == "req_truncate":
                    schedule[(d, s)] = req_truncate()
                else:
                    schedule[(d, s)] = truncate()
        return cls(schedule)

    # ------------------------------------------------------------------
    def take(self, dispatch: int, slot: int) -> Optional[dict]:
        """Pop (consume) the action for this cell, or None.

        Consumption is what makes retries run clean — the pool calls
        this exactly once per original dispatch of a sub-batch.
        """
        action = self._schedule.pop((dispatch, slot), None)
        if action is not None:
            self.injected += 1
        return action

    def pending(self) -> Dict[Tuple[int, int], dict]:
        """The not-yet-consumed remainder (for test assertions)."""
        return dict(self._schedule)

    def __len__(self) -> int:
        return len(self._schedule)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(pending={len(self._schedule)}, "
            f"injected={self.injected})"
        )


# ----------------------------------------------------------------------
# Worker-side appliers (called inside the worker's serve loop)
# ----------------------------------------------------------------------
def apply_pre(action: dict) -> None:
    """Run a pre-compute fault: ``kill`` dies, ``stall`` sleeps."""
    kind = action["kind"]
    if kind == "kill":
        os._exit(CRASH_EXIT_CODE)
    elif kind == "stall":
        time.sleep(action["seconds"])


def apply_reply(action: dict, blob: bytes) -> bytes:
    """Damage the reply payload *after* its CRC was computed.

    Returns the bytes the worker should actually write/send; the
    already-computed CRC of the clean ``blob`` goes out unchanged, so
    the parent's verification must catch the damage.
    """
    kind = action["kind"]
    if kind == "corrupt" and blob:
        off = action.get("offset")
        if off is None or not 0 <= off < len(blob):
            off = len(blob) - 1
        out = bytearray(blob)
        out[off] ^= 0xFF
        return bytes(out)
    if kind == "truncate":
        return blob[: max(0, len(blob) - action["drop"])]
    return blob


def apply_request(action: dict, blob: bytes) -> bytes:
    """Damage the packed *request* payload after its CRC was framed.

    The dispatcher-side mirror of :func:`apply_reply`: the control
    frame carries the clean payload's CRC and length, the lane (or
    pipe) carries these damaged bytes, and the worker's verification
    must refuse to reconstruct requests from them.  Non-request kinds
    pass through untouched.
    """
    kind = action["kind"]
    if kind == "req_corrupt" and blob:
        off = action.get("offset")
        if off is None or not 0 <= off < len(blob):
            off = len(blob) - 1
        out = bytearray(blob)
        out[off] ^= 0xFF
        return bytes(out)
    if kind == "req_truncate":
        return blob[: max(0, len(blob) - action["drop"])]
    return blob


# ----------------------------------------------------------------------
# Bundle-file damage (operates on copies; for BundleCorrupted tests)
# ----------------------------------------------------------------------
def torn_copy(path: str, dst: str, keep_frac: float = 0.5) -> str:
    """Copy ``path`` to ``dst`` truncated to ``keep_frac`` of its size —
    the half-written bundle a crashed deploy leaves behind."""
    if not 0 < keep_frac < 1:
        raise ValueError(f"keep_frac must be in (0, 1), got {keep_frac}")
    shutil.copyfile(path, dst)
    size = os.path.getsize(dst)
    with open(dst, "r+b") as fh:
        fh.truncate(max(1, int(size * keep_frac)))
    return dst


def flipped_copy(path: str, dst: str, offset: Optional[int] = None) -> str:
    """Copy ``path`` to ``dst`` with one byte flipped (default: middle) —
    the bit-rot / bad-sector case."""
    shutil.copyfile(path, dst)
    size = os.path.getsize(dst)
    if size == 0:
        raise ValueError(f"{path!r} is empty")
    if offset is None:
        offset = size // 2
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} outside file of {size} bytes")
    with open(dst, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))
    return dst
