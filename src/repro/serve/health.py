"""``repro.serve.health`` — retry backoff and per-worker circuit breakers.

The pool's fault handling (``repro.serve.pool``) composes three small,
independently testable policies that live here:

* :class:`BackoffPolicy` — capped exponential backoff with
  *deterministic* jitter for the respawn-and-retry loop.  Randomised
  jitter would make chaos tests flaky and replays unreproducible, so
  the jitter is a hash of ``(slot, attempt)`` — spread like noise
  across workers and attempts, identical on every run.
* :class:`CircuitBreaker` — per-worker-slot quarantine.  A slot that
  keeps burning its retry budget stops receiving dispatches for a
  cooldown period (doubling up to a cap), then gets a single half-open
  probe; one success closes the breaker again.  This keeps a
  persistently poisonous slot (bad CPU, cgroup OOM loop) from turning
  every dispatch into a respawn storm while the rest of the pool —
  down to a single-process planner fallback — keeps answering.

Neither class knows anything about processes or pipes; the pool calls
``allow``/``record_failure``/``record_success`` around its own
dispatch machinery.  All time is injected (``clock``) so tests never
sleep.
"""

from __future__ import annotations

import time
import zlib
from typing import Callable, List, Optional

__all__ = ["BackoffPolicy", "CircuitBreaker"]


class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(slot, attempt)`` returns the pause (seconds) to take before
    retry ``attempt`` (0-based) on worker ``slot``:

    ``min(cap, base * 2**attempt) * (1 + jitter)``

    where ``jitter`` is in ``[0, jitter_frac)`` and derived from
    ``crc32((slot, attempt))`` — no RNG state, no wall-clock input, so
    the exact same schedule replays under a fixed fault plan.  The
    first attempt (``attempt == 0``) is free: a crashed worker was
    already respawned, and an immediate first retry is what keeps the
    p99 of a transient crash episode low.
    """

    __slots__ = ("base_s", "cap_s", "jitter_frac")

    def __init__(
        self,
        base_s: float = 0.02,
        cap_s: float = 0.5,
        jitter_frac: float = 0.25,
    ) -> None:
        if base_s < 0 or cap_s < 0:
            raise ValueError("backoff base_s and cap_s must be >= 0")
        if not 0 <= jitter_frac <= 1:
            raise ValueError(f"jitter_frac must be in [0, 1], got {jitter_frac}")
        self.base_s = base_s
        self.cap_s = cap_s
        self.jitter_frac = jitter_frac

    def delay(self, slot: int, attempt: int) -> float:
        if attempt <= 0:
            return 0.0
        raw = min(self.cap_s, self.base_s * (2 ** (attempt - 1)))
        seed = zlib.crc32(f"{slot}:{attempt}".encode())
        jitter = (seed % 1024) / 1024.0 * self.jitter_frac
        return raw * (1.0 + jitter)

    def describe(self) -> dict:
        return {
            "base_s": self.base_s,
            "cap_s": self.cap_s,
            "jitter_frac": self.jitter_frac,
        }


class CircuitBreaker:
    """Per-slot failure counter with quarantine + half-open probes.

    States per slot:

    * **closed** — dispatches allowed; ``failures`` consecutive
      failures recorded.  Reaching ``threshold`` opens the breaker.
    * **open** — dispatches refused until ``cooldown`` elapses.  Each
      re-open doubles the cooldown up to ``cooldown_cap_s``.
    * **half-open** — after cooldown, exactly one dispatch is allowed
      as a probe.  Success closes the breaker (counters reset);
      failure re-opens it with the doubled cooldown.

    ``threshold`` counts *consecutive* failures: any success resets the
    count, so a sub-batch that merely burns its retry budget once (two
    failures under the default ``max_retries=1``) never trips a
    breaker with the default threshold of 5.
    """

    __slots__ = (
        "slots",
        "threshold",
        "cooldown_s",
        "cooldown_cap_s",
        "_clock",
        "_failures",
        "_state",
        "_open_until",
        "_cooldown",
        "_trips",
    )

    def __init__(
        self,
        slots: int,
        *,
        threshold: int = 5,
        cooldown_s: float = 1.0,
        cooldown_cap_s: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if cooldown_s < 0 or cooldown_cap_s < cooldown_s:
            raise ValueError(
                f"need 0 <= cooldown_s <= cooldown_cap_s, got "
                f"{cooldown_s}/{cooldown_cap_s}"
            )
        self.slots = slots
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.cooldown_cap_s = cooldown_cap_s
        self._clock = clock if clock is not None else time.monotonic
        self._failures = [0] * slots
        self._state = ["closed"] * slots
        self._open_until = [0.0] * slots
        self._cooldown = [cooldown_s] * slots
        self._trips = [0] * slots

    # ------------------------------------------------------------------
    def allow(self, slot: int) -> bool:
        """May ``slot`` receive a dispatch right now?

        Open breakers transition to half-open (and return True — the
        probe) once their cooldown has elapsed.
        """
        state = self._state[slot]
        if state == "closed":
            return True
        if state == "half-open":
            return True
        if self._clock() >= self._open_until[slot]:
            self._state[slot] = "half-open"
            return True
        return False

    def record_success(self, slot: int) -> None:
        self._failures[slot] = 0
        self._state[slot] = "closed"
        self._cooldown[slot] = self.cooldown_s

    def record_failure(self, slot: int) -> None:
        if self._state[slot] == "half-open":
            self._reopen(slot)
            return
        self._failures[slot] += 1
        if self._failures[slot] >= self.threshold:
            self._reopen(slot)

    def _reopen(self, slot: int) -> None:
        self._state[slot] = "open"
        self._trips[slot] += 1
        self._open_until[slot] = self._clock() + self._cooldown[slot]
        self._cooldown[slot] = min(
            self.cooldown_cap_s, self._cooldown[slot] * 2.0
        )
        self._failures[slot] = 0

    # ------------------------------------------------------------------
    def open_slots(self) -> List[int]:
        """Slots currently refusing dispatches (cooldown not elapsed)."""
        return [s for s in range(self.slots) if not self.allow(s)]

    def snapshot(self) -> List[dict]:
        now = self._clock()
        out = []
        for s in range(self.slots):
            out.append(
                {
                    "state": self._state[s],
                    "consecutive_failures": self._failures[s],
                    "trips": self._trips[s],
                    "cooldown_s": self._cooldown[s],
                    "open_for_s": round(max(0.0, self._open_until[s] - now), 6)
                    if self._state[s] == "open"
                    else 0.0,
                }
            )
        return out
