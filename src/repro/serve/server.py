"""Asyncio query-coalescing server over the batch planner.

One :class:`Server` wraps one engine (usually a
:class:`~repro.baselines.hl.HubLabelIndex`) and turns many concurrent
``await submit(request)`` callers into few :class:`~repro.baselines.base.
QueryPlanner` batches.  The motivating observation (ROADMAP "async
front-end") is that the batched kernels' advantage *widens* with batch
size, yet clients arrive one request at a time: the missing layer is the
one that holds a request for a moment, merges it with its concurrent
neighbours, and answers all of them from one kernel invocation.

Coalescing policy
-----------------
* A request enters a FIFO of ``(request, future, deadline)`` items; the
  coalescer task drains up to ``max_batch`` items per cycle and hands
  them to the planner as one heterogeneous batch.
* ``window_s`` is the classic batching window: after waking on the first
  pending request the coalescer sleeps that long so neighbours can pile
  in.  The default of 0 relies on *natural batching* instead — while one
  batch executes (or its results are being delivered), newly awakened
  clients enqueue, so under closed-loop load batch sizes grow to the
  offered concurrency with no added latency.  A positive window only
  helps sparse open-loop traffic.
* **Backpressure**: at most ``max_queue`` requests may be pending.
  ``overflow="wait"`` (default) parks ``submit`` until the coalescer
  drains capacity free — the await *is* the backpressure signal;
  ``overflow="reject"`` raises :class:`ServerOverloaded` immediately,
  the load-shedding stance.
* **Deadlines**: ``submit(..., timeout=t)`` stamps a deadline; a request
  still queued when its deadline passes is failed with
  :class:`DeadlineExpired` *instead of being computed* — expired work is
  shed at dequeue time, it never occupies a kernel.  Requests already
  inside a running batch are not aborted mid-kernel.
* **Exactness**: the planner guarantees every answer is bit-identical
  to the direct engine call (see "The planner contract" in
  :mod:`repro.baselines.base`), so coalescing is invisible in results —
  ``tests/test_serve.py`` pins this under hypothesis-generated
  interleavings on both backends.

``stats()`` exposes the serving picture a dashboard wants: queue depth
(current and peak), a power-of-two batch-size histogram, deadline/
rejection counts, and the planner's kernel/cache counters (cache hit
rate included when a :class:`~repro.baselines.base.DistanceCache` is
attached).

The compute itself is synchronous CPython/numpy and runs in one of
**three tiers**:

* **inline** (default): batches run on the event loop — simplest, and
  correct for CPU-bound kernels (the loop would be compute-bound either
  way).
* **executor**: passing an ``executor`` (e.g. ``concurrent.futures.
  ThreadPoolExecutor(1)``) moves planner execution off-loop so the loop
  keeps accepting submissions while a batch computes; the shared
  :class:`DistanceCache` and the HL inversion memo are lock-guarded
  precisely so that worker threads and the event loop can share them.
* **pool**: passing a :class:`~repro.serve.pool.WorkerPool` shards each
  coalesced batch across N worker *processes*, each serving an engine
  replica booted from the shared bundle — the tier that scales past one
  core (and past the GIL).  Dispatch always runs off-loop (the server
  keeps a one-thread executor for it), results merge bit-identically to
  the single-process planner path, and a sub-batch whose worker crashed
  beyond the retry budget fails only its own futures — the rest of the
  batch completes.  Since PR 6 each worker streams its bulk reply
  columns through a shared-memory reply lane (pipes carry only tiny
  control frames — see :mod:`repro.serve.pool`), so the server's
  reply path no longer pays
  per-byte pipe cost; ``stats()["pool"]`` carries the worker-tier
  picture (per-worker batches, busy/idle, dispatch imbalance, respawns,
  and the ``reply_path`` transport/byte counters).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from collections import deque
from functools import partial
from typing import Deque, Iterable, List, Optional, Sequence

from ..baselines.base import (
    DistanceCache,
    DistanceRequest,
    OneToManyRequest,
    QueryEngine,
    QueryPlanner,
    Request,
    TableRequest,
)
from .pool import WorkerPool, WorkerStalled

__all__ = [
    "DeadlineExpired",
    "Server",
    "ServerClosed",
    "ServerOverloaded",
]


class ServerClosed(RuntimeError):
    """Raised by ``submit`` once the server is closed (or closing)."""


class ServerOverloaded(RuntimeError):
    """Raised by ``submit`` under ``overflow="reject"`` when the queue is full."""


class DeadlineExpired(asyncio.TimeoutError):
    """Set on a request whose deadline passed while it was still queued."""


class _Item:
    __slots__ = ("request", "future", "deadline")

    def __init__(self, request, future, deadline):
        self.request = request
        self.future = future
        self.deadline = deadline


class Server:
    """Query-coalescing asyncio front-end over one engine.

    Parameters
    ----------
    engine:
        Any :class:`~repro.baselines.base.QueryEngine`.
    cache:
        Optional :class:`DistanceCache` shared with the planner (point
        requests only, consulted per batch).  ``cache=True`` creates a
        default-sized one.
    window_s, max_batch:
        Coalescing policy: hold the queue ``window_s`` seconds after the
        first request wakes the coalescer (0 = natural batching only),
        never hand the planner more than ``max_batch`` requests at once.
    max_queue, overflow:
        Backpressure policy: queue bound, and whether a full queue makes
        ``submit`` wait (default) or raise :class:`ServerOverloaded`.
    executor:
        Optional ``concurrent.futures`` executor; batches run there via
        ``run_in_executor`` instead of inline on the event loop.  In
        pool mode this executor (or an internally created one-thread
        executor) carries the dispatch calls.
    planner:
        A preconfigured :class:`QueryPlanner` to serve through (its own
        cache included).  Mutually exclusive with ``cache`` — passing
        both would silently serve without the cache you asked for, so
        it raises instead.
    pool:
        A :class:`~repro.serve.pool.WorkerPool` to execute batches on —
        the multi-process tier.  ``engine`` may then be ``None`` (the
        pool's bundle already holds the graph; request validation uses
        the pool's node count).  Mutually exclusive with ``cache`` /
        ``planner`` — the pool's own shared cache fills that role
        (``WorkerPool(..., cache=...)``).
    close_pool:
        When true, :meth:`close` also closes the pool.  Default False:
        a pool is typically shared (and possibly reused across servers),
        so its lifecycle stays with whoever built it.

    A server binds to the event loop it first runs under — create and
    use it inside one ``asyncio.run``.  ``async with Server(...)`` is
    the normal lifecycle; ``submit`` also lazily starts the coalescer.
    """

    def __init__(
        self,
        engine: Optional[QueryEngine],
        *,
        cache=None,
        window_s: float = 0.0,
        max_batch: int = 1024,
        max_queue: int = 65536,
        overflow: str = "wait",
        executor=None,
        planner: Optional[QueryPlanner] = None,
        pool: Optional[WorkerPool] = None,
        close_pool: bool = False,
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if overflow not in ("wait", "reject"):
            raise ValueError(f'overflow must be "wait" or "reject", got {overflow!r}')
        if planner is not None and cache is not None:
            raise ValueError(
                "pass either planner= (with its own cache) or cache=, not both"
            )
        if pool is not None and (cache is not None or planner is not None):
            raise ValueError(
                "in pool mode the WorkerPool owns batch execution and the "
                "shared cache — pass cache= to WorkerPool, not to Server"
            )
        if pool is None and engine is None:
            raise ValueError("engine may only be None when a pool is given")
        if cache is True:
            cache = DistanceCache()
        self.engine = engine
        self.pool = pool
        self.close_pool = close_pool
        self._own_executor = None
        if pool is not None:
            self.planner = None
            self._n = pool.n
            if engine is not None and engine.graph.n != pool.n:
                raise ValueError(
                    f"engine graph has {engine.graph.n} nodes but the pool's "
                    f"bundle has {pool.n}"
                )
            if executor is None:
                # Dispatch must leave the event loop free — that is the
                # point of the pool tier — so it always runs on a thread.
                executor = concurrent.futures.ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-pool-dispatch"
                )
                self._own_executor = executor
        else:
            self.planner = (
                planner if planner is not None else QueryPlanner(engine, cache=cache)
            )
            self._n = engine.graph.n
        self.window_s = window_s
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.overflow = overflow
        self.executor = executor
        self._pending: Deque[_Item] = deque()
        self._capacity_waiters: Deque[asyncio.Future] = deque()
        self._wake: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._closed = False
        self._submitted = 0
        self._completed = 0
        self._expired = 0
        self._rejected = 0
        self._cancelled = 0
        self._worker_failed = 0
        self._worker_stalled = 0
        self._batches = 0
        self._coalesced = 0
        self._largest_batch = 0
        self._peak_queue_depth = 0
        self._batch_histogram: dict = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Server":
        """Start the coalescer task (idempotent); returns ``self``."""
        if self._closed:
            raise ServerClosed("server already closed")
        if self._task is None:
            self._wake = asyncio.Event()
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self

    async def close(self) -> None:
        """Graceful shutdown: serve everything already queued, then stop.

        Idempotent.  ``submit`` calls racing with ``close`` either make
        it into the final drain or observe :class:`ServerClosed`.
        """
        if self._closed:
            if self._task is not None:
                await asyncio.shield(self._task)
            return
        self._closed = True
        if self._task is not None:
            self._wake.set()
            await self._task
        # Anyone still parked on backpressure can only fail now.
        self._release_capacity_waiters()
        if self._own_executor is not None:
            self._own_executor.shutdown(wait=True)
        if self.close_pool and self.pool is not None:
            self.pool.close()

    async def __aenter__(self) -> "Server":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Submission surface
    # ------------------------------------------------------------------
    def _validate(self, request: Request) -> None:
        """Reject malformed requests at the door, not inside a batch.

        A bad request that reached the planner would raise mid-batch and
        fail every *other* request coalesced alongside it; checking node
        ranges and the concrete type here confines the error to the one
        caller who made it.  (In pool mode ``n`` comes from the pool's
        bundle handshake — no engine needs to live in this process.)
        """
        n = self._n
        if isinstance(request, DistanceRequest):
            ok = 0 <= request.source < n and 0 <= request.target < n
        elif isinstance(request, OneToManyRequest):
            ok = 0 <= request.source < n and all(
                0 <= t < n for t in request.targets
            )
        elif isinstance(request, TableRequest):
            ok = all(0 <= s < n for s in request.sources) and all(
                0 <= t < n for t in request.targets
            )
        else:
            raise TypeError(
                "submit() takes a DistanceRequest / OneToManyRequest / "
                f"TableRequest, got {type(request).__name__!r}"
            )
        if not ok:
            raise ValueError(
                f"{request!r} references node ids outside [0, {n})"
            )

    async def submit(self, request: Request, *, timeout: Optional[float] = None):
        """Enqueue one request; awaits (and returns) its planner answer.

        Raises :class:`ServerClosed` after ``close``,
        :class:`ServerOverloaded` when the queue is full under
        ``overflow="reject"``, and :class:`DeadlineExpired` when
        ``timeout`` seconds pass before the request is drained into a
        batch — time parked on backpressure counts against the
        deadline too.
        """
        self._validate(request)
        if self._closed:
            raise ServerClosed("server is closed")
        if self._task is None:
            await self.start()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout if timeout is not None else None
        while len(self._pending) >= self.max_queue:
            if self.overflow == "reject":
                self._rejected += 1
                raise ServerOverloaded(
                    f"queue full ({self.max_queue} pending requests)"
                )
            if deadline is not None and deadline - loop.time() <= 0:
                self._expired += 1
                raise DeadlineExpired("deadline passed while awaiting queue capacity")
            waiter = loop.create_future()
            self._capacity_waiters.append(waiter)
            if deadline is None:
                await waiter
            else:
                try:
                    await asyncio.wait_for(waiter, deadline - loop.time())
                except asyncio.TimeoutError:
                    self._expired += 1
                    raise DeadlineExpired(
                        "deadline passed while awaiting queue capacity"
                    ) from None
            if self._closed:
                raise ServerClosed("server closed while awaiting capacity")
        future = loop.create_future()
        self._pending.append(_Item(request, future, deadline))
        self._submitted += 1
        depth = len(self._pending)
        if depth > self._peak_queue_depth:
            self._peak_queue_depth = depth
        self._wake.set()
        return await future

    async def distance(self, source: int, target: int, **kw) -> float:
        """``await`` one point-to-point distance through the coalescer."""
        return await self.submit(DistanceRequest(source, target), **kw)

    async def one_to_many(
        self, source: int, targets: Iterable[int], **kw
    ) -> List[float]:
        """``await`` one one-to-many row through the coalescer."""
        return await self.submit(OneToManyRequest(source, targets), **kw)

    async def distance_table(
        self, sources: Sequence[int], targets: Sequence[int], **kw
    ) -> List[List[float]]:
        """``await`` one distance matrix through the coalescer."""
        return await self.submit(TableRequest(sources, targets), **kw)

    # ------------------------------------------------------------------
    # The coalescer
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        pending = self._pending
        loop = asyncio.get_running_loop()
        while True:
            if not pending:
                if self._closed:
                    return
                self._wake.clear()
                # Re-check after clearing: a submit between the check
                # and the clear would otherwise be missed.
                if not pending and not self._closed:
                    await self._wake.wait()
                continue
            if (
                self.window_s > 0
                and len(pending) < self.max_batch
                and not self._closed
            ):
                await asyncio.sleep(self.window_s)
            batch: List[_Item] = []
            now = loop.time()
            while pending and len(batch) < self.max_batch:
                item = pending.popleft()
                if item.future.done():  # caller cancelled / gave up
                    self._cancelled += 1
                    continue
                if item.deadline is not None and now > item.deadline:
                    self._expired += 1
                    item.future.set_exception(
                        DeadlineExpired(
                            f"request expired after {now - item.deadline:.4f}s "
                            "past its deadline while queued"
                        )
                    )
                    continue
                batch.append(item)
            self._release_capacity_waiters()
            if not batch:
                continue
            requests = [item.request for item in batch]
            try:
                if self.pool is not None:
                    # Pool tier: shard across worker processes, always
                    # off-loop.  return_exceptions=True so one crashed
                    # sub-batch fails only its own futures below.
                    results = await loop.run_in_executor(
                        self.executor,
                        partial(
                            self.pool.execute, requests, return_exceptions=True
                        ),
                    )
                elif self.executor is not None:
                    results = await loop.run_in_executor(
                        self.executor, self.planner.execute, requests
                    )
                else:
                    results = self.planner.execute(requests)
            except Exception as exc:
                # Engine/planner failure (requests themselves were
                # validated at submit): fail the batch, keep serving.
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(exc)
                    else:
                        self._cancelled += 1
                continue
            self._batches += 1
            size = len(batch)
            self._coalesced += size
            if size > self._largest_batch:
                self._largest_batch = size
            bucket = 1 << (size - 1).bit_length() if size > 1 else 1
            self._batch_histogram[bucket] = self._batch_histogram.get(bucket, 0) + 1
            for item, result in zip(batch, results):
                if not item.future.done():
                    if isinstance(result, BaseException):
                        # Pool tier: this request's sub-batch crashed (or
                        # stalled past the watchdog on) its worker beyond
                        # the retry budget; fail it cleanly, its
                        # batch-mates above/below still complete.
                        self._worker_failed += 1
                        if isinstance(result, WorkerStalled):
                            self._worker_stalled += 1
                        item.future.set_exception(result)
                    else:
                        self._completed += 1
                        item.future.set_result(result)
                else:
                    # Cancelled mid-batch (possible in executor mode):
                    # account for it so every *admitted* request lands in
                    # exactly one of completed / expired / cancelled /
                    # still-queued.  (rejected and expired-at-the-door
                    # requests were never admitted, hence never counted
                    # in `submitted`.)
                    self._cancelled += 1
            # Yield once so awakened clients can resubmit before the next
            # drain — this is what makes natural batching work.
            await asyncio.sleep(0)

    def _release_capacity_waiters(self) -> None:
        waiters = self._capacity_waiters
        while waiters and (self._closed or len(self._pending) < self.max_queue):
            waiter = waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving counters + policy echo + planner/cache statistics.

        ``batch_size_histogram`` maps a power-of-two upper bound to how
        many batches drained at most that many requests (``{1: 40,
        8: 3}`` reads: 40 singleton batches, 3 batches of 5-8).
        """
        mean_batch = self._coalesced / self._batches if self._batches else 0.0
        if self.pool is not None:
            tier = "pool"
        elif self.executor is not None:
            tier = "executor"
        else:
            tier = "inline"
        out = {
            "policy": {
                "tier": tier,
                "window_s": self.window_s,
                "max_batch": self.max_batch,
                "max_queue": self.max_queue,
                "overflow": self.overflow,
                "executor": type(self.executor).__name__ if self.executor else None,
            },
            "submitted": self._submitted,
            "completed": self._completed,
            "expired": self._expired,
            "rejected": self._rejected,
            "cancelled": self._cancelled,
            "worker_failed": self._worker_failed,
            "worker_stalled": self._worker_stalled,
            "batches": self._batches,
            "mean_batch_size": round(mean_batch, 3),
            "largest_batch": self._largest_batch,
            "batch_size_histogram": dict(sorted(self._batch_histogram.items())),
            "queue_depth": len(self._pending),
            "peak_queue_depth": self._peak_queue_depth,
            "closed": self._closed,
        }
        if self.planner is not None:
            out["planner"] = self.planner.stats()
        if self.pool is not None:
            out["pool"] = self.pool.stats()
        return out
