"""``repro.serve.pool`` — the multi-process worker tier.

The single-process :class:`~repro.serve.Server` coalesces well, but every
planner batch still executes on one core.  This module scales past that
with a **process pool over a shared bundle substrate**:

* Each worker process boots its own engine replica from the serialized
  bundle (:func:`repro.core.serialize.load_bundle`) — either from an
  mmap'd bundle *path* (every worker maps the same file, so the OS page
  cache holds one copy of the read-only label columns for N replicas) or
  from bundle *bytes* shipped once over the worker's pipe.  Either way
  the replica's big columns are zero-copy views over the mapped/received
  buffer.
* The dispatcher (:meth:`WorkerPool.execute`) splits one planner batch
  into per-worker sub-batches and merges the replies positionally.
  Splitting is **group-preserving**: requests are first grouped exactly
  the way :class:`~repro.baselines.base.QueryPlanner` would group them
  (shared source, identical target tuple), and whole groups are assigned
  to workers greedy-balanced by estimated pair count — so each worker
  runs the same kernels on the same groups the single-process planner
  would have, and by the planner's exactness contract (answers are
  bit-identical to direct engine calls no matter the grouping) the
  merged results are **bit-identical to the single-process path**.
* Results travel back as one packed ``float64`` column per sub-batch
  (shape recovered from the requests the dispatcher kept), so the
  pickle cost per answer is a memcpy, not per-float object churn —
  and the exact IEEE bits survive the trip.
* By default that packed column never touches the pipe at all: each
  worker owns a **shared-memory result lane** (a
  ``multiprocessing.shared_memory`` ring the parent creates and
  unlinks), writes the reply bytes into it at a ring offset, and sends
  only a tiny ``("okl", offset, nbytes, busy)`` control frame — the
  reply path's pipe traffic drops from the full float64 payload to
  ~60 bytes per sub-batch (PR 5 measured the pipe copy as the tier's
  dominant overhead).  Dispatch is lockstep per worker (one in-flight
  sub-batch), so a single ring with no read barrier is race-free; a
  reply larger than the lane falls back to the pipe transparently, and
  ``reply_transport="pipe"`` turns lanes off (the A/B baseline).
* A shared :class:`~repro.baselines.base.DistanceCache` stays in the
  dispatcher process: point hits are answered before any dispatch, and
  freshly computed point distances are stored back after the merge —
  the same consult-per-batch discipline the planner uses.

**Crash handling**: a worker that dies (OOM-kill, segfault, operator
``kill -9``) is detected at ``send``/``recv`` time, respawned from the
same bundle spec, and its in-flight sub-batch is retried (once by
default).  A sub-batch that keeps killing workers is failed *cleanly* —
its requests get a :class:`WorkerCrashed` result/exception, every other
sub-batch of the same dispatch completes normally, in-flight replies
are always drained so pipes never desynchronise, and the pool ends the
dispatch with a full complement of live workers.

The same :class:`WorkerHandle` substrate (process + duplex pipe +
ready-handshake + respawn) also runs the **parallel hub-label build**:
:class:`repro.baselines.hl.HubLabelIndex` fans rank bands out to
``build``-role workers (see :func:`build_worker_handles` and the build
loop below), which hold the upward search graphs and a growing replica
of the finished labels, and return per-node label entries band by band.

Everything here is synchronous; :class:`repro.serve.Server` wires a
pool in as its third execution tier by dispatching off-loop (the event
loop keeps accepting submissions while workers compute).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from array import array
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from .. import backend
from ..baselines.base import (
    DistanceCache,
    DistanceRequest,
    OneToManyRequest,
    Request,
    TableRequest,
)

__all__ = [
    "CrashRequest",
    "WorkerCrashed",
    "WorkerHandle",
    "WorkerPool",
    "build_worker_handles",
]

#: Exit code a worker uses for the deliberate test-hook crash, so a
#: CrashRequest death is distinguishable from a real fault in CI logs.
_CRASH_EXIT_CODE = 86

#: Default shared-memory result-lane size per worker.  Replies are one
#: float64 per answered (s, t) pair, so 1 MiB covers a 128k-pair
#: sub-batch — far past the planner's batch shapes; larger replies fall
#: back to the pipe (counted in ``stats()['reply_path']``).
_LANE_BYTES_DEFAULT = 1 << 20


class _ReplyLane:
    """One worker's parent-owned shared-memory reply ring.

    The parent creates (and finally unlinks) the segment; the worker
    attaches by name and writes each sub-batch's packed reply at a ring
    offset it reports back over the pipe.  Because the pool is lockstep
    per worker — a new sub-batch is only sent after the previous reply
    was consumed — at most one reply is live in the ring at a time and
    no read/write barrier is needed.
    """

    __slots__ = ("shm", "size")

    def __init__(self, size: int) -> None:
        from multiprocessing import shared_memory

        self.shm = shared_memory.SharedMemory(create=True, size=size)
        self.size = size

    @property
    def name(self) -> str:
        return self.shm.name

    def view(self, offset: int, nbytes: int) -> memoryview:
        """Zero-copy window over one reply (valid until the next send)."""
        if not 0 <= offset <= self.size - nbytes:
            raise ValueError(
                f"reply window [{offset}, {offset + nbytes}) outside lane "
                f"of {self.size} bytes"
            )
        return self.shm.buf[offset : offset + nbytes]

    def destroy(self) -> None:
        """Close the parent mapping and unlink the segment (idempotent)."""
        try:
            self.shm.close()
        except Exception:  # pragma: no cover - close never raises on CPython
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


def _attach_lane(cfg: dict):
    """Worker-side attach to the parent's lane; returns the mapping.

    On CPython 3.11 attaching registers the segment with the resource
    tracker too, but spawned workers inherit the *parent's* tracker fd,
    so that register is an idempotent set-add on the registration the
    parent made at create time.  Ownership stays with the parent: its
    ``unlink`` in :meth:`WorkerPool.close` performs the single matching
    unregister.  (An explicit child-side unregister here would strip the
    parent's entry from the shared set and make that later unlink
    double-unregister, so we deliberately leave the tracker alone.)
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=cfg["name"])


class WorkerCrashed(RuntimeError):
    """A worker process died; raised (or returned per-request) after the
    respawn-and-retry budget is exhausted."""


class CrashRequest(Request):
    """Test hook: a request that makes the worker ``os._exit`` mid-batch.

    Exists so the crash-handling path (respawn, retry, clean failure) is
    testable *deterministically* — the worker dies while the sub-batch
    is in flight, exactly the race a real OOM-kill hits.  Never emitted
    by production code; :meth:`Server.submit` rejects it at the door
    like any unknown request type.
    """

    __slots__ = ()
    kind = "crash"


def _request_pairs(req: Request) -> int:
    """Estimated kernel work for load balancing: underlying (s, t) pairs."""
    if isinstance(req, DistanceRequest):
        return 1
    if isinstance(req, OneToManyRequest):
        return max(1, len(req.targets))
    if isinstance(req, TableRequest):
        return max(1, len(req.sources) * len(req.targets))
    return 1


def _group_key(idx: int, req: Request):
    """The planner's grouping key, reproduced for split planning.

    Point requests group by shared source, one-to-many and table
    requests by identical target tuple — keeping every group on one
    worker preserves the exact kernel routing (and kernel batch sizes)
    of the single-process planner.
    """
    if isinstance(req, DistanceRequest):
        return ("p", req.source)
    if isinstance(req, OneToManyRequest):
        return ("o", req.targets)
    if isinstance(req, TableRequest):
        return ("t", req.targets)
    return ("x", idx)  # unknown kinds stay singleton groups


def plan_split(
    items: Sequence[Tuple[int, Request]], workers: int
) -> List[List[Tuple[int, Request]]]:
    """Assign ``(original_index, request)`` items to ``workers`` buckets.

    Groups (in the planner's sense) are kept whole *up to the fair
    share*: a group whose estimated cost exceeds ``total / workers`` —
    a skewed workload's hot order pool routinely is most of the batch —
    is chunked at request granularity so one worker cannot become the
    whole dispatch's critical path.  Splitting a group never changes
    answers (the planner contract makes every grouping bit-identical to
    direct calls); it only trades a wider table kernel for balance, and
    only when the alternative is idle workers.  Groups are then placed
    largest-first onto the least-loaded worker (ties: earliest first
    appearance, lowest worker id), and each bucket is re-sorted by
    original index so per-worker request order is deterministic.  The
    whole plan is deterministic for a given batch.
    """
    groups: "OrderedDict[tuple, List]" = OrderedDict()
    total = 0
    for idx, req in items:
        entry = groups.setdefault(_group_key(idx, req), [0, []])
        pairs = _request_pairs(req)
        entry[0] += pairs
        entry[1].append((idx, req, pairs))
        total += pairs
    fair_share = max(1, -(-total // workers))  # ceil
    pieces: List[List] = []
    for cost, members in groups.values():
        if cost <= fair_share or len(members) < 2:
            pieces.append([cost, members])
            continue
        # Chunk the oversized group into fair-share-sized pieces.
        piece_cost = 0
        piece: List = []
        for member in members:
            piece.append(member)
            piece_cost += member[2]
            if piece_cost >= fair_share:
                pieces.append([piece_cost, piece])
                piece_cost = 0
                piece = []
        if piece:
            pieces.append([piece_cost, piece])
    order = sorted(pieces, key=lambda g: (-g[0], g[1][0][0]))
    loads = [0] * workers
    buckets: List[List[Tuple[int, Request]]] = [[] for _ in range(workers)]
    for cost, members in order:
        w = min(range(workers), key=lambda j: (loads[j], j))
        loads[w] += cost
        buckets[w].extend((idx, req) for idx, req, _ in members)
    for bucket in buckets:
        bucket.sort(key=lambda item: item[0])
    return buckets


# ----------------------------------------------------------------------
# Result transport: one packed float64 column per sub-batch
# ----------------------------------------------------------------------
def _pack_results(requests: Sequence[Request], results: Sequence) -> bytes:
    """Flatten a sub-batch's answers into one little-endian f64 block.

    The dispatcher knows every answer's shape from the requests it kept,
    so no framing is needed; float64 round-trips are bit-exact, and the
    unpack side hands back *plain Python floats* — the same types the
    single-process planner path produces.
    """
    out = array("d")
    for req, res in zip(requests, results):
        if isinstance(req, DistanceRequest):
            out.append(res)
        elif isinstance(req, OneToManyRequest):
            out.extend(res)
        else:  # TableRequest
            for row in res:
                out.extend(row)
    return out.tobytes()


def _unpack_results(requests: Sequence[Request], blob) -> List[object]:
    flat = memoryview(blob).cast("d")
    results: List[object] = []
    pos = 0
    for req in requests:
        if isinstance(req, DistanceRequest):
            results.append(flat[pos])
            pos += 1
        elif isinstance(req, OneToManyRequest):
            k = len(req.targets)
            results.append(flat[pos : pos + k].tolist())
            pos += k
        else:
            nt = len(req.targets)
            rows = [
                flat[pos + i * nt : pos + (i + 1) * nt].tolist()
                for i in range(len(req.sources))
            ]
            results.append(rows)
            pos += len(req.sources) * nt
    return results


# ----------------------------------------------------------------------
# Worker process mains
# ----------------------------------------------------------------------
def _worker_main(conn, spec: dict) -> None:
    """Entry point of every pool process; ``spec['role']`` selects the loop.

    Boots, sends a ``("ready", n)`` handshake (so load errors surface at
    spawn time in the parent, not as a hang), then serves commands until
    ``("stop",)`` or parent death (EOF).
    """
    try:
        if spec.get("backend"):
            backend.force_backend(spec["backend"])
        if spec["role"] == "serve":
            from ..baselines.base import QueryPlanner
            from ..core.serialize import load_bundle

            path = spec.get("bundle_path")
            if path is not None:
                graph, engine = load_bundle(path, mmap=spec.get("mmap", True))
            else:
                graph, engine = load_bundle(spec["bundle"])
            planner = QueryPlanner(engine)
            lane_cfg = spec.get("lane")
            lane = _attach_lane(lane_cfg) if lane_cfg is not None else None
            conn.send(("ready", graph.n))
            _serve_loop(conn, planner, lane, lane_cfg["size"] if lane_cfg else 0)
        elif spec["role"] == "build":
            conn.send(("ready", spec["n"]))
            _build_loop(conn, spec)
        else:
            raise ValueError(f"unknown worker role {spec['role']!r}")
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass  # parent went away; nothing to report to
    except Exception as exc:  # boot failure: tell the parent, then exit
        try:
            conn.send(("err", exc))
        except Exception:
            pass


def _serve_loop(conn, planner, lane=None, lane_size: int = 0) -> None:
    wpos = 0  # ring write head; single live reply, so wrap is just reset
    while True:
        msg = conn.recv()
        op = msg[0]
        if op == "stop":
            conn.send(("bye",))
            return
        if op == "batch":
            requests = msg[1]
            if any(isinstance(r, CrashRequest) for r in requests):
                os._exit(_CRASH_EXIT_CODE)  # test hook: die mid-batch
            t0 = time.perf_counter()
            try:
                results = planner.execute(requests)
            except Exception as exc:
                conn.send(("err", exc))
                continue
            busy = time.perf_counter() - t0
            blob = _pack_results(requests, results)
            if lane is not None and len(blob) <= lane_size:
                if wpos + len(blob) > lane_size:
                    wpos = 0
                lane.buf[wpos : wpos + len(blob)] = blob
                conn.send(("okl", wpos, len(blob), busy))
                # keep the next write 8-aligned for the f64 cast
                wpos = (wpos + len(blob) + 7) & ~7
            else:  # no lane, or an oversized reply: the pipe fallback
                conn.send(("ok", blob, busy))
        elif op == "stats":
            conn.send(("ok", planner.stats()))
        else:
            conn.send(("err", ValueError(f"unknown worker op {op!r}")))


def _build_loop(conn, spec: dict) -> None:
    """Parallel hub-label build worker: bands in, label entries out.

    Holds the contraction's upward graphs plus a local replica of every
    finished label (grown by ``sync`` broadcasts), so each ``band``
    command runs the exact pruned upward searches the serial build runs
    — same inputs, same entries, byte-identical flattened columns.
    """
    from ..baselines.hl import _pruned_upward_labels
    from ..graph.workspace import SearchWorkspace

    up_out, up_in, n = spec["up_out"], spec["up_in"], spec["n"]
    fwd: List[Optional[list]] = [None] * n
    bwd: List[Optional[list]] = [None] * n
    ws = SearchWorkspace(n)
    while True:
        msg = conn.recv()
        op = msg[0]
        if op == "stop":
            conn.send(("bye",))
            return
        if op == "band":
            t0 = time.perf_counter()
            out = []
            for u in msg[1]:
                f = _pruned_upward_labels(u, up_out, bwd, ws)
                b = _pruned_upward_labels(u, up_in, fwd, ws)
                fwd[u] = f
                bwd[u] = b
                out.append((u, f, b))
            conn.send(("ok", out, time.perf_counter() - t0))
        elif op == "sync":
            for u, f, b in msg[1]:
                fwd[u] = f
                bwd[u] = b
            conn.send(("ok",))
        else:
            conn.send(("err", ValueError(f"unknown build op {op!r}")))


def _default_context_name() -> str:
    """``fork`` where the platform offers it (cheap respawn, no spec
    pickling), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ----------------------------------------------------------------------
# WorkerHandle: one process + pipe + respawn — the shared substrate
# ----------------------------------------------------------------------
#: Upper bound on a worker's boot (spawn -> ready handshake).  Bounded
#: because a respawn can fork from a multi-threaded parent (the pool
#: dispatch thread), where a child wedged on an inherited lock before
#: reaching our code would otherwise hang the dispatch — and with it the
#: whole server — forever.  A timeout turns that wedge into the
#: already-handled WorkerCrashed path.  (``mp_context="spawn"`` avoids
#: fork-with-threads entirely, at the cost of re-importing per spawn.)
_BOOT_TIMEOUT_S = 120.0


class WorkerHandle:
    """One worker process with a duplex pipe and a respawn recipe.

    The spec is kept so :meth:`respawn` can boot an identical
    replacement after a crash — for serve workers that means reloading
    the engine replica from the same bundle.  All pipe errors are
    normalised to :class:`WorkerCrashed` so callers have exactly one
    failure mode to handle; a boot that neither fails nor reports ready
    within :data:`_BOOT_TIMEOUT_S` counts as crashed too.
    """

    def __init__(self, spec: dict, ctx=None) -> None:
        self.spec = spec
        self._ctx = ctx if ctx is not None else multiprocessing.get_context(
            _default_context_name()
        )
        self.respawns = 0
        self.process = None
        self.conn = None
        self.ready_info = None
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn, self.spec), daemon=True
        )
        proc.start()
        child_conn.close()
        try:
            if not parent_conn.poll(_BOOT_TIMEOUT_S):
                parent_conn.close()
                proc.terminate()
                proc.join(timeout=5)
                raise WorkerCrashed(
                    f"worker pid {proc.pid} never reported ready within "
                    f"{_BOOT_TIMEOUT_S:.0f}s; terminated"
                )
            msg = parent_conn.recv()
        except EOFError:
            parent_conn.close()
            proc.join()
            raise WorkerCrashed(
                f"worker pid {proc.pid} died during boot "
                f"(exitcode {proc.exitcode})"
            ) from None
        if msg[0] == "err":
            parent_conn.close()
            proc.join()
            raise msg[1]
        self.conn = parent_conn
        self.process = proc
        self.ready_info = msg[1]

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def send(self, message) -> None:
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(
                f"worker pid {self.pid} is gone (send failed: {exc})"
            ) from None

    def recv(self):
        """One reply; remote errors re-raise, dead pipes -> WorkerCrashed."""
        try:
            reply = self.conn.recv()
        except (EOFError, OSError):
            raise WorkerCrashed(
                f"worker pid {self.pid} died mid-command "
                f"(exitcode {self.process.exitcode})"
            ) from None
        if reply[0] == "err":
            raise reply[1]
        return reply

    def call(self, message):
        self.send(message)
        return self.recv()

    def respawn(self) -> None:
        """Discard the (dead or wedged) process and boot a replacement."""
        self._discard()
        self.respawns += 1
        self._spawn()

    def _discard(self) -> None:
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5)
            self.process = None

    def close(self) -> None:
        """Polite shutdown; falls back to terminate on any pipe trouble."""
        if self.conn is not None:
            try:
                self.conn.send(("stop",))
                self.conn.recv()  # ("bye",)
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._discard()


def build_worker_handles(
    n: int,
    up_out,
    up_in,
    workers: int,
    mp_context: Optional[str] = None,
    backend_name: Optional[str] = None,
) -> List[WorkerHandle]:
    """Spawn ``workers`` build-role handles sharing one upward-graph spec.

    Under the default ``fork`` context the upward graphs are inherited
    copy-on-write (no pickling); under ``spawn`` they are pickled once
    per worker.  Used by the parallel
    :class:`~repro.baselines.hl.HubLabelIndex` build.
    """
    ctx = multiprocessing.get_context(mp_context or _default_context_name())
    spec = {
        "role": "build",
        "n": n,
        "up_out": up_out,
        "up_in": up_in,
        "backend": backend_name or backend.active(),
    }
    return [WorkerHandle(spec, ctx) for _ in range(workers)]


# ----------------------------------------------------------------------
# WorkerPool: the sharded serving tier
# ----------------------------------------------------------------------
class WorkerPool:
    """Sharded batch execution over N bundle-booted engine replicas.

    Parameters
    ----------
    bundle:
        What workers boot from — a bundle *path* (each worker mmaps it;
        preferred: one page-cache copy serves every replica), bundle
        *bytes* (shipped over each worker's pipe at spawn), or a live
        index object (serialized to bytes once, here).
    workers:
        Replica count.
    cache:
        Optional shared :class:`DistanceCache` (or ``True`` for a
        default-sized one), consulted in the dispatcher before any
        sub-batch is sent and refilled from fresh point answers —
        planner rule 3, lifted one tier up.
    mp_context:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else ``spawn``).
    backend_name:
        Array backend forced in each worker (default: the parent's
        active backend, so an A/B benchmark's ``backend.forced`` scope
        propagates).
    max_retries:
        How many times a crashed sub-batch is retried on a fresh worker
        before its requests are failed with :class:`WorkerCrashed`.
    mmap:
        For path bundles: mmap the file (default) instead of reading it.
    reply_transport:
        ``"auto"`` (default) gives each worker a shared-memory result
        lane when the platform supports ``multiprocessing.shared_memory``,
        falling back to pipe replies otherwise; ``"shm"`` requires
        lanes; ``"pipe"`` forces the packed-float64 pipe path (the A/B
        baseline).  Answers are identical either way.
    lane_bytes:
        Size of each worker's reply lane (default 1 MiB); replies that
        do not fit fall back to the pipe for that sub-batch only.

    ``execute`` is the whole query surface: one heterogeneous request
    batch in, positionally aligned results out, bit-identical to the
    single-process :class:`~repro.baselines.base.QueryPlanner` path.
    The pool is not thread-safe; :class:`repro.serve.Server` serialises
    access through one dispatch thread.
    """

    def __init__(
        self,
        bundle,
        *,
        workers: int = 2,
        cache=None,
        mp_context: Optional[str] = None,
        backend_name: Optional[str] = None,
        max_retries: int = 1,
        mmap: bool = True,
        reply_transport: str = "auto",
        lane_bytes: int = _LANE_BYTES_DEFAULT,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if reply_transport not in ("auto", "shm", "pipe"):
            raise ValueError(
                "reply_transport must be 'auto', 'shm' or 'pipe', got "
                f"{reply_transport!r}"
            )
        if lane_bytes <= 0:
            raise ValueError(f"lane_bytes must be positive, got {lane_bytes}")
        if cache is True:
            cache = DistanceCache()
        self.cache = cache
        self.max_retries = max_retries
        spec: Dict[str, object] = {
            "role": "serve",
            "backend": backend_name or backend.active(),
        }
        if isinstance(bundle, str):
            spec["bundle_path"] = bundle
            spec["mmap"] = mmap
            self.transport = "mmap-path" if mmap else "file-path"
        elif isinstance(bundle, (bytes, bytearray, memoryview)):
            spec["bundle"] = bytes(bundle)
            self.transport = "pipe-bytes"
        elif hasattr(bundle, "graph"):  # a live index object
            from ..core.serialize import bundle_bytes

            spec["bundle"] = bundle_bytes(bundle)
            self.transport = "pipe-bytes"
        else:
            raise TypeError(
                "bundle must be a path, bytes, or an index object; got "
                f"{type(bundle).__name__!r}"
            )
        ctx = multiprocessing.get_context(mp_context or _default_context_name())
        # Shared-memory reply lanes: one per worker, recorded in a
        # per-handle copy of the spec so a respawned worker re-attaches
        # the same segment.  "auto" degrades to pipe replies on the
        # first creation failure; "shm" propagates it.
        self._lane_bytes = lane_bytes
        self._lanes: List[Optional[_ReplyLane]] = []
        self._handles: List[WorkerHandle] = []
        self._reply_pipe_bytes = 0
        self._reply_shm_bytes = 0
        self._oversized_replies = 0
        lanes_on = reply_transport in ("auto", "shm")
        try:
            for _ in range(workers):
                lane = None
                if lanes_on:
                    try:
                        lane = _ReplyLane(lane_bytes)
                    except Exception:
                        if reply_transport == "shm":
                            raise
                        lanes_on = False
                wspec = dict(spec)  # shallow: the bundle blob is shared
                if lane is not None:
                    wspec["lane"] = {"name": lane.name, "size": lane.size}
                self._lanes.append(lane)
                self._handles.append(WorkerHandle(wspec, ctx))
        except BaseException:
            for handle in self._handles:
                try:
                    handle.close()
                except Exception:
                    pass
            for lane in self._lanes:
                if lane is not None:
                    lane.destroy()
            raise
        #: Reply-path transport actually in effect ("shm" or "pipe").
        self.reply_transport = (
            "shm" if any(lane is not None for lane in self._lanes) else "pipe"
        )
        #: Node count of the bundled graph (from the ready handshake) —
        #: what Server.submit validates request node ids against.
        self.n: int = self._handles[0].ready_info
        self._closed = False
        self._t0 = time.perf_counter()
        self._dispatches = 0
        self._imbalance_sum = 0.0
        self._wstats = [
            {"batches": 0, "requests": 0, "pairs": 0, "busy_s": 0.0}
            for _ in self._handles
        ]

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self._handles)

    @property
    def handles(self) -> List[WorkerHandle]:
        """The live worker handles (exposed for tests/chaos tooling)."""
        return self._handles

    def pids(self) -> List[Optional[int]]:
        return [h.pid for h in self._handles]

    # ------------------------------------------------------------------
    def _reply_payload(self, w: int, reply) -> Tuple[object, float]:
        """``(blob, busy_s)`` from either reply form, with byte accounting.

        ``("okl", offset, nbytes, busy)`` control frames resolve to a
        zero-copy window over worker ``w``'s lane (only the ~60-byte
        pickled frame crossed the pipe — that is what gets charged to
        ``pipe_bytes``); ``("ok", blob, busy)`` replies charge the full
        packed payload, and count as oversized when a lane existed but
        the reply did not fit it.
        """
        if reply[0] == "okl":
            _, offset, nbytes, busy = reply
            self._reply_pipe_bytes += len(pickle.dumps(reply))
            self._reply_shm_bytes += nbytes
            return self._lanes[w].view(offset, nbytes), busy
        blob = reply[1]
        self._reply_pipe_bytes += len(blob)
        if self._lanes[w] is not None:
            self._oversized_replies += 1
        return blob, reply[2]

    # ------------------------------------------------------------------
    def execute(
        self, requests: Sequence[Request], *, return_exceptions: bool = False
    ):
        """Answer a heterogeneous batch across the worker replicas.

        Results align with ``requests`` and are bit-identical to
        ``QueryPlanner(engine).execute(requests)`` in one process.  A
        sub-batch whose worker crashes (beyond the retry budget) fails
        *only its own requests*: with ``return_exceptions=True`` those
        slots hold the :class:`WorkerCrashed` instance (the Server tier
        maps them onto the right futures); otherwise the first failure
        raises — but only after every in-flight reply has been drained,
        so the pool is always left consistent and fully respawned.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        requests = list(requests)
        if not requests:
            return []
        results: List[object] = [None] * len(requests)
        done = [False] * len(requests)

        # Cache pre-pass (point requests only), one lock acquisition.
        cache = self.cache
        if cache is not None:
            point = [
                (i, r) for i, r in enumerate(requests)
                if isinstance(r, DistanceRequest)
            ]
            if point:
                got = cache.lookup_many([(r.source, r.target) for _, r in point])
                for (i, _), value in zip(point, got):
                    if value is not None:
                        results[i] = value
                        done[i] = True

        pending = [(i, r) for i, r in enumerate(requests) if not done[i]]
        plan = plan_split(pending, len(self._handles))

        # Phase 1: send every sub-batch (workers start computing in
        # parallel); a send that hits a dead pipe is deferred to the
        # recv phase's retry path so it cannot stall the other workers.
        dispatched: List[Tuple[int, List[Tuple[int, Request]], bool]] = []
        for w, sub in enumerate(plan):
            if not sub:
                continue
            reqs = [r for _, r in sub]
            try:
                self._handles[w].send(("batch", reqs))
                sent = True
            except WorkerCrashed:
                sent = False
            dispatched.append((w, sub, sent))

        # Phase 2: collect replies in dispatch order, retrying crashed
        # sub-batches synchronously on respawned workers.  Every
        # dispatched sub-batch is resolved here — success, remote
        # error, or WorkerCrashed — so no reply is ever left in a pipe.
        pair_loads = []
        first_error: Optional[BaseException] = None
        for w, sub, sent in dispatched:
            reqs = [r for _, r in sub]
            outcome: object
            try:
                if not sent:
                    reply = self._retry_sub(w, reqs)
                else:
                    try:
                        reply = self._handles[w].recv()
                    except WorkerCrashed:
                        reply = self._retry_sub(w, reqs)
                blob, busy_s = self._reply_payload(w, reply)
                sub_results = _unpack_results(reqs, blob)
                del blob  # release the lane window before the next send
                stats = self._wstats[w]
                stats["batches"] += 1
                stats["requests"] += len(reqs)
                pairs = sum(_request_pairs(r) for r in reqs)
                stats["pairs"] += pairs
                stats["busy_s"] += busy_s
                pair_loads.append(pairs)
                for (i, _), value in zip(sub, sub_results):
                    results[i] = value
                continue
            except Exception as exc:  # WorkerCrashed or remote error
                outcome = exc
            for i, _ in sub:
                results[i] = outcome
            if first_error is None:
                first_error = outcome

        self._dispatches += 1
        if len(pair_loads) > 1:
            mean = sum(pair_loads) / len(pair_loads)
            self._imbalance_sum += (max(pair_loads) / mean) if mean else 1.0
        elif pair_loads:
            self._imbalance_sum += 1.0

        # Cache post-pass: store freshly *computed* point distances
        # (``pending`` excludes the pre-pass hits by construction).
        if cache is not None:
            fresh = [
                ((r.source, r.target), results[i])
                for i, r in pending
                if isinstance(r, DistanceRequest) and isinstance(results[i], float)
            ]
            if fresh:
                cache.store_many(fresh)

        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    def _retry_sub(self, w: int, reqs: List[Request]):
        """Respawn worker ``w`` and re-run its sub-batch, bounded.

        Always leaves slot ``w`` holding a *live* worker — even on the
        giving-up path — so one poisonous sub-batch cannot shrink the
        pool.
        """
        handle = self._handles[w]
        for _ in range(self.max_retries):
            handle.respawn()
            try:
                return handle.call(("batch", reqs))
            except WorkerCrashed:
                continue
            # a remote ("err", exc) reply propagates to the caller
        handle.respawn()
        raise WorkerCrashed(
            f"worker {w} died {self.max_retries + 1}x on the same "
            f"{len(reqs)}-request sub-batch; requests failed, worker respawned"
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The worker-tier picture: per-worker counters + dispatch shape.

        ``busy_s`` is compute time measured inside each worker;
        ``idle_s`` is the rest of that worker's lifetime (dispatch gaps
        + IPC).  ``mean_dispatch_imbalance`` is the mean over dispatches
        of ``max(sub-batch pairs) / mean(sub-batch pairs)`` — 1.0 is a
        perfectly even split.
        """
        wall = time.perf_counter() - self._t0
        per_worker = []
        for handle, stats in zip(self._handles, self._wstats):
            per_worker.append(
                {
                    "pid": handle.pid,
                    "batches": stats["batches"],
                    "requests": stats["requests"],
                    "pairs": stats["pairs"],
                    "busy_s": round(stats["busy_s"], 6),
                    "idle_s": round(max(0.0, wall - stats["busy_s"]), 6),
                    "respawns": handle.respawns,
                }
            )
        out = {
            "workers": len(self._handles),
            "transport": self.transport,
            "reply_path": {
                "transport": self.reply_transport,
                "lane_bytes": (
                    self._lane_bytes if self.reply_transport == "shm" else None
                ),
                "pipe_bytes": self._reply_pipe_bytes,
                "shm_bytes": self._reply_shm_bytes,
                "oversized_replies": self._oversized_replies,
            },
            "dispatches": self._dispatches,
            "mean_dispatch_imbalance": round(
                self._imbalance_sum / self._dispatches, 4
            )
            if self._dispatches
            else 0.0,
            "respawns": sum(h.respawns for h in self._handles),
            "per_worker": per_worker,
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out

    def worker_planner_stats(self) -> List[dict]:
        """Each replica's planner counters (kernel routing per worker)."""
        return [h.call(("stats",))[1] for h in self._handles]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and unlink the reply lanes (idempotent).

        Workers go first (they hold attachments to the segments), then
        every lane is closed *and unlinked* — no ``/dev/shm`` entries
        outlive the pool, even after worker crashes and respawns.
        """
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            handle.close()
        for lane in self._lanes:
            if lane is not None:
                lane.destroy()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
