"""``repro.serve.pool`` — the multi-process worker tier.

The single-process :class:`~repro.serve.Server` coalesces well, but every
planner batch still executes on one core.  This module scales past that
with a **process pool over a shared bundle substrate**:

* Each worker process boots its own engine replica from the serialized
  bundle (:func:`repro.core.serialize.load_bundle`) — either from an
  mmap'd bundle *path* (every worker maps the same file, so the OS page
  cache holds one copy of the read-only label columns for N replicas) or
  from bundle *bytes* shipped once over the worker's pipe.  Either way
  the replica's big columns are zero-copy views over the mapped/received
  buffer.
* The dispatcher (:meth:`WorkerPool.execute`) splits one planner batch
  into per-worker sub-batches and merges the replies positionally.
  Splitting is **group-preserving**: requests are first grouped exactly
  the way :class:`~repro.baselines.base.QueryPlanner` would group them
  (shared source, identical target tuple), and whole groups are assigned
  to workers greedy-balanced by estimated pair count — so each worker
  runs the same kernels on the same groups the single-process planner
  would have, and by the planner's exactness contract (answers are
  bit-identical to direct engine calls no matter the grouping) the
  merged results are **bit-identical to the single-process path**.
* Results travel back as one packed ``float64`` column per sub-batch
  (shape recovered from the requests the dispatcher kept), so the
  pickle cost per answer is a memcpy, not per-float object churn —
  and the exact IEEE bits survive the trip.
* By default that packed column never touches the pipe at all: each
  worker owns a **shared-memory result lane** (a
  ``multiprocessing.shared_memory`` ring the parent creates and
  unlinks), writes the reply bytes into it at a ring offset, and sends
  only a tiny ``("okl", offset, nbytes, busy)`` control frame — the
  reply path's pipe traffic drops from the full float64 payload to
  ~60 bytes per sub-batch (PR 5 measured the pipe copy as the tier's
  dominant overhead).  Dispatch is lockstep per worker (one in-flight
  sub-batch), so a single ring with no read barrier is race-free; a
  reply larger than the lane falls back to the pipe transparently, and
  ``reply_transport="pipe"`` turns lanes off (the A/B baseline).
* The *request* path is symmetric: each sub-batch's typed requests are
  packed into flat REQCOL columns (:func:`repro.core.serialize.
  pack_requests` — per-kind codes, uvarint shape counts, one int32/64
  node-id column at HLIDX2's width discipline), written into a second
  per-worker **request lane**, and announced with a ~60 B
  ``("reql", offset, nbytes, crc)`` frame; the worker reconstructs the
  typed requests from the columns without per-object unpickling.
  Oversized batches ride the pipe packed (``"reqp"``), non-column
  request kinds (and ``request_transport="pipe"``, the A/B baseline)
  fall back to classic pickled dispatch, and a payload failing its
  CRC32 check fails typed as :class:`RequestCorrupted` — never a wrong
  answer.  ``stats()["request_path"]`` counts bytes per transport and
  ``stats()["dispatch"]`` splits dispatch wall time into
  pack/send/compute/merge.
* A shared :class:`~repro.baselines.base.DistanceCache` stays in the
  dispatcher process: point hits are answered before any dispatch, and
  freshly computed point distances are stored back after the merge —
  the same consult-per-batch discipline the planner uses.

**Crash handling**: a worker that dies (OOM-kill, segfault, operator
``kill -9``) is detected at ``send``/``recv`` time, respawned from the
same bundle spec, and its in-flight sub-batch is retried (once by
default).  A sub-batch that keeps killing workers is failed *cleanly* —
its requests get a :class:`WorkerCrashed` result/exception, every other
sub-batch of the same dispatch completes normally, in-flight replies
are always drained so pipes never desynchronise, and the pool ends the
dispatch with a full complement of live workers.

The same :class:`WorkerHandle` substrate (process + duplex pipe +
ready-handshake + respawn) also runs the **parallel hub-label build**:
:class:`repro.baselines.hl.HubLabelIndex` fans rank bands out to
``build``-role workers (see :func:`build_worker_handles` and the build
loop below), which hold the upward search graphs and a growing replica
of the finished labels, and return per-node label entries band by band.
In the pipelined build those entries travel as packed LBLCHUNK columns
through a shared sync ring instead of pickled lists, and the sync
broadcast for band *b* overlaps band *b+1*'s compute (see
``repro.baselines.hl._build_labels_parallel``).

Everything here is synchronous; :class:`repro.serve.Server` wires a
pool in as its third execution tier by dispatching off-loop (the event
loop keeps accepting submissions while workers compute).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import zlib
from array import array
from collections import OrderedDict
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import backend
from ..baselines.base import (
    DistanceCache,
    DistanceRequest,
    OneToManyRequest,
    Request,
    TableRequest,
)
from ..core.serialize import pack_requests, unpack_requests
from . import faults as _faults
from .health import BackoffPolicy, CircuitBreaker

__all__ = [
    "CrashRequest",
    "HedgeMismatch",
    "ReplyCorrupted",
    "RequestCorrupted",
    "WorkerCrashed",
    "WorkerHandle",
    "WorkerPool",
    "WorkerStalled",
    "build_worker_handles",
]

#: Exit code a worker uses for the deliberate test-hook crash, so a
#: CrashRequest (or scripted ``kill`` fault) death is distinguishable
#: from a real fault in CI logs.
_CRASH_EXIT_CODE = _faults.CRASH_EXIT_CODE

#: Default shared-memory lane size per worker (reply and request rings
#: alike).  Replies are one float64 per answered (s, t) pair, so 1 MiB
#: covers a 128k-pair sub-batch — far past the planner's batch shapes —
#: and packed REQCOL requests are smaller still; larger payloads fall
#: back to the pipe (counted in ``stats()['reply_path']`` /
#: ``stats()['request_path']``).
_LANE_BYTES_DEFAULT = 1 << 20


class _Lane:
    """One parent-owned shared-memory ring (reply, request, or sync).

    The parent creates (and finally unlinks) the segment; the peer
    attaches by name and the writing side places each payload at a ring
    offset announced in a tiny pipe frame.  Every use is lockstep — at
    most one payload per writer is live in its ring region at a time
    (one in-flight sub-batch per serve worker; one band chunk per build
    worker's double-buffered slice) — so no read/write barrier is
    needed.
    """

    __slots__ = ("shm", "size")

    def __init__(self, size: int) -> None:
        from multiprocessing import shared_memory

        self.shm = shared_memory.SharedMemory(create=True, size=size)
        self.size = size

    @property
    def name(self) -> str:
        return self.shm.name

    def view(self, offset: int, nbytes: int) -> memoryview:
        """Zero-copy window over one payload (valid until the next send)."""
        if not 0 <= offset <= self.size - nbytes:
            raise ValueError(
                f"lane window [{offset}, {offset + nbytes}) outside lane "
                f"of {self.size} bytes"
            )
        return self.shm.buf[offset : offset + nbytes]

    def destroy(self) -> None:
        """Close the parent mapping and unlink the segment (idempotent)."""
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a still-exported view
            pass  # (e.g. a traceback-pinned frame); unlink regardless
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


def _attach_lane(cfg: dict):
    """Worker-side attach to the parent's lane; returns the mapping.

    On CPython 3.11 attaching registers the segment with the resource
    tracker too, but spawned workers inherit the *parent's* tracker fd,
    so that register is an idempotent set-add on the registration the
    parent made at create time.  Ownership stays with the parent: its
    ``unlink`` in :meth:`WorkerPool.close` performs the single matching
    unregister.  (An explicit child-side unregister here would strip the
    parent's entry from the shared set and make that later unlink
    double-unregister, so we deliberately leave the tracker alone.)
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=cfg["name"])


class WorkerCrashed(RuntimeError):
    """A worker process died; raised (or returned per-request) after the
    respawn-and-retry budget is exhausted."""


class WorkerStalled(WorkerCrashed):
    """A worker is alive but sent no reply within the recv watchdog —
    SIGSTOP, a lock wedge, an endless loop.  Subclasses
    :class:`WorkerCrashed` so every existing crash handler (retry,
    breaker, Server's per-future failure mapping) applies unchanged."""


class ReplyCorrupted(WorkerCrashed):
    """A reply payload failed its CRC32 check (torn shared-memory
    write, truncated frame).  Handled like a crash: the sub-batch is
    retried on a respawned worker rather than unpacked into garbage."""


class RequestCorrupted(ReplyCorrupted):
    """A packed *request* payload failed its CRC32 check (or would not
    decode) on the worker side — the request lane's mirror of
    :class:`ReplyCorrupted`.  The worker reports it typed instead of
    reconstructing garbage requests, keeps serving, and the
    dispatcher's existing crash path retries the sub-batch (pickled,
    on a respawned worker) — never a wrong answer."""


class HedgeMismatch(WorkerCrashed):
    """A hedged duplicate of a sub-batch returned different bytes than
    the first answer.  Replicas must be bit-identical, so this is
    never retried — it means nondeterminism, not a transient fault."""


class CrashRequest(Request):
    """Test hook: a request that makes the worker ``os._exit`` mid-batch.

    Exists so the crash-handling path (respawn, retry, clean failure) is
    testable *deterministically* — the worker dies while the sub-batch
    is in flight, exactly the race a real OOM-kill hits.  Never emitted
    by production code; :meth:`Server.submit` rejects it at the door
    like any unknown request type.
    """

    __slots__ = ()
    kind = "crash"


def _request_pairs(req: Request) -> int:
    """Estimated kernel work for load balancing: underlying (s, t) pairs."""
    if isinstance(req, DistanceRequest):
        return 1
    if isinstance(req, OneToManyRequest):
        return max(1, len(req.targets))
    if isinstance(req, TableRequest):
        return max(1, len(req.sources) * len(req.targets))
    return 1


def _group_key(idx: int, req: Request):
    """The planner's grouping key, reproduced for split planning.

    Point requests group by shared source, one-to-many and table
    requests by identical target tuple — keeping every group on one
    worker preserves the exact kernel routing (and kernel batch sizes)
    of the single-process planner.
    """
    if isinstance(req, DistanceRequest):
        return ("p", req.source)
    if isinstance(req, OneToManyRequest):
        return ("o", req.targets)
    if isinstance(req, TableRequest):
        return ("t", req.targets)
    return ("x", idx)  # unknown kinds stay singleton groups


def plan_split(
    items: Sequence[Tuple[int, Request]], workers: int
) -> List[List[Tuple[int, Request]]]:
    """Assign ``(original_index, request)`` items to ``workers`` buckets.

    Groups (in the planner's sense) are kept whole *up to the fair
    share*: a group whose estimated cost exceeds ``total / workers`` —
    a skewed workload's hot order pool routinely is most of the batch —
    is chunked at request granularity so one worker cannot become the
    whole dispatch's critical path.  Splitting a group never changes
    answers (the planner contract makes every grouping bit-identical to
    direct calls); it only trades a wider table kernel for balance, and
    only when the alternative is idle workers.  Groups are then placed
    largest-first onto the least-loaded worker (ties: earliest first
    appearance, lowest worker id), and each bucket is re-sorted by
    original index so per-worker request order is deterministic.  The
    whole plan is deterministic for a given batch.
    """
    groups: "OrderedDict[tuple, List]" = OrderedDict()
    total = 0
    for idx, req in items:
        entry = groups.setdefault(_group_key(idx, req), [0, []])
        pairs = _request_pairs(req)
        entry[0] += pairs
        entry[1].append((idx, req, pairs))
        total += pairs
    fair_share = max(1, -(-total // workers))  # ceil
    pieces: List[List] = []
    for cost, members in groups.values():
        if cost <= fair_share or len(members) < 2:
            pieces.append([cost, members])
            continue
        # Chunk the oversized group into fair-share-sized pieces.
        piece_cost = 0
        piece: List = []
        for member in members:
            piece.append(member)
            piece_cost += member[2]
            if piece_cost >= fair_share:
                pieces.append([piece_cost, piece])
                piece_cost = 0
                piece = []
        if piece:
            pieces.append([piece_cost, piece])
    order = sorted(pieces, key=lambda g: (-g[0], g[1][0][0]))
    loads = [0] * workers
    buckets: List[List[Tuple[int, Request]]] = [[] for _ in range(workers)]
    for cost, members in order:
        w = min(range(workers), key=lambda j: (loads[j], j))
        loads[w] += cost
        buckets[w].extend((idx, req) for idx, req, _ in members)
    for bucket in buckets:
        bucket.sort(key=lambda item: item[0])
    return buckets


# ----------------------------------------------------------------------
# Result transport: one packed float64 column per sub-batch
# ----------------------------------------------------------------------
def _pack_results(requests: Sequence[Request], results: Sequence) -> bytes:
    """Flatten a sub-batch's answers into one little-endian f64 block.

    The dispatcher knows every answer's shape from the requests it kept,
    so no framing is needed; float64 round-trips are bit-exact, and the
    unpack side hands back *plain Python floats* — the same types the
    single-process planner path produces.
    """
    out = array("d")
    for req, res in zip(requests, results):
        if isinstance(req, DistanceRequest):
            out.append(res)
        elif isinstance(req, OneToManyRequest):
            out.extend(res)
        else:  # TableRequest
            for row in res:
                out.extend(row)
    return out.tobytes()


def _unpack_results(requests: Sequence[Request], blob) -> List[object]:
    flat = memoryview(blob).cast("d")
    results: List[object] = []
    pos = 0
    for req in requests:
        if isinstance(req, DistanceRequest):
            results.append(flat[pos])
            pos += 1
        elif isinstance(req, OneToManyRequest):
            k = len(req.targets)
            results.append(flat[pos : pos + k].tolist())
            pos += k
        else:
            nt = len(req.targets)
            rows = [
                flat[pos + i * nt : pos + (i + 1) * nt].tolist()
                for i in range(len(req.sources))
            ]
            results.append(rows)
            pos += len(req.sources) * nt
    return results


# ----------------------------------------------------------------------
# Worker process mains
# ----------------------------------------------------------------------
def _worker_main(conn, spec: dict) -> None:
    """Entry point of every pool process; ``spec['role']`` selects the loop.

    Boots, sends a ``("ready", n)`` handshake (so load errors surface at
    spawn time in the parent, not as a hang), then serves commands until
    ``("stop",)`` or parent death (EOF).
    """
    try:
        if spec.get("backend"):
            backend.force_backend(spec["backend"])
        if spec["role"] == "serve":
            from ..baselines.base import QueryPlanner
            from ..core.serialize import load_bundle

            path = spec.get("bundle_path")
            if path is not None:
                graph, engine = load_bundle(path, mmap=spec.get("mmap", True))
            else:
                graph, engine = load_bundle(spec["bundle"])
            planner = QueryPlanner(engine)
            lane_cfg = spec.get("lane")
            lane = _attach_lane(lane_cfg) if lane_cfg is not None else None
            req_cfg = spec.get("req_lane")
            req_lane = _attach_lane(req_cfg) if req_cfg is not None else None
            conn.send(("ready", graph.n))
            _serve_loop(
                conn,
                planner,
                lane,
                lane_cfg["size"] if lane_cfg else 0,
                req_lane,
            )
        elif spec["role"] == "build":
            conn.send(("ready", spec["n"]))
            _build_loop(conn, spec)
        else:
            raise ValueError(f"unknown worker role {spec['role']!r}")
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass  # parent went away; nothing to report to
    except Exception as exc:  # boot failure: tell the parent, then exit
        try:
            conn.send(("err", exc))
        except Exception:
            pass


def _recv_command(conn, poll_s: float = 1.0):
    """Worker-side command wait: a bounded poll loop with an orphan check.

    Under the ``fork`` context sibling workers inherit each other's
    parent-side pipe ends, so a SIGKILLed parent never delivers EOF to
    its workers — a plain ``conn.recv()`` would leave orphans running
    forever.  Polling with a short timeout and re-checking ``getppid``
    turns parent death into a clean ``EOFError`` exit within
    ``poll_s`` seconds.
    """
    ppid = os.getppid()
    while True:
        if conn.poll(poll_s):
            return conn.recv()
        if os.getppid() != ppid:
            raise EOFError("parent process is gone; worker exiting")


def _decode_request_frame(msg, req_lane):
    """``(requests, fault)`` from a packed request frame, verified.

    ``("reql", offset, nbytes, crc[, fault])`` resolves the payload
    from the request lane, ``("reqp", payload, crc[, fault])`` carries
    it on the pipe (the oversized fallback).  Either way the payload's
    CRC32 must match the one the dispatcher framed *before* any
    scripted request fault damaged the bytes — a mismatch (or a payload
    that will not decode) raises :class:`RequestCorrupted` so the
    caller reports it typed instead of executing garbage requests.
    """
    op = msg[0]
    if op == "reql":
        _, offset, nbytes, crc = msg[:4]
        fault = msg[4] if len(msg) > 4 else None
        if req_lane is None:
            raise RequestCorrupted(
                "request-lane frame arrived but no lane is attached"
            )
        payload = bytes(req_lane.buf[offset : offset + nbytes])
    else:
        _, payload, crc = msg[:3]
        fault = msg[3] if len(msg) > 3 else None
    if zlib.crc32(payload) != crc:
        raise RequestCorrupted(
            f"request payload failed CRC32 ({len(payload)} bytes via {op!r})"
        )
    try:
        return unpack_requests(payload), fault
    except Exception as exc:
        raise RequestCorrupted(
            f"request payload would not decode: {exc}"
        ) from None


def _serve_loop(
    conn, planner, lane=None, lane_size: int = 0, req_lane=None
) -> None:
    wpos = 0  # ring write head; single live reply, so wrap is just reset
    while True:
        msg = _recv_command(conn)
        op = msg[0]
        if op == "stop":
            conn.send(("bye",))
            return
        if op in ("batch", "reql", "reqp"):
            if op == "batch":
                # Pickled-object dispatch: the fallback seam (non-column
                # request kinds, retries, hedges, transport="pipe").
                # Scripted fault rides as a third element when the
                # dispatcher runs under a FaultPlan.
                requests = msg[1]
                fault = msg[2] if len(msg) > 2 else None
            else:
                try:
                    requests, fault = _decode_request_frame(msg, req_lane)
                except RequestCorrupted as exc:
                    conn.send(("err", exc))
                    continue
            if any(isinstance(r, CrashRequest) for r in requests):
                os._exit(_CRASH_EXIT_CODE)  # test hook: die mid-batch
            if fault is not None:
                _faults.apply_pre(fault)  # kill dies here, stall sleeps
            t0 = time.perf_counter()
            try:
                results = planner.execute(requests)
            except Exception as exc:
                conn.send(("err", exc))
                continue
            busy = time.perf_counter() - t0
            blob = _pack_results(requests, results)
            # CRC over the clean payload travels in the control frame;
            # reply faults damage only what gets written/sent after it,
            # exactly like a torn write under a real fault.
            crc = zlib.crc32(blob)
            payload = blob
            if fault is not None:
                payload = _faults.apply_reply(fault, blob)
            if lane is not None and len(payload) <= lane_size:
                if wpos + len(payload) > lane_size:
                    wpos = 0
                lane.buf[wpos : wpos + len(payload)] = payload
                conn.send(("okl", wpos, len(payload), crc, busy))
                # keep the next write 8-aligned for the f64 cast
                wpos = (wpos + len(payload) + 7) & ~7
            else:  # no lane, or an oversized reply: the pipe fallback
                conn.send(("ok", payload, crc, busy))
        elif op == "stats":
            conn.send(("ok", planner.stats()))
        else:
            conn.send(("err", ValueError(f"unknown worker op {op!r}")))


def _build_loop(conn, spec: dict) -> None:
    """Parallel hub-label build worker: bands in, label entries out.

    Holds the contraction's upward graphs plus a local replica of every
    finished label (grown by sync broadcasts), so each ``band`` command
    runs the exact pruned upward searches the serial build runs — same
    inputs, same entries, byte-identical flattened columns.

    Two protocols share the loop.  The **barrier** build (the A/B
    baseline) sends ``("band", nodes)`` and gets pickled entry lists
    back, then fences each band with an acked pickled ``("sync",
    entries)``.  The **pipelined** build sends ``("band", nodes,
    offset, limit)``: the worker packs its chunk into LBLCHUNK columns
    (:func:`repro.core.serialize.pack_label_entries`), writes it into
    its designated slice of the shared sync ring when it fits, and
    replies with a tiny ``("okb", offset, nbytes, crc, elapsed)`` frame
    (``("okp", blob, crc, elapsed)`` when oversized or laneless).  Peer
    chunks arrive as un-acked ``("syncl"/"syncp", ...)`` relays — pipe
    FIFO order makes the next ``band`` command the fence, which is what
    lets band *b*'s broadcast overlap band *b+1*'s compute.
    """
    from ..baselines.hl import _pruned_upward_labels
    from ..core.serialize import pack_label_entries, unpack_label_entries
    from ..graph.workspace import SearchWorkspace

    up_out, up_in, n = spec["up_out"], spec["up_in"], spec["n"]
    lane_cfg = spec.get("sync_lane")
    lane = _attach_lane(lane_cfg) if lane_cfg is not None else None
    fwd: List[Optional[list]] = [None] * n
    bwd: List[Optional[list]] = [None] * n
    ws = SearchWorkspace(n)
    while True:
        msg = _recv_command(conn)
        op = msg[0]
        if op == "stop":
            conn.send(("bye",))
            return
        if op == "band":
            t0 = time.perf_counter()
            out = []
            for u in msg[1]:
                f = _pruned_upward_labels(u, up_out, bwd, ws)
                b = _pruned_upward_labels(u, up_in, fwd, ws)
                fwd[u] = f
                bwd[u] = b
                out.append((u, f, b))
            elapsed = time.perf_counter() - t0
            if len(msg) == 2:  # barrier mode: pickled entry lists
                conn.send(("ok", out, elapsed))
                continue
            offset, limit = msg[2], msg[3]
            blob = pack_label_entries(out)
            crc = zlib.crc32(blob)
            if lane is not None and len(blob) <= limit:
                lane.buf[offset : offset + len(blob)] = blob
                conn.send(("okb", offset, len(blob), crc, elapsed))
            else:
                conn.send(("okp", blob, crc, elapsed))
        elif op == "sync":
            for u, f, b in msg[1]:
                fwd[u] = f
                bwd[u] = b
            conn.send(("ok",))
        elif op in ("syncl", "syncp"):
            if op == "syncl":
                _, offset, nbytes, crc = msg
                blob = (
                    bytes(lane.buf[offset : offset + nbytes])
                    if lane is not None
                    else b""
                )
            else:
                _, blob, crc = msg
            if zlib.crc32(blob) != crc:
                # There is no ack round to carry this back on; the err
                # frame surfaces at the parent's next recv from this
                # worker (its band-reply slot), failing the build typed
                # instead of silently diverging label replicas.
                conn.send(
                    (
                        "err",
                        ReplyCorrupted(
                            f"build sync chunk failed CRC32 "
                            f"({len(blob)} bytes via {op!r})"
                        ),
                    )
                )
                continue
            for u, f, b in unpack_label_entries(blob):
                fwd[u] = f
                bwd[u] = b
        else:
            conn.send(("err", ValueError(f"unknown build op {op!r}")))


def _default_context_name() -> str:
    """``fork`` where the platform offers it (cheap respawn, no spec
    pickling), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ----------------------------------------------------------------------
# WorkerHandle: one process + pipe + respawn — the shared substrate
# ----------------------------------------------------------------------
#: Upper bound on a worker's boot (spawn -> ready handshake).  Bounded
#: because a respawn can fork from a multi-threaded parent (the pool
#: dispatch thread), where a child wedged on an inherited lock before
#: reaching our code would otherwise hang the dispatch — and with it the
#: whole server — forever.  A timeout turns that wedge into the
#: already-handled WorkerCrashed path.  (``mp_context="spawn"`` avoids
#: fork-with-threads entirely, at the cost of re-importing per spawn.)
_BOOT_TIMEOUT_S = 120.0

#: Default recv watchdog when the caller passes no explicit timeout.
#: Generous — it backstops the parallel *build* loop, whose bands on a
#: loaded box legitimately take a while — but finite, so no caller of
#: :meth:`WorkerHandle.recv` can ever wait on a pipe unboundedly.  The
#: serving pool overrides it per dispatch with ``recv_timeout_s``.
_RECV_TIMEOUT_S = 600.0


class WorkerHandle:
    """One worker process with a duplex pipe and a respawn recipe.

    The spec is kept so :meth:`respawn` can boot an identical
    replacement after a crash — for serve workers that means reloading
    the engine replica from the same bundle.  All pipe errors are
    normalised to :class:`WorkerCrashed` so callers have exactly one
    failure mode to handle; a boot that neither fails nor reports ready
    within :data:`_BOOT_TIMEOUT_S` counts as crashed too.
    """

    def __init__(self, spec: dict, ctx=None) -> None:
        self.spec = spec
        self._ctx = ctx if ctx is not None else multiprocessing.get_context(
            _default_context_name()
        )
        self.respawns = 0
        self.process = None
        self.conn = None
        self.ready_info = None
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn, self.spec), daemon=True
        )
        proc.start()
        child_conn.close()
        try:
            if not parent_conn.poll(_BOOT_TIMEOUT_S):
                parent_conn.close()
                proc.terminate()
                proc.join(timeout=5)
                raise WorkerCrashed(
                    f"worker pid {proc.pid} never reported ready within "
                    f"{_BOOT_TIMEOUT_S:.0f}s; terminated"
                )
            msg = parent_conn.recv()
        except EOFError:
            parent_conn.close()
            proc.join()
            raise WorkerCrashed(
                f"worker pid {proc.pid} died during boot "
                f"(exitcode {proc.exitcode})"
            ) from None
        if msg[0] == "err":
            parent_conn.close()
            proc.join()
            raise msg[1]
        self.conn = parent_conn
        self.process = proc
        self.ready_info = msg[1]

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def send(self, message) -> None:
        if self.conn is None:
            raise WorkerCrashed(
                "worker handle has no live process (send after discard)"
            )
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(
                f"worker pid {self.pid} is gone (send failed: {exc})"
            ) from None

    def recv(self, timeout: Optional[float] = None):
        """One reply, bounded by a watchdog; never an unbounded pipe wait.

        Remote errors re-raise, dead pipes raise :class:`WorkerCrashed`,
        and a worker that sends nothing within ``timeout`` seconds
        (default :data:`_RECV_TIMEOUT_S`) raises :class:`WorkerStalled`
        — the stuck-but-alive case (SIGSTOP, wedged lock) that EOF
        detection can never see.
        """
        if self.conn is None:
            raise WorkerCrashed(
                "worker handle has no live process (recv after discard)"
            )
        limit = _RECV_TIMEOUT_S if timeout is None else timeout
        try:
            if not self.conn.poll(limit):
                alive = self.process.is_alive() if self.process else False
                raise WorkerStalled(
                    f"worker pid {self.pid} sent no reply within "
                    f"{limit:.1f}s (process alive={alive})"
                )
            reply = self.conn.recv()
        except (EOFError, OSError):
            raise WorkerCrashed(
                f"worker pid {self.pid} died mid-command "
                f"(exitcode {self.process.exitcode})"
            ) from None
        if reply[0] == "err":
            # Raise without leaving ``reply -> exc -> traceback -> this
            # frame -> reply`` as a self-sustaining cycle: the traceback
            # pins every frame it crossed (including callers holding
            # live lane views), which would keep the lane's buffer
            # exported past pool.close() until a cyclic GC pass.
            exc = reply[1]
            del reply
            try:
                raise exc
            finally:
                del exc
        return reply

    def call(self, message, timeout: Optional[float] = None):
        self.send(message)
        return self.recv(timeout)

    def respawn(self) -> None:
        """Discard the (dead or wedged) process and boot a replacement."""
        self._discard()
        self.respawns += 1
        self._spawn()

    def _discard(self) -> None:
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        proc = self.process
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
                if proc.is_alive():
                    # SIGTERM cannot land on a SIGSTOPped process and a
                    # wedged handler may ignore it; SIGKILL reaps both.
                    proc.kill()
            proc.join(timeout=5)
            self.process = None

    def close(self) -> None:
        """Polite bounded shutdown; falls back to terminate/kill."""
        if self.conn is not None:
            try:
                self.conn.send(("stop",))
                if self.conn.poll(5.0):
                    self.conn.recv()  # ("bye",)
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._discard()


def build_worker_handles(
    n: int,
    up_out,
    up_in,
    workers: int,
    mp_context: Optional[str] = None,
    backend_name: Optional[str] = None,
    sync_lane: Optional[dict] = None,
) -> List[WorkerHandle]:
    """Spawn ``workers`` build-role handles sharing one upward-graph spec.

    Under the default ``fork`` context the upward graphs are inherited
    copy-on-write (no pickling); under ``spawn`` they are pickled once
    per worker.  ``sync_lane`` (a ``{"name", "size"}`` dict for a
    parent-owned :class:`_Lane`) is the pipelined build's shared sync
    ring — every worker attaches the *same* segment, each writing only
    its designated slice.  Used by the parallel
    :class:`~repro.baselines.hl.HubLabelIndex` build.
    """
    ctx = multiprocessing.get_context(mp_context or _default_context_name())
    spec = {
        "role": "build",
        "n": n,
        "up_out": up_out,
        "up_in": up_in,
        "backend": backend_name or backend.active(),
    }
    if sync_lane is not None:
        spec["sync_lane"] = sync_lane
    return [WorkerHandle(spec, ctx) for _ in range(workers)]


# ----------------------------------------------------------------------
# WorkerPool: the sharded serving tier
# ----------------------------------------------------------------------
class WorkerPool:
    """Sharded batch execution over N bundle-booted engine replicas.

    Parameters
    ----------
    bundle:
        What workers boot from — a bundle *path* (each worker mmaps it;
        preferred: one page-cache copy serves every replica), bundle
        *bytes* (shipped over each worker's pipe at spawn), or a live
        index object (serialized to bytes once, here).
    workers:
        Replica count.
    cache:
        Optional shared :class:`DistanceCache` (or ``True`` for a
        default-sized one), consulted in the dispatcher before any
        sub-batch is sent and refilled from fresh point answers —
        planner rule 3, lifted one tier up.
    mp_context:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else ``spawn``).
    backend_name:
        Array backend forced in each worker (default: the parent's
        active backend, so an A/B benchmark's ``backend.forced`` scope
        propagates).
    max_retries:
        How many times a crashed sub-batch is retried on a fresh worker
        before its requests are failed with :class:`WorkerCrashed`.
        Retries pause per :class:`~repro.serve.health.BackoffPolicy`
        (capped exponential, deterministic jitter; first retry free).
    recv_timeout_s:
        Per-dispatch watchdog on every worker reply.  A worker that
        sends nothing within this budget — dead *or* stuck-but-alive —
        fails its sub-batch with :class:`WorkerStalled` and is
        force-respawned; no dispatch ever waits on a pipe unboundedly.
    hedge_after_s:
        If set, a sub-batch whose reply has not arrived after this many
        seconds is *hedged*: re-dispatched to an idle worker,
        first-answer-wins, and when both answer their bytes are
        asserted identical (:class:`HedgeMismatch` otherwise).  Default
        ``None`` (off) — hedging doubles work on stragglers, a
        tail-latency trade the operator must opt into.
    hedge_grace_s:
        After the race is won, how long the losing duplicate may stay
        in flight before its worker is force-respawned (default 1.0s).
        The dispatch that won does *not* wait: the loser's slot simply
        sits out subsequent dispatches until its duplicate reply is
        drained — and bit-compared against the winner — by the next
        ``execute``'s sweep, or until the grace expires.
    backoff:
        The retry pacing policy (default
        ``BackoffPolicy(base_s=0.02, cap_s=0.5)``).
    breaker:
        Per-worker :class:`~repro.serve.health.CircuitBreaker`
        (default: threshold 5, cooldown 1s doubling to 30s).  A slot
        whose failures keep burning the retry budget is quarantined;
        dispatches degrade group-preservingly onto the remaining
        workers, down to a documented single-process planner fallback
        when every slot is open (see README "Resilience").
    fault_plan:
        Test hook: a :class:`~repro.serve.faults.FaultPlan` scripting
        worker faults by (dispatch, slot).  Production pools pass
        ``None`` and every injection site is behind an ``is None``
        fast path.
    mmap:
        For path bundles: mmap the file (default) instead of reading it.
    reply_transport:
        ``"auto"`` (default) gives each worker a shared-memory result
        lane when the platform supports ``multiprocessing.shared_memory``,
        falling back to pipe replies otherwise; ``"shm"`` requires
        lanes; ``"pipe"`` forces the packed-float64 pipe path (the A/B
        baseline).  Answers are identical either way.
    lane_bytes:
        Size of each worker's reply lane (default 1 MiB); replies that
        do not fit fall back to the pipe for that sub-batch only.
    request_transport:
        The symmetric knob for the *request* side: ``"auto"``
        (default) packs each sub-batch into REQCOL columns in a
        per-worker shared-memory request lane and sends only a ~60 B
        control frame; ``"shm"`` requires lanes; ``"pipe"`` keeps the
        classic pickled-object dispatch (the A/B baseline).  Batches
        containing non-column request kinds fall back to pickled
        dispatch per sub-batch; answers are identical on every path.
    request_lane_bytes:
        Size of each worker's request lane (default 1 MiB); packed
        batches that do not fit ride the pipe packed (``"reqp"``) for
        that sub-batch only.

    ``execute`` is the whole query surface: one heterogeneous request
    batch in, positionally aligned results out, bit-identical to the
    single-process :class:`~repro.baselines.base.QueryPlanner` path.
    The pool is not thread-safe; :class:`repro.serve.Server` serialises
    access through one dispatch thread.
    """

    def __init__(
        self,
        bundle,
        *,
        workers: int = 2,
        cache=None,
        mp_context: Optional[str] = None,
        backend_name: Optional[str] = None,
        max_retries: int = 1,
        mmap: bool = True,
        reply_transport: str = "auto",
        lane_bytes: int = _LANE_BYTES_DEFAULT,
        request_transport: str = "auto",
        request_lane_bytes: int = _LANE_BYTES_DEFAULT,
        recv_timeout_s: float = 30.0,
        hedge_after_s: Optional[float] = None,
        hedge_grace_s: float = 1.0,
        backoff: Optional[BackoffPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        fault_plan=None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if reply_transport not in ("auto", "shm", "pipe"):
            raise ValueError(
                "reply_transport must be 'auto', 'shm' or 'pipe', got "
                f"{reply_transport!r}"
            )
        if lane_bytes <= 0:
            raise ValueError(f"lane_bytes must be positive, got {lane_bytes}")
        if request_transport not in ("auto", "shm", "pipe"):
            raise ValueError(
                "request_transport must be 'auto', 'shm' or 'pipe', got "
                f"{request_transport!r}"
            )
        if request_lane_bytes <= 0:
            raise ValueError(
                f"request_lane_bytes must be positive, got {request_lane_bytes}"
            )
        if recv_timeout_s <= 0:
            raise ValueError(
                f"recv_timeout_s must be positive, got {recv_timeout_s}"
            )
        if hedge_after_s is not None and hedge_after_s <= 0:
            raise ValueError(
                f"hedge_after_s must be positive or None, got {hedge_after_s}"
            )
        if hedge_grace_s < 0:
            raise ValueError(
                f"hedge_grace_s must be >= 0, got {hedge_grace_s}"
            )
        if cache is True:
            cache = DistanceCache()
        self.cache = cache
        self.max_retries = max_retries
        self.recv_timeout_s = recv_timeout_s
        self.hedge_after_s = hedge_after_s
        self.hedge_grace_s = hedge_grace_s
        self._backoff = backoff if backoff is not None else BackoffPolicy()
        self._breaker = (
            breaker if breaker is not None else CircuitBreaker(workers)
        )
        self._fault_plan = fault_plan
        spec: Dict[str, object] = {
            "role": "serve",
            "backend": backend_name or backend.active(),
        }
        if isinstance(bundle, str):
            spec["bundle_path"] = bundle
            spec["mmap"] = mmap
            self.transport = "mmap-path" if mmap else "file-path"
        elif isinstance(bundle, (bytes, bytearray, memoryview)):
            spec["bundle"] = bytes(bundle)
            self.transport = "pipe-bytes"
        elif hasattr(bundle, "graph"):  # a live index object
            from ..core.serialize import bundle_bytes

            spec["bundle"] = bundle_bytes(bundle)
            self.transport = "pipe-bytes"
        else:
            raise TypeError(
                "bundle must be a path, bytes, or an index object; got "
                f"{type(bundle).__name__!r}"
            )
        #: Base worker spec, kept for the all-quarantined planner fallback.
        self._spec = spec
        ctx = multiprocessing.get_context(mp_context or _default_context_name())
        # Shared-memory lanes: one reply ring and one request ring per
        # worker, recorded in a per-handle copy of the spec so a
        # respawned worker re-attaches the same segments.  "auto"
        # degrades to the pipe on the first creation failure; "shm"
        # propagates it.
        self._lane_bytes = lane_bytes
        self._req_lane_bytes = request_lane_bytes
        self._lanes: List[Optional[_Lane]] = []
        self._req_lanes: List[Optional[_Lane]] = []
        self._handles: List[WorkerHandle] = []
        self._reply_pipe_bytes = 0
        self._reply_shm_bytes = 0
        self._oversized_replies = 0
        lanes_on = reply_transport in ("auto", "shm")
        req_lanes_on = request_transport in ("auto", "shm")
        try:
            for _ in range(workers):
                lane = None
                if lanes_on:
                    try:
                        lane = _Lane(lane_bytes)
                    except Exception:
                        if reply_transport == "shm":
                            raise
                        lanes_on = False
                self._lanes.append(lane)
                req_lane = None
                if req_lanes_on:
                    try:
                        req_lane = _Lane(request_lane_bytes)
                    except Exception:
                        if request_transport == "shm":
                            raise
                        req_lanes_on = False
                self._req_lanes.append(req_lane)
                wspec = dict(spec)  # shallow: the bundle blob is shared
                if lane is not None:
                    wspec["lane"] = {"name": lane.name, "size": lane.size}
                if req_lane is not None:
                    wspec["req_lane"] = {
                        "name": req_lane.name,
                        "size": req_lane.size,
                    }
                self._handles.append(WorkerHandle(wspec, ctx))
        except BaseException:
            for handle in self._handles:
                try:
                    handle.close()
                except Exception:
                    pass
            for lane in (*self._lanes, *self._req_lanes):
                if lane is not None:
                    lane.destroy()
            raise
        #: Reply-path transport actually in effect ("shm" or "pipe").
        self.reply_transport = (
            "shm" if any(lane is not None for lane in self._lanes) else "pipe"
        )
        #: Request-path transport actually in effect ("shm" or "pipe").
        self.request_transport = (
            "shm"
            if any(lane is not None for lane in self._req_lanes)
            else "pipe"
        )
        #: Node count of the bundled graph (from the ready handshake) —
        #: what Server.submit validates request node ids against.
        self.n: int = self._handles[0].ready_info
        self._closed = False
        self._t0 = time.perf_counter()
        self._dispatches = 0
        self._imbalance_sum = 0.0
        # Request-path counters + per-slot request-ring write heads
        # (the rings are parent-owned, so the cursors live here and
        # survive worker respawns).
        self._req_pipe_bytes = 0
        self._req_shm_bytes = 0
        self._req_oversized = 0
        self._req_pickled = 0
        self._req_crc_failures = 0
        self._req_wpos = [0] * workers
        # Dispatch wall-time breakdown (stats()["dispatch"]).
        self._pack_s = 0.0
        self._send_s = 0.0
        self._compute_s = 0.0
        self._merge_s = 0.0
        self._wstats = [
            {"batches": 0, "requests": 0, "pairs": 0, "busy_s": 0.0}
            for _ in self._handles
        ]
        # Resilience counters (see stats()["resilience"]).
        self._watchdog_timeouts = 0
        self._retry_attempts = 0
        self._crc_failures = 0
        self._hedges = 0
        self._hedge_wins = 0
        self._hedge_parity = 0
        self._hedge_mismatches = 0
        self._quarantine_skips = 0
        self._fallback_batches = 0
        self._fb_planner = None  # lazy single-process degraded mode
        #: slot -> (winner_bytes, since): hedge losers still in flight,
        #: drained (and bit-compared) by _sweep_hedge_losers.
        self._hedge_pending: Dict[int, Tuple[bytes, float]] = {}

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self._handles)

    @property
    def handles(self) -> List[WorkerHandle]:
        """The live worker handles (exposed for tests/chaos tooling)."""
        return self._handles

    def pids(self) -> List[Optional[int]]:
        return [h.pid for h in self._handles]

    def lane_names(self) -> List[str]:
        """Names of every shared-memory segment the pool owns (reply
        and request lanes) — tests assert none outlive ``close()``."""
        return [
            lane.name
            for lane in (*self._lanes, *self._req_lanes)
            if lane is not None
        ]

    # ------------------------------------------------------------------
    def _encode_sub(self, slot: int, reqs: List[Request], fault):
        """One sub-batch -> its wire message, with request-path accounting.

        The happy path packs the requests into REQCOL columns, writes
        them at worker ``slot``'s request-ring cursor (8-aligned
        advance, wrap to 0 — safe because dispatch is lockstep per
        worker) and returns the tiny ``("reql", offset, nbytes, crc)``
        control frame.  A packed batch larger than the lane rides the
        pipe packed (``"reqp"``); a batch with non-column request kinds
        — or a pool with request lanes off — falls back to classic
        pickled dispatch.  Scripted *request* faults (``req_corrupt`` /
        ``req_truncate``) are consumed here: the frame keeps the clean
        payload's CRC and length while the damaged bytes go into the
        lane/pipe, exactly like a torn write the worker must catch; on
        the pickled path there is no packed payload to damage, so they
        are a documented no-op.  Every frame's pickled size is charged
        to ``pipe_bytes`` — the same accounting rule the reply path
        uses.
        """
        req_fault = None
        if fault is not None and _faults.is_request_fault(fault):
            req_fault, fault = fault, None
        lane = self._req_lanes[slot]
        blob = pack_requests(reqs) if lane is not None else None
        if blob is None:
            self._req_pickled += 1
            msg: tuple = ("batch", reqs)  # repro: allow[hot-path-pickle-discipline] — the fallback seam
            if fault is not None:
                msg = ("batch", reqs, fault)
            self._req_pipe_bytes += len(pickle.dumps(msg))
            return msg
        crc = zlib.crc32(blob)
        payload = blob
        if req_fault is not None:
            payload = _faults.apply_request(req_fault, blob)
        if len(blob) <= lane.size:
            wpos = self._req_wpos[slot]
            if wpos + len(blob) > lane.size:
                wpos = 0
            lane.shm.buf[wpos : wpos + len(payload)] = payload
            # keep the next write 8-aligned, mirroring the reply ring
            self._req_wpos[slot] = (wpos + len(blob) + 7) & ~7
            msg = ("reql", wpos, len(blob), crc)
            if fault is not None:
                msg = msg + (fault,)
            self._req_pipe_bytes += len(pickle.dumps(msg))
            self._req_shm_bytes += len(blob)
            return msg
        self._req_oversized += 1
        msg = ("reqp", payload, crc)
        if fault is not None:
            msg = msg + (fault,)
        self._req_pipe_bytes += len(pickle.dumps(msg))
        return msg

    # ------------------------------------------------------------------
    def _reply_payload(self, w: int, reply) -> Tuple[object, float]:
        """``(blob, busy_s)`` from either reply form, with byte accounting
        and CRC verification.

        ``("okl", offset, nbytes, crc, busy)`` control frames resolve to
        a zero-copy window over worker ``w``'s lane (only the ~60-byte
        pickled frame crossed the pipe — that is what gets charged to
        ``pipe_bytes``); ``("ok", blob, crc, busy)`` replies charge the
        full packed payload, and count as oversized when a lane existed
        but the reply did not fit it.  Either way the payload's CRC32
        must match the one the worker computed before writing — a torn
        lane write or truncated frame raises :class:`ReplyCorrupted`
        (retried like a crash) instead of unpacking garbage floats.
        """
        if reply[0] == "okl":
            _, offset, nbytes, crc, busy = reply
            view = self._lanes[w].view(offset, nbytes)
            if zlib.crc32(view) != crc:
                self._crc_failures += 1
                # Release before raising: the traceback would otherwise
                # keep this frame (and the exported view) alive in the
                # caller's typed-failure result.
                view.release()
                raise ReplyCorrupted(
                    f"worker {w} lane reply failed CRC32 "
                    f"({nbytes} bytes at ring offset {offset})"
                )
            self._reply_pipe_bytes += len(pickle.dumps(reply))
            self._reply_shm_bytes += nbytes
            return view, busy
        _, blob, crc, busy = reply
        if zlib.crc32(blob) != crc:
            self._crc_failures += 1
            raise ReplyCorrupted(
                f"worker {w} pipe reply failed CRC32 ({len(blob)} bytes)"
            )
        self._reply_pipe_bytes += len(blob)
        if self._lanes[w] is not None:
            self._oversized_replies += 1
        return blob, busy

    def _reply_blob(self, w: int, reply) -> bytes:
        """Raw payload bytes of a reply (hedge parity peek; no accounting)."""
        if reply[0] == "okl":
            _, offset, nbytes, _crc, _busy = reply
            return bytes(self._lanes[w].view(offset, nbytes))
        return bytes(reply[1])

    # ------------------------------------------------------------------
    def execute(
        self, requests: Sequence[Request], *, return_exceptions: bool = False
    ):
        """Answer a heterogeneous batch across the worker replicas.

        Results align with ``requests`` and are bit-identical to
        ``QueryPlanner(engine).execute(requests)`` in one process.  A
        sub-batch whose worker crashes (beyond the retry budget) fails
        *only its own requests*: with ``return_exceptions=True`` those
        slots hold the :class:`WorkerCrashed` instance (the Server tier
        maps them onto the right futures); otherwise the first failure
        raises — but only after every in-flight reply has been drained,
        so the pool is always left consistent and fully respawned.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        requests = list(requests)
        if not requests:
            return []
        results: List[object] = [None] * len(requests)
        done = [False] * len(requests)

        # Cache pre-pass (point requests only), one lock acquisition.
        cache = self.cache
        if cache is not None:
            point = [
                (i, r) for i, r in enumerate(requests)
                if isinstance(r, DistanceRequest)
            ]
            if point:
                got = cache.lookup_many([(r.source, r.target) for _, r in point])
                for (i, _), value in zip(point, got):
                    if value is not None:
                        results[i] = value
                        done[i] = True

        pending = [(i, r) for i, r in enumerate(requests) if not done[i]]

        # Resolve hedge losers from earlier dispatches first: a slot
        # whose duplicate reply is still in flight must not be sent new
        # work (its pipe would desync), so it sits out this round.
        if self._hedge_pending:
            self._sweep_hedge_losers()

        # Circuit breaker: quarantined slots receive no dispatches this
        # round.  The split stays group-preserving over the survivors,
        # so answers stay bit-identical — only the balance degrades.
        live = []
        for s in range(len(self._handles)):
            if s in self._hedge_pending:
                continue  # draining, not quarantined: no breaker skip
            if self._breaker.allow(s):
                live.append(s)
            else:
                self._quarantine_skips += 1
        dispatch_id = self._dispatches
        pair_loads: List[int] = []
        first_error: Optional[BaseException] = None

        if pending and not live:
            # Every slot is open: degraded single-process mode.  The
            # dispatcher runs the batch through its own planner replica
            # — same bundle, same planner contract, bit-identical
            # answers, no parallelism.
            self._fallback_batches += 1
            outcome: object
            try:
                fb_results = self._fallback_execute([r for _, r in pending])
            except Exception as exc:
                for i, _ in pending:
                    results[i] = exc
                first_error = exc
            else:
                for (i, _), value in zip(pending, fb_results):
                    results[i] = value
            dispatched = []
        else:
            plan = plan_split(pending, len(live)) if pending else []

            # Phase 1: encode and send every sub-batch (workers start
            # computing in parallel); a send that hits a dead pipe is
            # deferred to the recv phase's retry path so it cannot
            # stall the other workers.  Under a FaultPlan the scripted
            # action for (dispatch, slot) rides inside the message —
            # request-side actions are consumed by the encoder itself.
            dispatched = []
            busy_slots: Set[int] = set()
            for j, sub in enumerate(plan):
                if not sub:
                    continue
                slot = live[j]
                reqs = [r for _, r in sub]
                fault = None
                if self._fault_plan is not None:
                    fault = self._fault_plan.take(dispatch_id, slot)
                t_pack = time.perf_counter()
                msg = self._encode_sub(slot, reqs, fault)
                t_send = time.perf_counter()
                self._pack_s += t_send - t_pack
                try:
                    self._handles[slot].send(msg)
                    sent = True
                except WorkerCrashed:
                    sent = False
                self._send_s += time.perf_counter() - t_send
                dispatched.append((slot, sub, sent))
                busy_slots.add(slot)

            # Phase 2: collect replies in dispatch order under the recv
            # watchdog, hedging stragglers and retrying failed
            # sub-batches on respawned workers with backoff.  Every
            # dispatched sub-batch is resolved here — success, remote
            # error, or a typed WorkerCrashed subclass — so no reply is
            # ever left in a pipe and nothing waits unboundedly.
            for slot, sub, sent in dispatched:
                reqs = [r for _, r in sub]
                try:
                    blob, busy_s, aslot = self._collect_sub(
                        slot, reqs, sent, busy_slots
                    )
                    busy_slots.discard(slot)
                    t_merge = time.perf_counter()
                    sub_results = _unpack_results(reqs, blob)
                    del blob  # release the lane window before the next send
                    stats = self._wstats[aslot]
                    stats["batches"] += 1
                    stats["requests"] += len(reqs)
                    pairs = sum(_request_pairs(r) for r in reqs)
                    stats["pairs"] += pairs
                    stats["busy_s"] += busy_s
                    self._compute_s += busy_s
                    pair_loads.append(pairs)
                    for (i, _), value in zip(sub, sub_results):
                        results[i] = value
                    self._merge_s += time.perf_counter() - t_merge
                    continue
                except Exception as exc:  # typed failure or remote error
                    busy_slots.discard(slot)
                    outcome = exc
                for i, _ in sub:
                    results[i] = outcome
                if first_error is None:
                    first_error = outcome

        self._dispatches += 1
        if len(pair_loads) > 1:
            mean = sum(pair_loads) / len(pair_loads)
            self._imbalance_sum += (max(pair_loads) / mean) if mean else 1.0
        elif pair_loads:
            self._imbalance_sum += 1.0

        # Cache post-pass: store freshly *computed* point distances
        # (``pending`` excludes the pre-pass hits by construction).
        if cache is not None:
            fresh = [
                ((r.source, r.target), results[i])
                for i, r in pending
                if isinstance(r, DistanceRequest) and isinstance(results[i], float)
            ]
            if fresh:
                cache.store_many(fresh)

        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    def _collect_sub(
        self, slot: int, reqs: List[Request], sent: bool, busy_slots: Set[int]
    ) -> Tuple[object, float, int]:
        """Resolve one dispatched sub-batch to ``(payload, busy_s, slot)``.

        The happy path is a watchdog-bounded (possibly hedged) recv plus
        CRC verification; any :class:`WorkerCrashed` flavour — death,
        stall, corrupted reply — is recorded against the slot's breaker
        and falls through to the backoff retry loop.  Only
        :class:`HedgeMismatch` is terminal: divergent replicas mean
        nondeterminism, which no retry can repair.
        """
        if sent:
            try:
                reply, aslot = self._await_reply(slot, reqs, busy_slots)
                blob, busy_s = self._reply_payload(aslot, reply)
                self._breaker.record_success(slot)
                return blob, busy_s, aslot
            except HedgeMismatch:
                raise
            except WorkerCrashed as exc:
                self._note_fault(slot, exc)
                cause: Optional[WorkerCrashed] = exc
        else:
            cause = None
        blob, busy_s = self._retry_sub(slot, reqs, cause=cause)
        # Break the frame <-> traceback cycle: ``cause``'s traceback
        # references this frame, which now holds a live lane view in
        # ``blob`` — left to the cyclic GC, that view would keep the
        # lane's buffer exported past pool.close().
        del cause
        self._breaker.record_success(slot)
        return blob, busy_s, slot

    def _note_fault(self, slot: int, exc: BaseException) -> None:
        self._breaker.record_failure(slot)
        if isinstance(exc, WorkerStalled):
            self._watchdog_timeouts += 1
        if isinstance(exc, RequestCorrupted):
            # The worker refused a damaged request payload; the reply
            # CRC counter is untouched (that check never ran).
            self._req_crc_failures += 1

    def _await_reply(
        self, slot: int, reqs: List[Request], busy_slots: Set[int]
    ):
        """First reply for ``slot``'s sub-batch, under the watchdog.

        Without hedging this is a plain bounded recv.  With
        ``hedge_after_s`` set, a straggling sub-batch is re-dispatched
        to an idle worker and the first answer wins (the original wins
        ties, keeping the common case deterministic); the loser is
        drained and bit-parity asserted, or force-respawned if still
        busy after the grace window.  Returns ``(reply,
        answering_slot)`` so lane windows resolve against the worker
        that actually answered.
        """
        h = self._handles[slot]
        if self.hedge_after_s is None or h.conn is None:
            return h.recv(self.recv_timeout_s), slot
        if h.conn.poll(min(self.hedge_after_s, self.recv_timeout_s)):
            return h.recv(self.recv_timeout_s), slot
        remaining = max(0.001, self.recv_timeout_s - self.hedge_after_s)
        hslot = self._pick_idle(slot, busy_slots)
        if hslot is None:  # no spare capacity: just keep waiting
            return h.recv(remaining), slot
        hh = self._handles[hslot]
        self._hedges += 1
        try:
            # Hedges ride the pickled path: the duplicate must not
            # disturb the straggler's request-ring slot.
            hh.send(("batch", reqs))  # repro: allow[hot-path-pickle-discipline]
        except WorkerCrashed:
            return h.recv(remaining), slot
        deadline = time.monotonic() + remaining
        contenders = {slot: h, hslot: hh}
        while contenders:
            budget = deadline - time.monotonic()
            if budget <= 0.0:
                break
            ready = _conn_wait(
                [ch.conn for ch in contenders.values()], timeout=budget
            )
            if not ready:
                break
            if slot in contenders and contenders[slot].conn in ready:
                cand = slot
            else:
                cand = next(
                    s for s, ch in contenders.items() if ch.conn in ready
                )
            ch = contenders.pop(cand)
            try:
                reply = ch.recv(1.0)
            except WorkerCrashed:
                ch.respawn()  # the slot must come back live either way
                if not contenders:
                    raise
                continue  # keep waiting on the survivor
            except BaseException:
                # A remote planner error: resolve every other in-flight
                # duplicate before propagating so no pipe desyncs.
                for other in contenders.values():
                    other.respawn()
                raise
            if cand == hslot:
                self._hedge_wins += 1
            if contenders:
                # First answer wins *now*: the loser's duplicate is left
                # in flight and resolved by a later sweep, so the client
                # never waits for the straggler it was hedged against.
                winner_blob = self._reply_blob(cand, reply)
                since = time.monotonic()
                for other in contenders:
                    self._hedge_pending[other] = (winner_blob, since)
            return reply, cand
        # Deadline expired with no winner: both sides straggled.  The
        # hedge is respawned here (a late duplicate reply would desync
        # its pipe); the original goes through the caller's retry path.
        if hslot in contenders:
            hh.respawn()
        raise WorkerStalled(
            f"worker pid {h.pid} (and its hedge) sent no reply within "
            f"{self.recv_timeout_s:.1f}s"
        )

    def _pick_idle(self, slot: int, busy_slots: Set[int]) -> Optional[int]:
        """Lowest live, breaker-allowed slot with no in-flight dispatch."""
        for s in range(len(self._handles)):
            if s == slot or s in busy_slots or s in self._hedge_pending:
                continue
            if self._handles[s].conn is None:
                continue
            if not self._breaker.allow(s):
                continue
            return s
        return None

    def _sweep_hedge_losers(self) -> None:
        """Drain (and parity-check) or dispose of losing hedge duplicates.

        A loser's reply must leave its pipe before the slot can be
        dispatched to again, but the dispatch that won never waits for
        it: the slot sits out rounds until this sweep (run at the top
        of every ``execute``) finds the duplicate ready.  A drained
        duplicate is asserted bit-identical to the winner — the
        cheapest end-to-end exactness check the tier has; a loser
        still busy past the grace window (or dead) is force-respawned
        instead, which clears the pipe just as surely.
        """
        now = time.monotonic()
        for slot in list(self._hedge_pending):
            winner_blob, since = self._hedge_pending[slot]
            h = self._handles[slot]
            try:
                if h.conn is None or not h.conn.poll(0):
                    if now - since > self.hedge_grace_s:
                        del self._hedge_pending[slot]
                        h.respawn()
                    continue
                reply = h.recv(1.0)
            except WorkerCrashed:
                del self._hedge_pending[slot]
                h.respawn()
                continue
            except BaseException:
                del self._hedge_pending[slot]
                continue  # remote error from the duplicate; frame drained
            del self._hedge_pending[slot]
            loser_blob = self._reply_blob(slot, reply)
            self._hedge_parity += 1
            if loser_blob != winner_blob:
                self._hedge_mismatches += 1
                raise HedgeMismatch(
                    f"hedged duplicate returned different bytes "
                    f"({len(loser_blob)} vs {len(winner_blob)}); replica "
                    "answers must be bit-identical"
                )

    def _retry_sub(
        self,
        slot: int,
        reqs: List[Request],
        cause: Optional[WorkerCrashed] = None,
    ) -> Tuple[object, float]:
        """Respawn worker ``slot`` and re-run its sub-batch, bounded.

        Pacing follows the backoff policy (first retry free, then
        capped exponential with deterministic jitter).  Always leaves
        the slot holding a *live* worker — even on the giving-up path —
        so one poisonous sub-batch cannot shrink the pool.  The
        giving-up error keeps the *type* of the last fault (a stall
        that exhausts its budget still fails as
        :class:`WorkerStalled`), so callers see what actually went
        wrong.
        """
        handle = self._handles[slot]
        for attempt in range(self.max_retries):
            pause = self._backoff.delay(slot, attempt)
            if pause > 0.0:
                time.sleep(pause)
            self._retry_attempts += 1
            handle.respawn()
            try:
                # Retries ride the pickled path: after a RequestCorrupted
                # (or any crash) the clean objects must get through even
                # if the lane itself is what broke.
                handle.send(("batch", reqs))  # repro: allow[hot-path-pickle-discipline]
                reply = handle.recv(self.recv_timeout_s)
                return self._reply_payload(slot, reply)
            except WorkerCrashed as exc:
                self._note_fault(slot, exc)
                cause = exc
                continue
            # a remote ("err", exc) reply propagates to the caller
        handle.respawn()
        kind = type(cause) if isinstance(cause, WorkerCrashed) else WorkerCrashed
        raise kind(
            f"worker {slot} failed the same {len(reqs)}-request sub-batch "
            f"{self.max_retries + 1}x; requests failed, worker respawned"
        ) from cause

    def _fallback_execute(self, reqs: List[Request]):
        """Single-process degraded mode: every slot is quarantined.

        Lazily boots one planner replica *in the dispatcher* from the
        same bundle spec the workers use, so answers stay bit-identical
        (planner contract) while the breakers cool down.  A torn bundle
        surfaces as the serializer's typed
        :class:`~repro.core.serialize.BundleCorrupted` — degraded mode
        never serves garbage either.
        """
        if self._fb_planner is None:
            from ..baselines.base import QueryPlanner
            from ..core.serialize import load_bundle

            path = self._spec.get("bundle_path")
            if path is not None:
                _, engine = load_bundle(
                    path, mmap=bool(self._spec.get("mmap", True))
                )
            else:
                _, engine = load_bundle(self._spec["bundle"])
            self._fb_planner = QueryPlanner(engine)
        return self._fb_planner.execute(reqs)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The worker-tier picture: per-worker counters + dispatch shape.

        ``busy_s`` is compute time measured inside each worker;
        ``idle_s`` is the rest of that worker's lifetime (dispatch gaps
        + IPC).  ``mean_dispatch_imbalance`` is the mean over dispatches
        of ``max(sub-batch pairs) / mean(sub-batch pairs)`` — 1.0 is a
        perfectly even split.
        """
        wall = time.perf_counter() - self._t0
        per_worker = []
        for handle, stats in zip(self._handles, self._wstats):
            per_worker.append(
                {
                    "pid": handle.pid,
                    "batches": stats["batches"],
                    "requests": stats["requests"],
                    "pairs": stats["pairs"],
                    "busy_s": round(stats["busy_s"], 6),
                    "idle_s": round(max(0.0, wall - stats["busy_s"]), 6),
                    "respawns": handle.respawns,
                }
            )
        out = {
            "workers": len(self._handles),
            "transport": self.transport,
            "reply_path": {
                "transport": self.reply_transport,
                "lane_bytes": (
                    self._lane_bytes if self.reply_transport == "shm" else None
                ),
                "pipe_bytes": self._reply_pipe_bytes,
                "shm_bytes": self._reply_shm_bytes,
                "oversized_replies": self._oversized_replies,
                "crc_failures": self._crc_failures,
            },
            "request_path": {
                "transport": self.request_transport,
                "lane_bytes": (
                    self._req_lane_bytes
                    if self.request_transport == "shm"
                    else None
                ),
                "pipe_bytes": self._req_pipe_bytes,
                "shm_bytes": self._req_shm_bytes,
                "oversized_batches": self._req_oversized,
                "pickled_batches": self._req_pickled,
                "crc_failures": self._req_crc_failures,
            },
            "dispatch": {
                "pack_s": round(self._pack_s, 6),
                "send_s": round(self._send_s, 6),
                "compute_s": round(self._compute_s, 6),
                "merge_s": round(self._merge_s, 6),
            },
            "resilience": {
                "recv_timeout_s": self.recv_timeout_s,
                "watchdog_timeouts": self._watchdog_timeouts,
                "retry": {
                    "max_retries": self.max_retries,
                    "attempts": self._retry_attempts,
                    "backoff": self._backoff.describe(),
                },
                "hedge": {
                    "after_s": self.hedge_after_s,
                    "grace_s": self.hedge_grace_s,
                    "hedges": self._hedges,
                    "wins": self._hedge_wins,
                    "parity_checks": self._hedge_parity,
                    "mismatches": self._hedge_mismatches,
                    "draining": len(self._hedge_pending),
                },
                "breaker": {
                    "threshold": self._breaker.threshold,
                    "quarantine_skips": self._quarantine_skips,
                    "fallback_batches": self._fallback_batches,
                    "per_slot": self._breaker.snapshot(),
                },
            },
            "dispatches": self._dispatches,
            "mean_dispatch_imbalance": round(
                self._imbalance_sum / self._dispatches, 4
            )
            if self._dispatches
            else 0.0,
            "respawns": sum(h.respawns for h in self._handles),
            "per_worker": per_worker,
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out

    def worker_planner_stats(self) -> List[dict]:
        """Each replica's planner counters (kernel routing per worker)."""
        return [h.call(("stats",))[1] for h in self._handles]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and unlink all lanes (idempotent).

        Workers go first (they hold attachments to the segments), then
        every reply and request lane is closed *and unlinked* — no
        ``/dev/shm`` entries outlive the pool, even after worker
        crashes and respawns.
        """
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            handle.close()
        for lane in (*self._lanes, *self._req_lanes):
            if lane is not None:
                lane.destroy()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
