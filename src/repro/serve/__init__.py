"""``repro.serve`` — the asyncio serving subsystem.

Turns the repo's library of distance oracles into a *system that serves
them*: a :class:`Server` coalesces concurrent in-flight requests into
:class:`~repro.baselines.base.QueryPlanner` batches (window / max-batch
policy, backpressure, per-request deadlines) so one index answers many
clients through its batched kernels instead of one query at a time.

The request vocabulary is the planner's
(:class:`~repro.baselines.base.DistanceRequest` /
:class:`~repro.baselines.base.OneToManyRequest` /
:class:`~repro.baselines.base.TableRequest`), re-exported here so a
serving client needs only this package::

    from repro.serve import Server, DistanceRequest

    async with Server(engine, cache=True) as server:
        d = await server.distance(3, 999)

Scaling past one core, :mod:`repro.serve.pool` adds the multi-process
worker tier: a :class:`WorkerPool` of engine replicas booted from a
shared serialized bundle, pluggable into the same :class:`Server`::

    from repro.serve import Server, WorkerPool

    pool = WorkerPool("nh.bundle", workers=4, cache=True)
    async with Server(None, pool=pool) as server:
        d = await server.distance(3, 999)
    pool.close()

See ``examples/serve_demo.py`` / ``examples/scale_out.py`` for the full
tour and ``benchmarks/test_serve_speed.py`` /
``benchmarks/test_pool_speed.py`` for the recorded throughput story.
"""

from ..baselines.base import (
    DistanceRequest,
    OneToManyRequest,
    Request,
    TableRequest,
)
from ..core.serialize import BundleCorrupted
from .faults import FaultPlan
from .health import BackoffPolicy, CircuitBreaker
from .pool import (
    HedgeMismatch,
    ReplyCorrupted,
    RequestCorrupted,
    WorkerCrashed,
    WorkerPool,
    WorkerStalled,
)
from .server import DeadlineExpired, Server, ServerClosed, ServerOverloaded

__all__ = [
    "BackoffPolicy",
    "BundleCorrupted",
    "CircuitBreaker",
    "DeadlineExpired",
    "DistanceRequest",
    "FaultPlan",
    "HedgeMismatch",
    "OneToManyRequest",
    "ReplyCorrupted",
    "Request",
    "RequestCorrupted",
    "Server",
    "ServerClosed",
    "ServerOverloaded",
    "TableRequest",
    "WorkerCrashed",
    "WorkerPool",
    "WorkerStalled",
]
