"""Datasets: synthetic road networks, the scaled Table-2 suite, workloads."""

from .paper_graph import PAPER_NODE_NAMES, PAPER_REGION_B, paper_figure1
from .suite import SUITE, SuiteSpec, dataset, dataset_spec, suite_table
from .synthetic import (
    SPEED_ARTERIAL,
    SPEED_HIGHWAY,
    SPEED_LOCAL,
    grid_city,
    random_geometric,
    towns_and_highways,
)
from .workloads import (
    NUM_BUCKETS,
    QueryWorkloads,
    estimate_lmax,
    generate_workloads,
)

__all__ = [
    "grid_city",
    "towns_and_highways",
    "random_geometric",
    "SPEED_LOCAL",
    "SPEED_ARTERIAL",
    "SPEED_HIGHWAY",
    "paper_figure1",
    "PAPER_NODE_NAMES",
    "PAPER_REGION_B",
    "SUITE",
    "SuiteSpec",
    "dataset",
    "dataset_spec",
    "suite_table",
    "QueryWorkloads",
    "estimate_lmax",
    "generate_workloads",
    "NUM_BUCKETS",
]
