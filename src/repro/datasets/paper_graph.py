"""The running example of the paper (Figures 1, 2 and 4) as a real graph.

The 11-node road network ``G`` of Figure 1 is reconstructed with
coordinates matching the 8x8 grid of Figure 4, so that the region ``B``
discussed throughout Sections 2-4 (min corner at cell ``(1, 2)``) exhibits
exactly the properties the text claims:

* ``<v9, v6, v10, v8>`` and ``<v11, v7, v4>`` are spanning paths of ``B``;
* ``<v6, v10>`` and ``<v11, v7>`` are arterial edges of ``B``;
* ``v1, v2, v9, v11`` and ``v3, v4, v7, v8`` are border nodes of ``B``;
* ``v6`` and ``v10`` are *not* border nodes (they sit in the centre 2x2);
* the shortest path from ``v9`` to ``v10`` passes only through ``v6``
  (weight 2), and the one from ``v8`` to ``v9`` passes through ``v10``;
* ``dist(v1, v10) = w(v1,v11) + w(v11,v10) = 4``.

These facts are locked in by ``tests/test_paper_graph.py``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..graph.builder import GraphBuilder
from ..graph.graph import Graph

__all__ = ["paper_figure1", "PAPER_NODE_NAMES", "PAPER_REGION_B"]

# Cell (column, row) of each node in the 8x8 grid of Figure 4; nodes sit at
# cell centres of a unit-cell grid anchored at the origin.
_CELLS: Dict[str, Tuple[int, int]] = {
    "v1": (0, 3),
    "v2": (0, 4),
    "v3": (5, 4),
    "v4": (5, 2),
    "v5": (2, 5),
    "v6": (2, 4),
    "v7": (3, 2),
    "v8": (4, 5),
    "v9": (1, 5),
    "v10": (3, 4),
    "v11": (1, 2),
}

# Bidirectional edges with the figure's weights (legend: weight 1 or 2).
_EDGES = [
    ("v1", "v11", 2.0),
    ("v2", "v9", 1.0),
    ("v9", "v5", 2.0),
    ("v5", "v8", 2.0),
    ("v9", "v6", 1.0),
    ("v6", "v10", 1.0),
    ("v10", "v8", 1.0),
    ("v10", "v11", 2.0),
    ("v11", "v7", 1.0),
    ("v7", "v4", 1.0),
    ("v7", "v8", 2.0),
    ("v8", "v3", 1.0),
]

#: Min-corner cell of the 4x4 region ``B`` of Figure 4, in the 8x8 grid.
PAPER_REGION_B = (1, 2)

#: ``PAPER_NODE_NAMES[i]`` is the paper's name for node id ``i``.
PAPER_NODE_NAMES = tuple(f"v{i}" for i in range(1, 12))


def paper_figure1() -> Graph:
    """Build the Figure-1 road network; node ``v{i}`` has id ``i - 1``."""
    builder = GraphBuilder()
    for name in PAPER_NODE_NAMES:
        cx, cy = _CELLS[name]
        builder.add_node(cx + 0.5, cy + 0.5)
    for a, b, w in _EDGES:
        ia = PAPER_NODE_NAMES.index(a)
        ib = PAPER_NODE_NAMES.index(b)
        builder.add_bidirectional_edge(ia, ib, w)
    return builder.build()
