"""Synthetic road-network generators.

The paper evaluates on ten DIMACS USA road networks which we cannot ship
in this offline environment, so these generators produce networks with the
same *structural* property the paper's whole approach rests on: a small
arterial dimension (Assumption 1), arising from an explicit road hierarchy
— a few fast long-haul roads (highways), a sparse mid-tier (arterials) and
a dense slow local mesh.  Figure 3's reproduction measures the arterial
dimension of these networks to validate the substitution.

Three families are provided:

* :func:`grid_city` — a Manhattan-style mesh whose every ``a``-th row or
  column is an arterial and every ``g``-th a highway (faster traversal).
* :func:`towns_and_highways` — small grid towns scattered in the plane,
  their centres joined by a planar highway graph (Delaunay/Gabriel), the
  classic "cities + interstates" shape of the paper's datasets.
* :func:`random_geometric` — a k-nearest-neighbour geometric graph; *not*
  road-like (unbounded arterial dimension in theory), used for
  robustness testing of the indexes.

All weights are travel times (edge length / speed), matching the paper's
datasets, and all generators are deterministic given ``seed``.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

from ..graph.builder import GraphBuilder
from ..graph.graph import Graph

__all__ = [
    "grid_city",
    "towns_and_highways",
    "random_geometric",
    "SPEED_LOCAL",
    "SPEED_ARTERIAL",
    "SPEED_HIGHWAY",
]

# Speeds in coordinate-units per time-unit.  With blocks of 100 units these
# correspond to plausible 30 / 60 / 90 km/h road tiers.
SPEED_LOCAL = 10.0
SPEED_ARTERIAL = 20.0
SPEED_HIGHWAY = 30.0


def _tier_speed(index: int, arterial_every: int, highway_every: int) -> float:
    """Speed of the road running along row/column ``index``."""
    if highway_every and index % highway_every == 0:
        return SPEED_HIGHWAY
    if arterial_every and index % arterial_every == 0:
        return SPEED_ARTERIAL
    return SPEED_LOCAL


def _euclid(ax: float, ay: float, bx: float, by: float) -> float:
    return math.hypot(ax - bx, ay - by)


def grid_city(
    width: int,
    height: int,
    *,
    block: float = 100.0,
    arterial_every: int = 4,
    highway_every: int = 16,
    jitter: float = 0.2,
    prune: float = 0.15,
    oneway: float = 0.0,
    seed: int = 0,
    origin: Tuple[float, float] = (0.0, 0.0),
) -> Graph:
    """Generate a Manhattan grid city with a three-tier road hierarchy.

    Parameters
    ----------
    width, height:
        Number of intersections per axis (total ``width * height`` nodes).
    block:
        Distance between adjacent intersections.
    arterial_every, highway_every:
        Every ``arterial_every``-th row/column is an arterial, every
        ``highway_every``-th a highway; pass 0 to disable a tier.
    jitter:
        Fraction of ``block`` by which intersections are displaced
        (avoids coordinate ties, which would force the grid pyramid to
        its depth cap).
    prune:
        Fraction of *local* street segments deleted, making the mesh
        irregular.  A random spanning tree is protected so the network
        stays strongly connected.
    oneway:
        Fraction of surviving non-tree local streets converted to one-way
        (a directed edge); the protected tree keeps strong connectivity.
    seed:
        RNG seed; identical inputs yield identical networks.
    origin:
        Min corner of the city in the plane (used to place several cities
        side by side).
    """
    if width < 2 or height < 2:
        raise ValueError("grid_city needs width >= 2 and height >= 2")
    if not 0 <= prune < 1 or not 0 <= oneway <= 1:
        raise ValueError("prune must be in [0,1) and oneway in [0,1]")
    rng = random.Random(seed)
    builder = GraphBuilder()
    ox, oy = origin
    node_id: List[List[int]] = [[0] * height for _ in range(width)]
    for cx in range(width):
        for cy in range(height):
            jx = rng.uniform(-jitter, jitter) * block
            jy = rng.uniform(-jitter, jitter) * block
            node_id[cx][cy] = builder.add_node(ox + cx * block + jx, oy + cy * block + jy)

    # Enumerate undirected segments with their road tier speed.
    segments: List[Tuple[int, int, float]] = []
    xs, ys = builder._xs, builder._ys  # noqa: SLF001 - same-package fast path
    for cx in range(width):
        for cy in range(height):
            u = node_id[cx][cy]
            if cx + 1 < width:  # horizontal street along row cy
                v = node_id[cx + 1][cy]
                segments.append((u, v, _tier_speed(cy, arterial_every, highway_every)))
            if cy + 1 < height:  # vertical street along column cx
                v = node_id[cx][cy + 1]
                segments.append((u, v, _tier_speed(cx, arterial_every, highway_every)))

    protected = _random_spanning_tree(builder.node_count, segments, rng)
    for idx, (u, v, speed) in enumerate(segments):
        weight = _euclid(xs[u], ys[u], xs[v], ys[v]) / speed
        is_local = speed == SPEED_LOCAL
        if idx not in protected and is_local:
            if rng.random() < prune:
                continue
            if oneway and rng.random() < oneway:
                if rng.random() < 0.5:
                    builder.add_edge(u, v, weight)
                else:
                    builder.add_edge(v, u, weight)
                continue
        builder.add_bidirectional_edge(u, v, weight)
    return builder.build()


def _random_spanning_tree(
    n: int, segments: Sequence[Tuple[int, int, float]], rng: random.Random
) -> set:
    """Indices of segments forming a random spanning tree (union-find).

    Protecting these from pruning keeps the generated network connected
    (bidirectional tree edges give strong connectivity).
    """
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    order = list(range(len(segments)))
    rng.shuffle(order)
    tree: set = set()
    for idx in order:
        u, v, _ = segments[idx]
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            tree.add(idx)
            if len(tree) == n - 1:
                break
    return tree


def towns_and_highways(
    n_towns: int,
    town_width: int = 6,
    town_height: int = 6,
    *,
    area: float = 50_000.0,
    block: float = 100.0,
    min_separation_blocks: int = 12,
    seed: int = 0,
    prune: float = 0.1,
) -> Graph:
    """Generate scattered grid towns joined by a planar highway network.

    Town centres are sampled with a minimum separation; each town is a
    small :func:`grid_city`-style mesh; centres are connected by the
    Gabriel graph of the centre points (a planar, sparse, realistic
    inter-city road layout) using highway speed.

    This family most closely mimics the paper's datasets: long shortest
    paths are forced onto the few highways, which is exactly what keeps
    the arterial dimension small.
    """
    if n_towns < 2:
        raise ValueError("need at least two towns")
    rng = random.Random(seed)
    min_sep = min_separation_blocks * block
    town_span = max(town_width, town_height) * block
    centres: List[Tuple[float, float]] = []
    attempts = 0
    while len(centres) < n_towns:
        attempts += 1
        if attempts > 200 * n_towns:
            raise ValueError(
                "could not place towns; lower n_towns or min_separation_blocks"
            )
        x = rng.uniform(town_span, area - town_span)
        y = rng.uniform(town_span, area - town_span)
        if all(_euclid(x, y, cx, cy) >= min_sep + town_span for cx, cy in centres):
            centres.append((x, y))

    builder = GraphBuilder()
    centre_nodes: List[int] = []
    for t, (cx, cy) in enumerate(centres):
        first_id = builder.node_count
        town = grid_city(
            town_width,
            town_height,
            block=block,
            arterial_every=3,
            highway_every=0,
            jitter=0.2,
            prune=prune,
            seed=rng.randrange(1 << 30),
            origin=(cx - town_width * block / 2, cy - town_height * block / 2),
        )
        for u in town.nodes():
            builder.add_node(town.xs[u], town.ys[u])
        for u, v, w in town.edges():
            builder.add_edge(first_id + u, first_id + v, w)
        # The town's most central intersection is its highway interchange.
        mid = first_id + (town_width // 2) * town_height + town_height // 2
        centre_nodes.append(mid)

    for a, b in _gabriel_edges(centres):
        u, v = centre_nodes[a], centre_nodes[b]
        w = _euclid(builder._xs[u], builder._ys[u], builder._xs[v], builder._ys[v])
        builder.add_bidirectional_edge(u, v, w / SPEED_HIGHWAY)
    graph = builder.build()
    return graph


def _gabriel_edges(points: Sequence[Tuple[float, float]]) -> List[Tuple[int, int]]:
    """Gabriel graph edges: (a, b) kept iff no point lies strictly inside
    the circle with diameter ab.  Planar and connected; O(k^3) which is
    fine for the town counts we use (k <= a few hundred)."""
    k = len(points)
    edges: List[Tuple[int, int]] = []
    for a in range(k):
        ax, ay = points[a]
        for b in range(a + 1, k):
            bx, by = points[b]
            mx, my = (ax + bx) / 2, (ay + by) / 2
            r2 = ((ax - bx) ** 2 + (ay - by) ** 2) / 4
            ok = True
            for c in range(k):
                if c == a or c == b:
                    continue
                px, py = points[c]
                if (px - mx) ** 2 + (py - my) ** 2 < r2 - 1e-12:
                    ok = False
                    break
            if ok:
                edges.append((a, b))
    return edges


def random_geometric(
    n: int,
    k: int = 4,
    *,
    area: float = 10_000.0,
    speed: float = SPEED_LOCAL,
    seed: int = 0,
) -> Graph:
    """k-nearest-neighbour geometric graph (robustness testing).

    Connects every node to its ``k`` nearest neighbours bidirectionally,
    then stitches connected components together through their closest
    node pairs so the result is strongly connected.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    pts = [(rng.uniform(0, area), rng.uniform(0, area)) for _ in range(n)]
    builder = GraphBuilder()
    for x, y in pts:
        builder.add_node(x, y)

    def knn(u: int) -> List[int]:
        ux, uy = pts[u]
        dists = sorted(
            (math.hypot(ux - px, uy - py), v) for v, (px, py) in enumerate(pts) if v != u
        )
        return [v for _, v in dists[:k]]

    for u in range(n):
        for v in knn(u):
            w = _euclid(*pts[u], *pts[v]) / speed
            builder.add_bidirectional_edge(u, v, w)

    # Stitch components: union-find over current edges, then join each
    # component to the main one via the geometrically closest pair.
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for (u, v) in list(builder._edges.keys()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    comps: Dict[int, List[int]] = {}
    for u in range(n):
        comps.setdefault(find(u), []).append(u)
    comp_list = sorted(comps.values(), key=len, reverse=True)
    main = comp_list[0]
    for other in comp_list[1:]:
        best = None
        for u in other:
            for v in main:
                d = _euclid(*pts[u], *pts[v])
                if best is None or d < best[0]:
                    best = (d, u, v)
        _, u, v = best
        builder.add_bidirectional_edge(u, v, best[0] / speed)
        main = main + other
    return builder.build()
