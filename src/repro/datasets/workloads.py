"""Distance-stratified query workloads ``Q1 .. Q10`` (Section 6.1).

Following the paper (and the experimental study [25] it adopts), queries
are grouped by network distance: ``Qi`` holds source/target pairs whose
network distance lies in ``[2^(i-11) * lmax, 2^(i-10) * lmax)``, where
``lmax`` is (an estimate of) the maximum network distance between any two
nodes.  ``Q10`` therefore contains the longest journeys and ``Q1`` the
shortest; Figures 8 and 9 sweep over these buckets.

Generating pairs by rejection sampling would be hopeless for the extreme
buckets, so :func:`generate_workloads` runs full Dijkstra trees from
random sources and buckets *all* reached targets at once, which fills
every bucket in a handful of sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..graph.graph import Graph
from ..graph.traversal import dijkstra_distances

__all__ = ["QueryWorkloads", "estimate_lmax", "generate_workloads", "NUM_BUCKETS"]

NUM_BUCKETS = 10


@dataclass(frozen=True)
class QueryWorkloads:
    """The ten query buckets for one graph.

    ``buckets[i]`` (0-based; paper's ``Q(i+1)``) is a list of ``(s, t)``
    pairs whose network distance falls in the i-th dyadic band of
    ``lmax``.  ``lmax`` is the estimated maximum network distance.
    """

    lmax: float
    buckets: Tuple[Tuple[Tuple[int, int], ...], ...]

    def bucket(self, i: int) -> Sequence[Tuple[int, int]]:
        """Return ``Qi`` using the paper's 1-based naming (``i in 1..10``)."""
        if not 1 <= i <= NUM_BUCKETS:
            raise ValueError(f"bucket index {i} outside [1, {NUM_BUCKETS}]")
        return self.buckets[i - 1]

    def bounds(self, i: int) -> Tuple[float, float]:
        """Distance band ``[lo, hi)`` of ``Qi`` (1-based)."""
        return (
            2.0 ** (i - 11) * self.lmax,
            2.0 ** (i - 10) * self.lmax,
        )

    def non_empty_buckets(self) -> List[int]:
        """1-based indices of buckets that received at least one pair."""
        return [i for i in range(1, NUM_BUCKETS + 1) if self.buckets[i - 1]]


def estimate_lmax(graph: Graph, seed: int = 0, sweeps: int = 4) -> float:
    """Estimate the maximum network distance with double-sweep Dijkstra.

    Starting from a random node, repeatedly jump to the farthest reachable
    node and rerun; the largest eccentricity seen is a standard (and in
    practice near-exact) lower bound for the graph diameter.
    """
    rng = random.Random(seed)
    start = rng.randrange(graph.n)
    best = 0.0
    current = start
    for _ in range(max(1, sweeps)):
        dist = dijkstra_distances(graph, current)
        far_node, far_dist = max(dist.items(), key=lambda kv: kv[1])
        if far_dist > best:
            best = far_dist
        current = far_node
    return best


def generate_workloads(
    graph: Graph,
    queries_per_bucket: int = 100,
    seed: int = 0,
    lmax: Optional[float] = None,
    max_sweeps: int = 200,
) -> QueryWorkloads:
    """Fill the ten buckets with ``queries_per_bucket`` pairs each.

    Runs Dijkstra trees from random sources; every settled target is a
    candidate pair for the bucket its distance falls into.  Buckets whose
    band exceeds the true diameter naturally stay underfilled — the paper
    has the same effect (``Q10`` requires distances in
    ``[lmax/2, lmax)``) and the harness simply reports fewer pairs.
    """
    if graph.n < 2:
        raise ValueError("graph too small for workloads")
    if lmax is None:
        lmax = estimate_lmax(graph, seed=seed)
    if lmax <= 0:
        raise ValueError("graph has zero diameter")
    rng = random.Random(seed + 1)
    buckets: List[List[Tuple[int, int]]] = [[] for _ in range(NUM_BUCKETS)]
    lo_bounds = [2.0 ** (i - 11) * lmax for i in range(1, NUM_BUCKETS + 1)]

    def bucket_of(d: float) -> Optional[int]:
        if d <= 0:
            return None
        for idx in range(NUM_BUCKETS - 1, -1, -1):
            if d >= lo_bounds[idx]:
                # Band is [lo, 2*lo); distances >= lmax land in the last
                # bucket only if strictly below its upper bound.
                if d < lo_bounds[idx] * 2:
                    return idx
                return None
        return None

    for _ in range(max_sweeps):
        if all(len(b) >= queries_per_bucket for b in buckets):
            break
        source = rng.randrange(graph.n)
        dist = dijkstra_distances(graph, source)
        targets = list(dist.items())
        rng.shuffle(targets)
        for target, d in targets:
            idx = bucket_of(d)
            if idx is not None and len(buckets[idx]) < queries_per_bucket:
                buckets[idx].append((source, target))
    return QueryWorkloads(
        lmax=lmax,
        buckets=tuple(tuple(b) for b in buckets),
    )
