"""The scaled reproduction of the paper's ten-dataset suite (Table 2).

The paper's datasets are ten DIMACS USA road networks from 48 k to 24 M
nodes.  A pure-Python reproduction cannot index 24 M nodes in reasonable
time, so — per the substitution policy in DESIGN.md — we keep the paper's
*names* and *relative ladder* (each dataset roughly doubles the previous)
but compress the absolute sizes to laptop scale.  Every dataset is a
:func:`repro.datasets.synthetic.towns_and_highways` network, the family
that most closely mirrors real road structure (dense local meshes joined
by sparse fast highways).

``dataset(name)`` builds a network deterministically; ``SUITE`` lists the
names in the paper's order.  ``suite_table()`` prints the Table-2 analogue
with the actual generated node/edge counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graph.graph import Graph
from .synthetic import towns_and_highways

__all__ = ["SUITE", "SuiteSpec", "dataset", "dataset_spec", "suite_table"]


@dataclass(frozen=True)
class SuiteSpec:
    """Generation parameters of one suite dataset.

    Attributes
    ----------
    name:
        The paper's dataset name (Table 2).
    region:
        The paper's described coverage region, kept for documentation.
    paper_nodes, paper_edges:
        The original dataset size from Table 2.
    n_towns, town_width, town_height:
        Parameters handed to :func:`towns_and_highways`; the resulting
        node count is ~``n_towns * town_width * town_height``.
    seed:
        Deterministic generation seed.
    """

    name: str
    region: str
    paper_nodes: int
    paper_edges: int
    n_towns: int
    town_width: int
    town_height: int
    seed: int

    @property
    def approx_nodes(self) -> int:
        """Rough expected node count of the generated network."""
        return self.n_towns * self.town_width * self.town_height


# The ladder doubles roughly every step, like the paper's (which spans
# 48.8k -> 23.9M, a 490x range; ours spans ~600 -> ~26k, a 43x range --
# the largest that pure-Python index construction sustains in benches).
_SPECS: Tuple[SuiteSpec, ...] = (
    SuiteSpec("DE", "Delaware", 48_812, 120_489, 6, 10, 10, 101),
    SuiteSpec("NH", "New Hampshire", 115_055, 264_218, 9, 11, 11, 102),
    SuiteSpec("ME", "Maine", 187_315, 422_998, 12, 12, 12, 103),
    SuiteSpec("CO", "Colorado", 435_666, 1_057_066, 18, 13, 13, 104),
    SuiteSpec("FL", "Florida", 1_070_376, 2_712_798, 26, 14, 14, 105),
    SuiteSpec("CA", "California and Nevada", 1_890_815, 4_657_742, 36, 15, 15, 106),
    SuiteSpec("E-US", "Eastern US", 3_598_623, 8_778_114, 48, 16, 16, 107),
    SuiteSpec("W-US", "Western US", 6_262_104, 15_248_146, 64, 17, 17, 108),
    SuiteSpec("C-US", "Central US", 14_081_816, 34_292_496, 80, 18, 18, 109),
    SuiteSpec("US", "United States", 23_947_347, 58_333_344, 96, 19, 19, 110),
)

SUITE: Tuple[str, ...] = tuple(spec.name for spec in _SPECS)

_BY_NAME: Dict[str, SuiteSpec] = {spec.name: spec for spec in _SPECS}

_CACHE: Dict[str, Graph] = {}


def dataset_spec(name: str) -> SuiteSpec:
    """Return the :class:`SuiteSpec` for a suite dataset name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown suite dataset {name!r}; choose from {SUITE}") from None


def dataset(name: str, use_cache: bool = True) -> Graph:
    """Build (or fetch from the in-process cache) a suite dataset."""
    if use_cache and name in _CACHE:
        return _CACHE[name]
    spec = dataset_spec(name)
    # Spread towns over an area that scales with the town count so density
    # (and hence the arterial structure) stays comparable across the suite.
    area = 9_000.0 * max(2.0, spec.n_towns ** 0.5)
    graph = towns_and_highways(
        spec.n_towns,
        spec.town_width,
        spec.town_height,
        area=area,
        seed=spec.seed,
    )
    if use_cache:
        _CACHE[name] = graph
    return graph


def suite_table(names: List[str] = None) -> str:
    """Render the Table-2 analogue for the generated suite.

    Columns: name, region, paper n/m, generated n/m.  Used by the
    ``table2`` benchmark and by EXPERIMENTS.md.
    """
    rows = [
        f"{'Name':<6} {'Region':<22} {'paper n':>10} {'paper m':>10} "
        f"{'ours n':>8} {'ours m':>8}"
    ]
    for name in names or SUITE:
        spec = dataset_spec(name)
        graph = dataset(name)
        rows.append(
            f"{spec.name:<6} {spec.region:<22} {spec.paper_nodes:>10,} "
            f"{spec.paper_edges:>10,} {graph.n:>8,} {graph.m:>8,}"
        )
    return "\n".join(rows)
