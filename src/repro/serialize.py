"""``repro.serialize`` — top-level alias + CLI for :mod:`repro.core.serialize`.

Re-exports the whole serialization surface so tooling can spell it
``repro.serialize``, and makes the footprint inspector runnable::

    python -m repro.serialize --inspect bundle.hl

which prints each section's magic, byte size and encoding breakdown
(HL2 streams, distance encodings, bytes per label entry) — the
observability half of the compact-column work.
"""

from .core.serialize import *  # noqa: F401,F403 — deliberate re-export
from .core.serialize import __all__, inspect_bundle, main  # noqa: F401

if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
