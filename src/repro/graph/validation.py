"""Validation of the paper's road-network model assumptions (Section 2).

The paper assumes the input is a *directed, degree-bounded, connected*
graph with positive edge weights and planar node coordinates.  These
checks are run by the dataset generators and are available to users who
load their own data.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .graph import Graph

__all__ = ["NetworkReport", "analyze_network", "check_road_network", "strongly_connected"]


@dataclass(frozen=True)
class NetworkReport:
    """Summary statistics produced by :func:`analyze_network`."""

    n: int
    m: int
    max_out_degree: int
    max_in_degree: int
    max_degree: int
    min_weight: float
    max_weight: float
    weakly_connected: bool
    strongly_connected: bool
    linf_diameter: float

    def is_valid_road_network(self, degree_bound: int = 16) -> bool:
        """True when the graph satisfies the paper's model assumptions."""
        return (
            self.n > 0
            and self.strongly_connected
            and self.max_degree <= degree_bound
            and self.min_weight > 0
        )


def _reachable_count(graph: Graph, start: int, reverse: bool) -> int:
    # Weights are irrelevant to reachability, so sweep the CSR id columns
    # directly instead of materialising the (v, w) adjacency views.
    head = graph.in_head if reverse else graph.out_head
    nbr = graph.in_src if reverse else graph.out_dst
    seen = bytearray(graph.n)
    seen[start] = 1
    queue = deque((start,))
    count = 1
    while queue:
        u = queue.popleft()
        for e in range(head[u], head[u + 1]):
            v = nbr[e]
            if not seen[v]:
                seen[v] = 1
                count += 1
                queue.append(v)
    return count


def strongly_connected(graph: Graph) -> bool:
    """Check strong connectivity with two BFS sweeps from node 0."""
    if graph.n == 0:
        return False
    return (
        _reachable_count(graph, 0, reverse=False) == graph.n
        and _reachable_count(graph, 0, reverse=True) == graph.n
    )


def _weakly_connected(graph: Graph) -> bool:
    if graph.n == 0:
        return False
    out_head, out_dst = graph.out_head, graph.out_dst
    in_head, in_src = graph.in_head, graph.in_src
    seen = bytearray(graph.n)
    seen[0] = 1
    queue = deque((0,))
    count = 1
    while queue:
        u = queue.popleft()
        for e in range(out_head[u], out_head[u + 1]):
            v = out_dst[e]
            if not seen[v]:
                seen[v] = 1
                count += 1
                queue.append(v)
        for e in range(in_head[u], in_head[u + 1]):
            v = in_src[e]
            if not seen[v]:
                seen[v] = 1
                count += 1
                queue.append(v)
    return count == graph.n


def analyze_network(graph: Graph) -> NetworkReport:
    """Compute a :class:`NetworkReport` for ``graph``."""
    weights = graph.out_w  # the flat CSR weight column, min/max in C
    return NetworkReport(
        n=graph.n,
        m=graph.m,
        max_out_degree=max((graph.out_degree(u) for u in graph.nodes()), default=0),
        max_in_degree=max((graph.in_degree(u) for u in graph.nodes()), default=0),
        max_degree=graph.max_degree(),
        min_weight=float(min(weights)) if len(weights) else 0.0,
        max_weight=float(max(weights)) if len(weights) else 0.0,
        weakly_connected=_weakly_connected(graph),
        strongly_connected=strongly_connected(graph),
        linf_diameter=graph.linf_diameter() if graph.n else 0.0,
    )


def check_road_network(graph: Graph, degree_bound: int = 16) -> None:
    """Raise ``ValueError`` unless ``graph`` satisfies the paper's model.

    ``degree_bound`` encodes "degree-bounded"; real road networks rarely
    exceed degree 8, we default to a lenient 16.
    """
    report = analyze_network(graph)
    problems = []
    if report.n == 0:
        problems.append("graph is empty")
    if not report.strongly_connected:
        problems.append("graph is not strongly connected")
    if report.max_degree > degree_bound:
        problems.append(
            f"max degree {report.max_degree} exceeds bound {degree_bound}"
        )
    if report.min_weight <= 0:
        problems.append("graph contains a non-positive edge weight")
    if problems:
        raise ValueError("; ".join(problems))
