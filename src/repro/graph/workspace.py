"""Reusable, timestamp-versioned scratch state for graph searches.

Every Dijkstra-family search needs a distance label, a parent pointer and
a "seen this query?" bit per node.  The seed implementation allocated
fresh ``dict``s for those on every query — the single largest constant
factor in query time, and the opposite of the paper's "touch a tiny,
cache-friendly slice" thesis.  A :class:`SearchWorkspace` replaces them
with three flat arrays allocated once per graph and reused across
queries:

``dist``
    Distance labels (plain Python list of floats — CPython indexes lists
    faster than ``array('d')``, which would box a new float per read).
``parent``
    Parent pointers (ints).  Algorithms that do not need parents are free
    to reuse this as a second integer column (e.g. hop counts in CH's
    witness searches).
``visit``
    The version tag.  ``visit[u] == version`` means ``dist[u]`` /
    ``parent[u]`` are valid *for the current query*; anything else is
    stale garbage from an earlier query.

:meth:`SearchWorkspace.begin` starts a new query by bumping ``version`` —
an O(1) reset, no clearing pass, no allocation.  A typical hot loop::

    ws = acquire(graph)
    try:
        c = ws.begin()
        dist, visit = ws.dist, ws.visit
        dist[source] = 0.0
        visit[source] = c
        ...
        # relax u -> v with new distance nd:
        if visit[v] != c:
            visit[v] = c; dist[v] = nd; heappush(heap, (nd, v))
        elif nd < dist[v]:
            dist[v] = nd; heappush(heap, (nd, v))
    finally:
        release(graph, ws)

The :func:`acquire` / :func:`release` pool hangs off the graph instance
(``graph._scratch``), so concurrent searches on the same graph — e.g. the
two halves of a bidirectional query, or a search nested inside index
construction — each get their own workspace, while sequential queries
keep hitting the same warm arrays.
"""

from __future__ import annotations

from typing import List

__all__ = ["SearchWorkspace", "acquire", "release"]

INF = float("inf")


class SearchWorkspace:
    """Flat per-node scratch arrays with O(1) versioned reset."""

    __slots__ = ("n", "dist", "parent", "visit", "version")

    def __init__(self, n: int) -> None:
        self.n = n
        self.dist: List[float] = [INF] * n
        self.parent: List[int] = [-1] * n
        self.visit: List[int] = [0] * n
        self.version = 0

    def begin(self) -> int:
        """Start a new search; returns the fresh version tag.

        Every label written by a previous search becomes stale instantly —
        no per-node clearing.
        """
        self.version += 1
        return self.version

    def labelled(self, u: int) -> bool:
        """True when ``u`` carries a valid label for the current search."""
        return self.visit[u] == self.version


def acquire(graph) -> SearchWorkspace:
    """Borrow a workspace for ``graph`` from its pool (or create one).

    Pair with :func:`release` in a ``try/finally``; a workspace that is
    never released is simply garbage-collected, so exceptions cannot
    poison the pool.

    ``repro.graph.traversal.distance_query`` inlines this pop/append
    logic (it is the most latency-sensitive entry point); a change to the
    pool discipline here must be mirrored there.
    """
    pool = graph._scratch
    if pool:
        return pool.pop()
    return SearchWorkspace(graph.n)


def release(graph, ws: SearchWorkspace) -> None:
    """Return a borrowed workspace to ``graph``'s pool for reuse."""
    graph._scratch.append(ws)
