"""Dijkstra-based traversal primitives.

These routines are both (i) the ground truth every index is tested against
and (ii) building blocks inside the FC/AH/CH constructions, which all run
many *local* Dijkstra searches (within grid regions, witness searches, SPT
construction).  They are written for raw CPython speed: flat ``heapq``
usage, lazy deletion via the distance label (an entry is stale exactly
when its key exceeds the node's current label — strictly-improving pushes
make duplicates impossible otherwise), and per-graph
:class:`~repro.graph.workspace.SearchWorkspace` scratch arrays instead of
per-query dicts.  Functions whose public contract is a mapping still
return plain dicts of *settled* nodes; the point-to-point queries never
materialise one.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .graph import Graph
from .path import Path
from .workspace import SearchWorkspace, acquire, release

__all__ = [
    "dijkstra_distances",
    "dijkstra_tree",
    "shortest_path_tree",
    "distance_query",
    "shortest_path_query",
    "bidirectional_distance",
    "bidirectional_path",
    "multi_source_distances",
    "walk_parents",
]

INF = float("inf")


def dijkstra_distances(
    graph: Graph,
    source: int,
    targets: Optional[Iterable[int]] = None,
    cutoff: Optional[float] = None,
    reverse: bool = False,
) -> Dict[int, float]:
    """Single-source shortest distances with optional early exit.

    Parameters
    ----------
    targets:
        If given, the search stops once every target has been settled.
    cutoff:
        If given, nodes farther than ``cutoff`` are not settled.
    reverse:
        Traverse incoming edges instead of outgoing ones, i.e. compute
        distances *to* ``source`` (used by the backward half of
        bidirectional searches and by backward SPTs, Definition 3).

    Returns a dict mapping each settled node to its distance from (or to)
    ``source``.
    """
    settled, _ = _single_source(
        graph, source, targets, cutoff, reverse, want_parents=False
    )
    return settled


def dijkstra_tree(
    graph: Graph,
    source: int,
    targets: Optional[Iterable[int]] = None,
    cutoff: Optional[float] = None,
    reverse: bool = False,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Like :func:`dijkstra_distances` but also returns parent pointers.

    ``parent[v]`` is the predecessor of ``v`` on a shortest path from
    ``source`` (or the successor towards ``source`` when ``reverse``).
    ``parent[source]`` is absent.
    """
    return _single_source(graph, source, targets, cutoff, reverse, want_parents=True)


def _single_source(
    graph: Graph,
    source: int,
    targets: Optional[Iterable[int]],
    cutoff: Optional[float],
    reverse: bool,
    want_parents: bool,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Shared single-source engine; dicts hold settled nodes only."""
    adj = graph.inn if reverse else graph.out
    settled: Dict[int, float] = {}
    parent_of: Dict[int, int] = {}
    pending = set(targets) if targets is not None else None
    ws = acquire(graph)
    try:
        c = ws.begin()
        dist = ws.dist
        visit = ws.visit
        parent = ws.parent
        dist[source] = 0.0
        visit[source] = c
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue  # stale heap entry
            if cutoff is not None and d > cutoff:
                break
            settled[u] = d
            if want_parents and u != source:
                parent_of[u] = parent[u]
            if pending is not None:
                pending.discard(u)
                if not pending:
                    break
            for v, w in adj[u]:
                nd = d + w
                if visit[v] != c:
                    visit[v] = c
                    dist[v] = nd
                    parent[v] = u
                    heappush(heap, (nd, v))
                elif nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heappush(heap, (nd, v))
    finally:
        release(graph, ws)
    return settled, parent_of


def shortest_path_tree(
    graph: Graph, source: int, reverse: bool = False
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Full forward (or backward) shortest path tree rooted at ``source``.

    This is Definition 3 of the paper.  Equivalent to
    :func:`dijkstra_tree` without early exit; named separately because the
    AH construction refers to SPTs explicitly.
    """
    return dijkstra_tree(graph, source, reverse=reverse)


def distance_query(graph: Graph, source: int, target: int) -> float:
    """Plain Dijkstra distance from ``source`` to ``target``.

    Returns ``inf`` when ``target`` is unreachable.  This is the paper's
    baseline [9] with early termination at the target.  The benchmarked
    hot path: no settled dict, no pending set — just the workspace arrays
    and the heap.
    """
    if source == target:
        return 0.0
    # Pool and view access are inlined: per-query fixed costs are what the
    # short workload buckets (Q1-Q3) are most sensitive to.
    adj = graph._out
    if adj is None:
        adj = graph.out
    pool = graph._scratch
    ws = pool.pop() if pool else SearchWorkspace(graph.n)
    c = ws.version + 1
    ws.version = c
    try:
        dist = ws.dist
        visit = ws.visit
        dist[source] = 0.0
        visit[source] = c
        pop = heappop
        push = heappush
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                continue
            if u == target:
                return d
            for v, w in adj[u]:
                nd = d + w
                if visit[v] != c:
                    visit[v] = c
                    dist[v] = nd
                    push(heap, (nd, v))
                elif nd < dist[v]:
                    dist[v] = nd
                    push(heap, (nd, v))
        return INF
    finally:
        pool.append(ws)


def walk_parents(parent, source: int, target: int) -> List[int]:
    """Reconstruct ``source -> target`` from forward parent pointers.

    ``parent`` may be a workspace array or any mapping-like indexable;
    entries must be valid for every node on the walk (i.e. labelled in
    the current search).
    """
    nodes = [target]
    u = target
    while u != source:
        u = parent[u]
        nodes.append(u)
    nodes.reverse()
    return nodes


def shortest_path_query(graph: Graph, source: int, target: int) -> Optional[Path]:
    """Plain Dijkstra shortest path; ``None`` when unreachable."""
    if source == target:
        return Path((source,), 0.0)
    adj = graph.out
    ws = acquire(graph)
    try:
        c = ws.begin()
        dist = ws.dist
        visit = ws.visit
        parent = ws.parent
        dist[source] = 0.0
        visit[source] = c
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            if u == target:
                return Path(tuple(walk_parents(parent, source, target)), d)
            for v, w in adj[u]:
                nd = d + w
                if visit[v] != c:
                    visit[v] = c
                    dist[v] = nd
                    parent[v] = u
                    heappush(heap, (nd, v))
                elif nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heappush(heap, (nd, v))
        return None
    finally:
        release(graph, ws)


def bidirectional_distance(graph: Graph, source: int, target: int) -> float:
    """Bidirectional Dijkstra distance.

    Alternates forward search from ``source`` and backward search from
    ``target``; terminates when the best meeting distance ``θ`` is no more
    than the smallest key on either queue — the same stopping rule the
    paper's FC query processing uses (Section 3.2).
    """
    if source == target:
        return 0.0
    ws_f = acquire(graph)
    ws_b = acquire(graph)
    try:
        best, _ = _bidirectional(graph, source, target, ws_f, ws_b)
        return best
    finally:
        release(graph, ws_b)
        release(graph, ws_f)


def bidirectional_path(graph: Graph, source: int, target: int) -> Optional[Path]:
    """Bidirectional Dijkstra shortest path; ``None`` when unreachable."""
    if source == target:
        return Path((source,), 0.0)
    ws_f = acquire(graph)
    ws_b = acquire(graph)
    try:
        best, node = _bidirectional(graph, source, target, ws_f, ws_b)
        if node is None:
            return None
        nodes = walk_parents(ws_f.parent, source, node)
        x = node
        parent_b = ws_b.parent
        while x != target:
            x = parent_b[x]
            nodes.append(x)
        return Path(tuple(nodes), best)
    finally:
        release(graph, ws_b)
        release(graph, ws_f)


def _bidirectional(
    graph: Graph, source: int, target: int, ws_f, ws_b
) -> Tuple[float, Optional[int]]:
    """Shared bidirectional engine; returns (distance, meeting node).

    Parent pointers are left in the workspaces for the caller to walk
    before releasing them.
    """
    cf = ws_f.begin()
    cb = ws_b.begin()
    dist_f = ws_f.dist
    dist_b = ws_b.dist
    visit_f = ws_f.visit
    visit_b = ws_b.visit
    parent_f = ws_f.parent
    parent_b = ws_b.parent
    dist_f[source] = 0.0
    visit_f[source] = cf
    dist_b[target] = 0.0
    visit_b[target] = cb
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]
    best = INF
    best_node: Optional[int] = None
    out = graph.out
    inn = graph.inn
    while heap_f or heap_b:
        top_f = heap_f[0][0] if heap_f else INF
        top_b = heap_b[0][0] if heap_b else INF
        if best <= min(top_f, top_b):
            break
        # Expand the side with the smaller frontier key (balanced growth).
        if top_f <= top_b:
            d, u = heappop(heap_f)
            if d > dist_f[u]:
                continue
            if visit_b[u] == cb and d + dist_b[u] < best:
                best = d + dist_b[u]
                best_node = u
            for v, w in out[u]:
                nd = d + w
                if visit_f[v] != cf:
                    visit_f[v] = cf
                    dist_f[v] = nd
                    parent_f[v] = u
                    heappush(heap_f, (nd, v))
                elif nd < dist_f[v]:
                    dist_f[v] = nd
                    parent_f[v] = u
                    heappush(heap_f, (nd, v))
        else:
            d, u = heappop(heap_b)
            if d > dist_b[u]:
                continue
            if visit_f[u] == cf and d + dist_f[u] < best:
                best = d + dist_f[u]
                best_node = u
            for v, w in inn[u]:
                nd = d + w
                if visit_b[v] != cb:
                    visit_b[v] = cb
                    dist_b[v] = nd
                    parent_b[v] = u
                    heappush(heap_b, (nd, v))
                elif nd < dist_b[v]:
                    dist_b[v] = nd
                    parent_b[v] = u
                    heappush(heap_b, (nd, v))
    return best, best_node


def multi_source_distances(
    graph: Graph,
    sources: Iterable[Tuple[int, float]],
    cutoff: Optional[float] = None,
    reverse: bool = False,
    allow: Optional[Callable[[int], bool]] = None,
) -> Dict[int, float]:
    """Dijkstra from several seeds with per-seed initial distances.

    ``allow`` optionally restricts which nodes may be *relaxed through*
    (seeds are always allowed); this powers the region-restricted searches
    of the arterial-edge computation, where a path may leave a region by at
    most one edge.
    """
    adj = graph.inn if reverse else graph.out
    settled: Dict[int, float] = {}
    ws = acquire(graph)
    try:
        c = ws.begin()
        dist = ws.dist
        visit = ws.visit
        heap: List[Tuple[float, int]] = []
        for node, d0 in sources:
            if visit[node] != c:
                visit[node] = c
                dist[node] = d0
                heappush(heap, (d0, node))
            elif d0 < dist[node]:
                dist[node] = d0
                heappush(heap, (d0, node))
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            if cutoff is not None and d > cutoff:
                break
            settled[u] = d
            if allow is not None and not allow(u):
                continue  # u is terminal: settle it but do not expand further
            for v, w in adj[u]:
                nd = d + w
                if visit[v] != c:
                    visit[v] = c
                    dist[v] = nd
                    heappush(heap, (nd, v))
                elif nd < dist[v]:
                    dist[v] = nd
                    heappush(heap, (nd, v))
    finally:
        release(graph, ws)
    return settled
