"""Dijkstra-based traversal primitives.

These routines are both (i) the ground truth every index is tested against
and (ii) building blocks inside the FC/AH/CH constructions, which all run
many *local* Dijkstra searches (within grid regions, witness searches, SPT
construction).  They are written for raw CPython speed: flat ``heapq``
usage, lazy deletion, and local-variable binding in the hot loops.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .graph import Graph
from .path import Path

__all__ = [
    "dijkstra_distances",
    "dijkstra_tree",
    "shortest_path_tree",
    "distance_query",
    "shortest_path_query",
    "bidirectional_distance",
    "bidirectional_path",
    "multi_source_distances",
]

INF = float("inf")


def dijkstra_distances(
    graph: Graph,
    source: int,
    targets: Optional[Iterable[int]] = None,
    cutoff: Optional[float] = None,
    reverse: bool = False,
) -> Dict[int, float]:
    """Single-source shortest distances with optional early exit.

    Parameters
    ----------
    targets:
        If given, the search stops once every target has been settled.
    cutoff:
        If given, nodes farther than ``cutoff`` are not settled.
    reverse:
        Traverse incoming edges instead of outgoing ones, i.e. compute
        distances *to* ``source`` (used by the backward half of
        bidirectional searches and by backward SPTs, Definition 3).

    Returns a dict mapping each settled node to its distance from (or to)
    ``source``.
    """
    adj = graph.inn if reverse else graph.out
    dist: Dict[int, float] = {source: 0.0}
    settled: Dict[int, float] = {}
    pending = set(targets) if targets is not None else None
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        if cutoff is not None and d > cutoff:
            break
        settled[u] = d
        if pending is not None:
            pending.discard(u)
            if not pending:
                break
        for v, w in adj[u]:
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    return settled


def dijkstra_tree(
    graph: Graph,
    source: int,
    targets: Optional[Iterable[int]] = None,
    cutoff: Optional[float] = None,
    reverse: bool = False,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Like :func:`dijkstra_distances` but also returns parent pointers.

    ``parent[v]`` is the predecessor of ``v`` on a shortest path from
    ``source`` (or the successor towards ``source`` when ``reverse``).
    ``parent[source]`` is absent.
    """
    adj = graph.inn if reverse else graph.out
    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {}
    settled: Dict[int, float] = {}
    pending = set(targets) if targets is not None else None
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        if cutoff is not None and d > cutoff:
            break
        settled[u] = d
        if pending is not None:
            pending.discard(u)
            if not pending:
                break
        for v, w in adj[u]:
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd, v))
    # Drop parent entries of unsettled nodes so callers see a clean tree.
    parent = {v: p for v, p in parent.items() if v in settled}
    return settled, parent


def shortest_path_tree(
    graph: Graph, source: int, reverse: bool = False
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Full forward (or backward) shortest path tree rooted at ``source``.

    This is Definition 3 of the paper.  Equivalent to
    :func:`dijkstra_tree` without early exit; named separately because the
    AH construction refers to SPTs explicitly.
    """
    return dijkstra_tree(graph, source, reverse=reverse)


def distance_query(graph: Graph, source: int, target: int) -> float:
    """Plain Dijkstra distance from ``source`` to ``target``.

    Returns ``inf`` when ``target`` is unreachable.  This is the paper's
    baseline [9] with early termination at the target.
    """
    settled = dijkstra_distances(graph, source, targets=(target,))
    return settled.get(target, INF)


def shortest_path_query(graph: Graph, source: int, target: int) -> Optional[Path]:
    """Plain Dijkstra shortest path; ``None`` when unreachable."""
    dist, parent = dijkstra_tree(graph, source, targets=(target,))
    if target not in dist:
        return None
    nodes = _walk_parents(parent, source, target)
    return Path(tuple(nodes), dist[target])


def _walk_parents(parent: Dict[int, int], source: int, target: int) -> List[int]:
    """Reconstruct ``source -> target`` from forward parent pointers."""
    nodes = [target]
    u = target
    while u != source:
        u = parent[u]
        nodes.append(u)
    nodes.reverse()
    return nodes


def bidirectional_distance(graph: Graph, source: int, target: int) -> float:
    """Bidirectional Dijkstra distance.

    Alternates forward search from ``source`` and backward search from
    ``target``; terminates when the best meeting distance ``θ`` is no more
    than the smallest key on either queue — the same stopping rule the
    paper's FC query processing uses (Section 3.2).
    """
    d, _ = _bidirectional(graph, source, target, want_parents=False)
    return d


def bidirectional_path(graph: Graph, source: int, target: int) -> Optional[Path]:
    """Bidirectional Dijkstra shortest path; ``None`` when unreachable."""
    d, meet = _bidirectional(graph, source, target, want_parents=True)
    if meet is None:
        return None
    node, parent_f, parent_b = meet
    forward = _walk_parents(parent_f, source, node)
    nodes = list(forward)
    u = node
    while u != target:
        u = parent_b[u]
        nodes.append(u)
    return Path(tuple(nodes), d)


def _bidirectional(
    graph: Graph, source: int, target: int, want_parents: bool
) -> Tuple[float, Optional[Tuple[int, Dict[int, int], Dict[int, int]]]]:
    """Shared bidirectional engine; returns distance and meeting info."""
    if source == target:
        return 0.0, (source, {}, {})
    dist_f: Dict[int, float] = {source: 0.0}
    dist_b: Dict[int, float] = {target: 0.0}
    parent_f: Dict[int, int] = {}
    parent_b: Dict[int, int] = {}
    settled_f: set = set()
    settled_b: set = set()
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]
    best = INF
    best_node: Optional[int] = None
    out = graph.out
    inn = graph.inn
    while heap_f or heap_b:
        top_f = heap_f[0][0] if heap_f else INF
        top_b = heap_b[0][0] if heap_b else INF
        if best <= min(top_f, top_b):
            break
        # Expand the side with the smaller frontier key (balanced growth).
        if top_f <= top_b:
            d, u = heappop(heap_f)
            if u in settled_f:
                continue
            settled_f.add(u)
            du_b = dist_b.get(u)
            if du_b is not None and d + du_b < best:
                best = d + du_b
                best_node = u
            for v, w in out[u]:
                nd = d + w
                if nd < dist_f.get(v, INF):
                    dist_f[v] = nd
                    if want_parents:
                        parent_f[v] = u
                    heappush(heap_f, (nd, v))
        else:
            d, u = heappop(heap_b)
            if u in settled_b:
                continue
            settled_b.add(u)
            du_f = dist_f.get(u)
            if du_f is not None and d + du_f < best:
                best = d + du_f
                best_node = u
            for v, w in inn[u]:
                nd = d + w
                if nd < dist_b.get(v, INF):
                    dist_b[v] = nd
                    if want_parents:
                        parent_b[v] = u
                    heappush(heap_b, (nd, v))
    if best_node is None:
        return INF, None
    return best, (best_node, parent_f, parent_b)


def multi_source_distances(
    graph: Graph,
    sources: Iterable[Tuple[int, float]],
    cutoff: Optional[float] = None,
    reverse: bool = False,
    allow: Optional[Callable[[int], bool]] = None,
) -> Dict[int, float]:
    """Dijkstra from several seeds with per-seed initial distances.

    ``allow`` optionally restricts which nodes may be *relaxed through*
    (seeds are always allowed); this powers the region-restricted searches
    of the arterial-edge computation, where a path may leave a region by at
    most one edge.
    """
    adj = graph.inn if reverse else graph.out
    dist: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = []
    for node, d0 in sources:
        if d0 < dist.get(node, INF):
            dist[node] = d0
            heappush(heap, (d0, node))
    settled: Dict[int, float] = {}
    while heap:
        d, u = heappop(heap)
        if u in settled:
            continue
        if cutoff is not None and d > cutoff:
            break
        settled[u] = d
        if allow is not None and not allow(u):
            continue  # u is terminal: settle it but do not expand further
        for v, w in adj[u]:
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heappush(heap, (nd, v))
    return settled
