"""DIMACS shortest-path challenge format readers and writers.

The paper's ten datasets come from the 9th DIMACS implementation challenge
(reference [3]); each dataset is a pair of files:

* ``*.gr`` — the weighted arc list: ``p sp <n> <m>`` header, then one
  ``a <u> <v> <w>`` line per directed arc (1-based node ids, integer
  weights that encode travel time).
* ``*.co`` — the coordinates: ``p aux sp co <n>`` header, then one
  ``v <id> <x> <y>`` line per node (integer longitude/latitude * 10^6).

We implement both directions so (i) real DIMACS data can be dropped into
the benchmarks unchanged, and (ii) our synthetic suite can be exported for
use by other tools.
"""

from __future__ import annotations

import io
import os
from typing import Dict, List, Optional, TextIO, Tuple, Union

from .builder import GraphBuilder
from .graph import Graph

__all__ = [
    "read_dimacs",
    "write_dimacs",
    "read_gr",
    "read_co",
    "write_gr",
    "write_co",
]

PathOrFile = Union[str, os.PathLike, TextIO]


def _open_for_read(source: PathOrFile) -> Tuple[TextIO, bool]:
    if isinstance(source, (str, os.PathLike)):
        return open(source, "r", encoding="ascii"), True
    return source, False


def _open_for_write(sink: PathOrFile) -> Tuple[TextIO, bool]:
    if isinstance(sink, (str, os.PathLike)):
        return open(sink, "w", encoding="ascii"), True
    return sink, False


def read_gr(source: PathOrFile) -> Tuple[int, List[Tuple[int, int, float]]]:
    """Parse a ``.gr`` arc file; return ``(n, arcs)`` with 0-based ids.

    Only a record whose *first field* is exactly ``c`` is a comment —
    ``line.startswith("c")`` would silently swallow malformed records
    like ``co 1 2`` that deserve a loud rejection.
    """
    fh, should_close = _open_for_read(source)
    try:
        n: Optional[int] = None
        arcs: List[Tuple[int, int, float]] = []
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            parts = line.split()
            if parts[0] == "c":
                continue
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise ValueError(f"line {lineno}: malformed problem line {line!r}")
                n = int(parts[2])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: malformed arc line {line!r}")
                u, v, w = int(parts[1]) - 1, int(parts[2]) - 1, float(parts[3])
                arcs.append((u, v, w))
            else:
                raise ValueError(f"line {lineno}: unknown record {parts[0]!r}")
        if n is None:
            raise ValueError("missing 'p sp' problem line")
        return n, arcs
    finally:
        if should_close:
            fh.close()


def read_co(source: PathOrFile) -> Dict[int, Tuple[float, float]]:
    """Parse a ``.co`` coordinate file; return ``{node: (x, y)}`` 0-based.

    Comments are records whose first field is exactly ``c`` (same rule
    as :func:`read_gr`), and the problem line must have the DIMACS
    ``p aux sp co <n>`` shape — anything else is rejected rather than
    silently skipped.
    """
    fh, should_close = _open_for_read(source)
    try:
        coords: Dict[int, Tuple[float, float]] = {}
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            parts = line.split()
            if parts[0] == "c":
                continue
            if parts[0] == "p":
                if (
                    len(parts) != 5
                    or parts[1:4] != ["aux", "sp", "co"]
                    or not parts[4].isdigit()
                ):
                    raise ValueError(
                        f"line {lineno}: malformed problem line {line!r} "
                        f"(expected 'p aux sp co <n>')"
                    )
                continue
            if parts[0] == "v":
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: malformed node line {line!r}")
                coords[int(parts[1]) - 1] = (float(parts[2]), float(parts[3]))
            else:
                raise ValueError(f"line {lineno}: unknown record {parts[0]!r}")
        return coords
    finally:
        if should_close:
            fh.close()


def read_dimacs(
    gr_source: PathOrFile,
    co_source: Optional[PathOrFile] = None,
    strict: Optional[bool] = None,
) -> Graph:
    """Load a DIMACS graph (and optionally its coordinates) into a Graph.

    ``strict`` defaults to on exactly when a ``.co`` file was provided:
    a coordinate file that covers only part of the node set would
    otherwise silently hand ``(0, 0)`` to the missing nodes, poisoning
    the spatial grids and the A*/ALT heuristics with bogus geometry far
    from the failure site.  Strict mode raises instead, naming the
    damage.  Pass ``strict=False`` to accept the ``(0, 0)`` fallback
    deliberately; without a ``.co`` file every node gets ``(0, 0)`` and
    strict never triggers.
    """
    n, arcs = read_gr(gr_source)
    coords = read_co(co_source) if co_source is not None else {}
    if strict is None:
        strict = co_source is not None
    if strict:
        # Coverage of range(n), not a length check: an out-of-range v id
        # in the .co file must not mask a genuinely missing node.
        missing = [node for node in range(n) if node not in coords]
        if missing:
            preview = ", ".join(str(node + 1) for node in missing[:5])
            raise ValueError(
                f"{len(missing)} of {n} nodes have no coordinates in the .co "
                f"file (1-based ids: {preview}{', ...' if len(missing) > 5 else ''}); "
                f"pass strict=False to default them to (0, 0)"
            )
    builder = GraphBuilder()
    for node in range(n):
        x, y = coords.get(node, (0.0, 0.0))
        builder.add_node(x, y)
    for u, v, w in arcs:
        builder.add_edge(u, v, w)
    return builder.build()


def write_gr(graph: Graph, sink: PathOrFile, comment: str = "") -> None:
    """Write ``graph``'s arcs as a DIMACS ``.gr`` file (1-based ids)."""
    fh, should_close = _open_for_write(sink)
    try:
        if comment:
            for line in comment.splitlines():
                fh.write(f"c {line}\n")
        fh.write(f"p sp {graph.n} {graph.m}\n")
        for u, v, w in graph.edges():
            if w == int(w):
                fh.write(f"a {u + 1} {v + 1} {int(w)}\n")
            else:
                fh.write(f"a {u + 1} {v + 1} {w!r}\n")
    finally:
        if should_close:
            fh.close()


def write_co(graph: Graph, sink: PathOrFile, comment: str = "") -> None:
    """Write ``graph``'s coordinates as a DIMACS ``.co`` file."""
    fh, should_close = _open_for_write(sink)
    try:
        if comment:
            for line in comment.splitlines():
                fh.write(f"c {line}\n")
        fh.write(f"p aux sp co {graph.n}\n")
        for u in graph.nodes():
            x, y = graph.coord(u)
            if x == int(x) and y == int(y):
                fh.write(f"v {u + 1} {int(x)} {int(y)}\n")
            else:
                fh.write(f"v {u + 1} {x!r} {y!r}\n")
    finally:
        if should_close:
            fh.close()


def write_dimacs(graph: Graph, gr_sink: PathOrFile, co_sink: PathOrFile) -> None:
    """Write both the ``.gr`` and ``.co`` files for ``graph``."""
    write_gr(graph, gr_sink)
    write_co(graph, co_sink)


def dumps(graph: Graph) -> Tuple[str, str]:
    """Return the ``(gr, co)`` file contents as strings (testing helper)."""
    gr_buf, co_buf = io.StringIO(), io.StringIO()
    write_gr(graph, gr_buf)
    write_co(graph, co_buf)
    return gr_buf.getvalue(), co_buf.getvalue()
