"""Directed spatial graph substrate used by every index in this package.

The paper models a road network as a directed, degree-bounded, connected
graph whose nodes live in a two-dimensional space and whose edges carry a
positive weight (Section 2).  :class:`Graph` is an immutable adjacency-list
realisation of that model; mutation happens through
:class:`repro.graph.builder.GraphBuilder`.

Design notes
------------
* Nodes are dense integer ids ``0 .. n-1``; this keeps every per-node table
  a plain Python list, which is the fastest container available without C
  extensions.
* Both out- and in-adjacency are stored because the bidirectional searches
  used by FC, AH and CH traverse forward edges from the source and reverse
  edges from the target.
* Parallel edges are collapsed at build time (the minimum weight wins) so
  that ``(u, v)`` uniquely identifies an edge; the arterial-edge machinery
  of the paper identifies edges by their endpoints.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = ["Graph"]


class Graph:
    """An immutable directed graph with node coordinates.

    Parameters
    ----------
    xs, ys:
        Node coordinates; ``len(xs) == len(ys)`` defines the node count.
    out_edges:
        ``out_edges[u]`` is a list of ``(v, w)`` pairs for every directed
        edge ``u -> v`` with weight ``w > 0``.

    The constructor computes the reverse adjacency and basic statistics.
    Use :class:`repro.graph.builder.GraphBuilder` instead of calling this
    directly.
    """

    __slots__ = ("xs", "ys", "out", "inn", "_m", "_weight")

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        out_edges: Sequence[Sequence[Tuple[int, float]]],
    ) -> None:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        if len(out_edges) != len(xs):
            raise ValueError("out_edges must have one entry per node")
        self.xs: List[float] = list(xs)
        self.ys: List[float] = list(ys)
        self.out: List[List[Tuple[int, float]]] = [list(adj) for adj in out_edges]
        n = len(self.xs)
        inn: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        m = 0
        weight: Dict[Tuple[int, int], float] = {}
        for u, adj in enumerate(self.out):
            for v, w in adj:
                if not 0 <= v < n:
                    raise ValueError(f"edge ({u}, {v}) points outside the graph")
                if w <= 0:
                    raise ValueError(f"edge ({u}, {v}) has non-positive weight {w}")
                inn[v].append((u, w))
                weight[(u, v)] = w
                m += 1
        self.inn: List[List[Tuple[int, float]]] = inn
        self._m = m
        self._weight = weight

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.xs)

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return self._m

    def nodes(self) -> range:
        """Iterate over node ids."""
        return range(self.n)

    def coord(self, u: int) -> Tuple[float, float]:
        """Return the ``(x, y)`` coordinate of node ``u``."""
        return self.xs[u], self.ys[u]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield every directed edge as ``(u, v, w)``."""
        for u, adj in enumerate(self.out):
            for v, w in adj:
                yield u, v, w

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the directed edge ``u -> v`` exists."""
        return (u, v) in self._weight

    def edge_weight(self, u: int, v: int) -> float:
        """Return the weight of edge ``u -> v``.

        Raises ``KeyError`` if the edge does not exist.
        """
        return self._weight[(u, v)]

    def out_degree(self, u: int) -> int:
        """Number of outgoing edges of ``u``."""
        return len(self.out[u])

    def in_degree(self, u: int) -> int:
        """Number of incoming edges of ``u``."""
        return len(self.inn[u])

    def degree(self, u: int) -> int:
        """Total degree (in + out) of ``u``."""
        return len(self.out[u]) + len(self.inn[u])

    def max_degree(self) -> int:
        """The largest total degree of any node (``Δ`` in Appendix A)."""
        if self.n == 0:
            return 0
        return max(self.degree(u) for u in self.nodes())

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` over all nodes."""
        if self.n == 0:
            raise ValueError("empty graph has no bounding box")
        return min(self.xs), min(self.ys), max(self.xs), max(self.ys)

    def linf_diameter(self) -> float:
        """Largest L∞ distance between any two nodes (``dmax`` in §1).

        For axis-aligned point sets the L∞ diameter is attained on the
        bounding box, so this is computed in O(n).
        """
        min_x, min_y, max_x, max_y = self.bounding_box()
        return max(max_x - min_x, max_y - min_y)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "Graph":
        """Return a new graph with every edge direction flipped."""
        out = [[(u, w) for u, w in self.inn[v]] for v in self.nodes()]
        return Graph(self.xs, self.ys, out)

    def total_weight(self) -> float:
        """Sum of all edge weights; handy for perturbation bookkeeping."""
        return sum(w for _, _, w in self.edges())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.n}, m={self.m})"
