"""Directed spatial graph substrate used by every index in this package.

The paper models a road network as a directed, degree-bounded, connected
graph whose nodes live in a two-dimensional space and whose edges carry a
positive weight (Section 2).  :class:`Graph` is an immutable realisation
of that model; mutation happens through
:class:`repro.graph.builder.GraphBuilder`.

Design notes
------------
* Nodes are dense integer ids ``0 .. n-1``.
* The canonical storage is **CSR** (compressed sparse row): three flat
  parallel arrays per direction.  ``out_head[u] : out_head[u + 1]``
  delimits node ``u``'s slice of ``out_dst`` / ``out_w``; the reverse
  triple ``in_head`` / ``in_src`` / ``in_w`` stores the same edges keyed
  by target.  Flat columns cost ~16 bytes per edge per direction, versus
  ~100+ for a list of tuples, and serialize to disk as single contiguous
  blocks (:mod:`repro.core.serialize`).
* The six columns are ``int64`` / ``float64`` either way, but their
  *container* follows :mod:`repro.backend`: ``numpy.ndarray`` under the
  numpy backend (so reverse-CSR derivation, builder packing and bundle
  I/O vectorise), ``array('q')`` / ``array('d')`` under the pure one.
  Both index like lists, so every scalar code path is shared.
* Both directions are stored because the bidirectional searches used by
  FC, AH and CH traverse forward edges from the source and reverse edges
  from the target.
* CPython iterates a list of ``(v, w)`` tuples faster than it indexes
  flat columns (of either container), so :attr:`out` / :attr:`inn`
  expose the classic adjacency lists as *views derived from the CSR
  columns*, materialised lazily (one C-speed ``tolist`` per column) and
  cached.  Hot query loops iterate those views and therefore see plain
  Python ints/floats regardless of backend; everything that stores,
  ships, or transforms a graph works on the flat columns.
* Parallel edges are collapsed at build time (the minimum weight wins) so
  that ``(u, v)`` uniquely identifies an edge; the arterial-edge machinery
  of the paper identifies edges by their endpoints.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Sequence, Tuple

from .. import backend

__all__ = ["Graph"]


def _reverse_csr(n: int, head, dst, wts):
    """Derive the reverse CSR from the forward CSR in O(n + m).

    Rows of the result are ordered by source node, matching the builder's
    ordering of the forward rows by target.  Under the numpy backend this
    is a histogram + stable argsort (all C); the pure path is the same
    counting sort spelled as two scalar passes — no dictionaries, no
    per-edge tuples either way.
    """
    if backend.use_numpy():
        np = backend.np
        dst_v = backend.np_view_i64(dst)
        rhead = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(dst_v, minlength=n), out=rhead[1:])
        # Stable sort by target preserves the ascending-source order of
        # the forward rows inside each target's run.
        order = np.argsort(dst_v, kind="stable")
        src_of_edge = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(backend.np_view_i64(head))
        )
        return rhead, src_of_edge[order], backend.np_view_f64(wts)[order]
    m = len(dst)
    rhead = array("q", bytes(8 * (n + 1)))
    for v in dst:
        rhead[v + 1] += 1
    for i in range(n):
        rhead[i + 1] += rhead[i]
    rsrc = array("q", bytes(8 * m))
    rw = array("d", bytes(8 * m))
    cursor = list(rhead[:n])
    for u in range(n):
        for e in range(head[u], head[u + 1]):
            v = dst[e]
            slot = cursor[v]
            cursor[v] = slot + 1
            rsrc[slot] = u
            rw[slot] = wts[e]
    return rhead, rsrc, rw


class Graph:
    """An immutable directed graph with node coordinates, stored as CSR.

    Parameters
    ----------
    xs, ys:
        Node coordinates; ``len(xs) == len(ys)`` defines the node count.
    out_edges:
        ``out_edges[u]`` is a list of ``(v, w)`` pairs for every directed
        edge ``u -> v`` with weight ``w > 0``.

    The constructor validates the edge set, packs it into flat CSR
    arrays, and derives the reverse CSR.  Use
    :class:`repro.graph.builder.GraphBuilder` (or :meth:`from_csr` when
    the arrays already exist) instead of calling this directly.
    """

    __slots__ = (
        "xs",
        "ys",
        "out_head",
        "out_dst",
        "out_w",
        "in_head",
        "in_src",
        "in_w",
        "_out",
        "_inn",
        "_weight",
        "_scratch",
    )

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        out_edges: Sequence[Sequence[Tuple[int, float]]],
    ) -> None:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        if len(out_edges) != len(xs):
            raise ValueError("out_edges must have one entry per node")
        n = len(xs)
        head = array("q", bytes(8 * (n + 1)))
        dst = array("q")
        wts = array("d")
        for u, adj in enumerate(out_edges):
            for v, w in adj:
                if not 0 <= v < n:
                    raise ValueError(f"edge ({u}, {v}) points outside the graph")
                if w <= 0:
                    raise ValueError(f"edge ({u}, {v}) has non-positive weight {w}")
                dst.append(v)
                wts.append(w)
            head[u + 1] = len(dst)
        self._init_from_csr(list(map(float, xs)), list(map(float, ys)), head, dst, wts)

    def _init_from_csr(
        self,
        xs: List[float],
        ys: List[float],
        out_head,
        out_dst,
        out_w,
        in_head=None,
        in_src=None,
        in_w=None,
    ) -> None:
        self.xs = xs
        self.ys = ys
        # Normalise the columns to the active backend's container (a
        # no-op when they already match, one memcpy otherwise), so a
        # graph's storage is always consistent with repro.backend.active()
        # at construction time.
        self.out_head = backend.as_index_col(out_head)
        self.out_dst = backend.as_index_col(out_dst)
        self.out_w = backend.as_float_col(out_w)
        if in_head is None:
            in_head, in_src, in_w = _reverse_csr(
                len(xs), self.out_head, self.out_dst, self.out_w
            )
        self.in_head = backend.as_index_col(in_head)
        self.in_src = backend.as_index_col(in_src)
        self.in_w = backend.as_float_col(in_w)
        self._out: List[List[Tuple[int, float]]] = None
        self._inn: List[List[Tuple[int, float]]] = None
        self._weight: Dict[Tuple[int, int], float] = None
        self._scratch: list = []  # free SearchWorkspace pool, see workspace.py

    @classmethod
    def from_csr(
        cls,
        xs: Sequence[float],
        ys: Sequence[float],
        out_head,
        out_dst,
        out_w,
        in_head=None,
        in_src=None,
        in_w=None,
    ) -> "Graph":
        """Wrap already-packed CSR columns without re-validating them.

        The fast construction path used by :class:`GraphBuilder`,
        :func:`Graph.reversed` and :mod:`repro.core.serialize`.  Columns
        may be stdlib ``array``\\ s or numpy arrays; they are normalised
        to the active backend's container.  When the reverse triple is
        omitted it is derived by counting sort; when given (e.g. loaded
        from disk) it is trusted as-is and no re-derivation happens.
        """
        g = cls.__new__(cls)
        g._init_from_csr(
            list(xs), list(ys), out_head, out_dst, out_w, in_head, in_src, in_w
        )
        return g

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.xs)

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return len(self.out_dst)

    @property
    def out(self) -> List[List[Tuple[int, float]]]:
        """Adjacency-list view over the forward CSR: ``out[u]`` is a list
        of ``(v, w)`` pairs.  Materialised on first access and cached —
        CPython's tuple-unpacking iteration over these lists is what the
        hot search loops consume."""
        view = self._out
        if view is None:
            # tolist() converts each column to plain Python ints/floats in
            # one C pass — the hot loops must never see numpy scalars,
            # whose boxed arithmetic is several times slower.
            head = self.out_head.tolist()
            dst = self.out_dst.tolist()
            wts = self.out_w.tolist()
            view = [
                list(zip(dst[head[u] : head[u + 1]], wts[head[u] : head[u + 1]]))
                for u in range(len(self.xs))
            ]
            self._out = view
        return view

    @property
    def inn(self) -> List[List[Tuple[int, float]]]:
        """Adjacency-list view over the reverse CSR: ``inn[v]`` is a list
        of ``(u, w)`` pairs for edges ``u -> v``."""
        view = self._inn
        if view is None:
            head = self.in_head.tolist()
            src = self.in_src.tolist()
            wts = self.in_w.tolist()
            view = [
                list(zip(src[head[v] : head[v + 1]], wts[head[v] : head[v + 1]]))
                for v in range(len(self.xs))
            ]
            self._inn = view
        return view

    def nodes(self) -> range:
        """Iterate over node ids."""
        return range(len(self.xs))

    def coord(self, u: int) -> Tuple[float, float]:
        """Return the ``(x, y)`` coordinate of node ``u``."""
        return self.xs[u], self.ys[u]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield every directed edge as ``(u, v, w)`` straight off CSR.

        The columns are converted once via ``tolist`` so callers see
        plain Python ints/floats on both backends.
        """
        head = self.out_head.tolist()
        dst = self.out_dst.tolist()
        wts = self.out_w.tolist()
        for u in range(len(self.xs)):
            for e in range(head[u], head[u + 1]):
                yield u, dst[e], wts[e]

    def _weight_map(self) -> Dict[Tuple[int, int], float]:
        table = self._weight
        if table is None:
            table = {}
            head = self.out_head.tolist()
            dst = self.out_dst.tolist()
            wts = self.out_w.tolist()
            for u in range(len(self.xs)):
                for e in range(head[u], head[u + 1]):
                    table[(u, dst[e])] = wts[e]
            self._weight = table
        return table

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the directed edge ``u -> v`` exists."""
        return (u, v) in self._weight_map()

    def edge_weight(self, u: int, v: int) -> float:
        """Return the weight of edge ``u -> v``.

        Raises ``KeyError`` if the edge does not exist.
        """
        return self._weight_map()[(u, v)]

    def out_degree(self, u: int) -> int:
        """Number of outgoing edges of ``u``."""
        return int(self.out_head[u + 1] - self.out_head[u])

    def in_degree(self, u: int) -> int:
        """Number of incoming edges of ``u``."""
        return int(self.in_head[u + 1] - self.in_head[u])

    def degree(self, u: int) -> int:
        """Total degree (in + out) of ``u``."""
        return int(
            self.out_head[u + 1]
            - self.out_head[u]
            + self.in_head[u + 1]
            - self.in_head[u]
        )

    def max_degree(self) -> int:
        """The largest total degree of any node (``Δ`` in Appendix A)."""
        if len(self.xs) == 0:
            return 0
        return max(self.degree(u) for u in self.nodes())

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` over all nodes."""
        if len(self.xs) == 0:
            raise ValueError("empty graph has no bounding box")
        return min(self.xs), min(self.ys), max(self.xs), max(self.ys)

    def linf_diameter(self) -> float:
        """Largest L∞ distance between any two nodes (``dmax`` in §1).

        For axis-aligned point sets the L∞ diameter is attained on the
        bounding box, so this is computed in O(n).
        """
        min_x, min_y, max_x, max_y = self.bounding_box()
        return max(max_x - min_x, max_y - min_y)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "Graph":
        """Return a new graph with every edge direction flipped.

        O(1) array reuse: the reverse CSR of this graph *is* the forward
        CSR of the flipped one (and vice versa), so no adjacency is
        recomputed.
        """
        return Graph.from_csr(
            self.xs,
            self.ys,
            self.in_head,
            self.in_src,
            self.in_w,
            self.out_head,
            self.out_dst,
            self.out_w,
        )

    def total_weight(self) -> float:
        """Sum of all edge weights; handy for perturbation bookkeeping."""
        return backend.col_sum(self.out_w)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.n}, m={self.m})"
