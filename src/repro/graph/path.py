"""Path objects returned by shortest path queries, plus validation helpers.

A shortest path query (Section 2 of the paper) returns a sequence of edges
``e1..ek`` forming a path from ``s`` to ``t`` minimising total length.  We
represent a path by its node sequence; the edge sequence is implied and is
validated against the graph on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .graph import Graph

__all__ = ["Path", "path_length", "validate_path"]


def path_length(graph: Graph, nodes: Sequence[int]) -> float:
    """Sum the weights of the consecutive edges along ``nodes``.

    Raises ``KeyError`` if any consecutive pair is not an edge of ``graph``.
    A single-node path has length 0.
    """
    total = 0.0
    for u, v in zip(nodes, nodes[1:]):
        total += graph.edge_weight(u, v)
    return total


def validate_path(
    graph: Graph,
    nodes: Sequence[int],
    source: int,
    target: int,
    expected_length: float = None,
    rel_tol: float = 1e-9,
) -> None:
    """Assert that ``nodes`` is a genuine ``source -> target`` walk.

    Checks, in order: endpoint identity, existence of every edge, and (when
    ``expected_length`` is given) that the summed weight matches within
    ``rel_tol``.  Raises ``ValueError`` on the first violation.  This is the
    workhorse of the test suite: every index's shortest path answers pass
    through it.
    """
    if not nodes:
        raise ValueError("empty path")
    if nodes[0] != source:
        raise ValueError(f"path starts at {nodes[0]}, expected source {source}")
    if nodes[-1] != target:
        raise ValueError(f"path ends at {nodes[-1]}, expected target {target}")
    total = 0.0
    for u, v in zip(nodes, nodes[1:]):
        if not graph.has_edge(u, v):
            raise ValueError(f"path uses missing edge ({u}, {v})")
        total += graph.edge_weight(u, v)
    if expected_length is not None:
        scale = max(abs(total), abs(expected_length), 1.0)
        if abs(total - expected_length) > rel_tol * scale:
            raise ValueError(
                f"path length {total} does not match expected {expected_length}"
            )


@dataclass(frozen=True)
class Path:
    """A shortest path answer: node sequence plus its length.

    Attributes
    ----------
    nodes:
        Node ids from source to target inclusive.
    length:
        Total weight of the path's edges (the distance-query answer).
    """

    nodes: Tuple[int, ...]
    length: float

    @classmethod
    def from_nodes(cls, graph: Graph, nodes: Sequence[int]) -> "Path":
        """Build a :class:`Path`, computing the length from ``graph``."""
        return cls(tuple(nodes), path_length(graph, nodes))

    @property
    def source(self) -> int:
        """First node of the path."""
        return self.nodes[0]

    @property
    def target(self) -> int:
        """Last node of the path."""
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        """Number of edges ``k`` on the path (the paper's ``k``)."""
        return len(self.nodes) - 1

    def edges(self) -> List[Tuple[int, int]]:
        """Return the path as a list of ``(u, v)`` edges."""
        return list(zip(self.nodes, self.nodes[1:]))

    def validate(self, graph: Graph) -> None:
        """Check this path against ``graph``; raise ``ValueError`` if bad."""
        validate_path(graph, self.nodes, self.source, self.target, self.length)
