"""Graph substrate: spatial directed graphs, IO, and exact traversals."""

from .builder import GraphBuilder
from .graph import Graph
from .io import read_dimacs, write_dimacs
from .path import Path, path_length, validate_path
from .traversal import (
    bidirectional_distance,
    bidirectional_path,
    dijkstra_distances,
    dijkstra_tree,
    distance_query,
    multi_source_distances,
    shortest_path_query,
    shortest_path_tree,
)
from .validation import NetworkReport, analyze_network, check_road_network
from .workspace import SearchWorkspace

__all__ = [
    "Graph",
    "GraphBuilder",
    "SearchWorkspace",
    "Path",
    "path_length",
    "validate_path",
    "read_dimacs",
    "write_dimacs",
    "dijkstra_distances",
    "dijkstra_tree",
    "shortest_path_tree",
    "distance_query",
    "shortest_path_query",
    "bidirectional_distance",
    "bidirectional_path",
    "multi_source_distances",
    "NetworkReport",
    "analyze_network",
    "check_road_network",
]
