"""Mutable builder producing immutable :class:`repro.graph.graph.Graph`.

The builder is the single entry point for constructing graphs by hand, from
generators (:mod:`repro.datasets.synthetic`) or from DIMACS files
(:mod:`repro.graph.io`).  It normalises the edge set the way the paper's
model expects: positive weights, no self loops, and no parallel edges (the
cheapest copy of a parallel edge wins, which never changes any shortest
path or distance).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Tuple

from .. import backend
from .graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates nodes and directed edges, then :meth:`build`\\ s a graph.

    Example
    -------
    >>> b = GraphBuilder()
    >>> a = b.add_node(0.0, 0.0)
    >>> c = b.add_node(1.0, 0.0)
    >>> b.add_edge(a, c, 1.5)
    >>> g = b.build()
    >>> g.n, g.m
    (2, 1)
    """

    def __init__(self) -> None:
        self._xs: List[float] = []
        self._ys: List[float] = []
        self._edges: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, x: float, y: float) -> int:
        """Add a node at coordinate ``(x, y)`` and return its id."""
        self._xs.append(float(x))
        self._ys.append(float(y))
        return len(self._xs) - 1

    def add_nodes(self, coords) -> List[int]:
        """Add many nodes; ``coords`` yields ``(x, y)`` pairs."""
        return [self.add_node(x, y) for x, y in coords]

    @property
    def node_count(self) -> int:
        """Number of nodes added so far."""
        return len(self._xs)

    def coord(self, u: int) -> Tuple[float, float]:
        """Coordinate of an already-added node."""
        return self._xs[u], self._ys[u]

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add directed edge ``u -> v``.

        Self loops are rejected (they can never lie on a shortest path with
        positive weights).  A parallel edge replaces the stored one only if
        it is strictly cheaper.
        """
        if u == v:
            raise ValueError(f"self loop on node {u} is not allowed")
        if not (0 <= u < self.node_count and 0 <= v < self.node_count):
            raise ValueError(f"edge ({u}, {v}) references an unknown node")
        w = float(weight)
        if w <= 0:
            raise ValueError(f"edge ({u}, {v}) must have positive weight, got {w}")
        key = (u, v)
        old = self._edges.get(key)
        if old is None or w < old:
            self._edges[key] = w

    def add_bidirectional_edge(self, u: int, v: int, weight: float) -> None:
        """Add ``u -> v`` and ``v -> u`` with the same weight.

        Road networks in the paper's datasets are overwhelmingly
        bidirectional; Figure 1's example explicitly uses bidirectional
        edges.
        """
        self.add_edge(u, v, weight)
        self.add_edge(v, u, weight)

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if ``u -> v`` has been added."""
        return (u, v) in self._edges

    @property
    def edge_count(self) -> int:
        """Number of distinct directed edges added so far."""
        return len(self._edges)

    def iter_edges(self):
        """Iterate over ``((u, v), w)`` for every edge added so far."""
        return iter(self._edges.items())

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> Graph:
        """Freeze the accumulated nodes/edges into an immutable graph.

        Edges were validated on :meth:`add_edge`, so this packs them
        straight into the CSR columns — one sorted pass, no intermediate
        per-node lists — and hands the columns to :meth:`Graph.from_csr`.
        Under the numpy backend the sort is a C lexsort over the endpoint
        columns and the row pointers come from a histogram, so no Python
        tuple comparisons happen per edge.
        """
        n = self.node_count
        m = len(self._edges)
        if backend.use_numpy():
            np = backend.np
            endpoints = np.fromiter(
                self._edges.keys(), dtype=np.dtype((np.int64, 2)), count=m
            ).reshape(m, 2)
            wts_col = np.fromiter(self._edges.values(), dtype=np.float64, count=m)
            us, vs = endpoints[:, 0], endpoints[:, 1]
            order = np.lexsort((vs, us))  # sort by (u, v), v minor
            head = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(us, minlength=n), out=head[1:])
            return Graph.from_csr(
                list(self._xs), list(self._ys), head, vs[order], wts_col[order]
            )
        head = array("q", bytes(8 * (n + 1)))
        dst = array("q", bytes(8 * m))
        wts = array("d", bytes(8 * m))
        for pos, ((u, v), w) in enumerate(sorted(self._edges.items())):
            head[u + 1] = pos + 1
            dst[pos] = v
            wts[pos] = w
        # Nodes with no outgoing edges inherit the previous head cursor.
        for u in range(n):
            if head[u + 1] < head[u]:
                head[u + 1] = head[u]
        return Graph.from_csr(list(self._xs), list(self._ys), head, dst, wts)
