"""Table 2 — dataset characteristics.

Renders the paper's dataset table next to the generated suite's actual
node/edge counts, plus basic network health (strong connectivity, max
degree) so the substitution documented in DESIGN.md stays auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ...datasets.suite import SUITE, dataset, dataset_spec
from ...graph.validation import analyze_network
from ..reporting import format_table

__all__ = ["Table2Row", "run", "render"]


@dataclass(frozen=True)
class Table2Row:
    """One suite dataset's paper-vs-generated characteristics."""

    name: str
    region: str
    paper_nodes: int
    paper_edges: int
    nodes: int
    edges: int
    strongly_connected: bool
    max_degree: int


def run(datasets: Sequence[str] = None) -> List[Table2Row]:
    """Build (or fetch) each dataset and collect its characteristics."""
    rows: List[Table2Row] = []
    for name in datasets or SUITE:
        spec = dataset_spec(name)
        graph = dataset(name)
        report = analyze_network(graph)
        rows.append(
            Table2Row(
                name=spec.name,
                region=spec.region,
                paper_nodes=spec.paper_nodes,
                paper_edges=spec.paper_edges,
                nodes=graph.n,
                edges=graph.m,
                strongly_connected=report.strongly_connected,
                max_degree=report.max_degree,
            )
        )
    return rows


def render(rows: Sequence[Table2Row]) -> str:
    """Render the Table-2 analogue."""
    return format_table(
        ["name", "region", "paper n", "paper m", "ours n", "ours m", "SCC", "maxdeg"],
        [
            (
                r.name,
                r.region,
                r.paper_nodes,
                r.paper_edges,
                r.nodes,
                r.edges,
                "yes" if r.strongly_connected else "NO",
                r.max_degree,
            )
            for r in rows
        ],
        title="Table 2 — dataset characteristics (paper scale vs generated suite)",
    )
