"""Figure 3 — arterial dimensions of road networks.

The paper imposes ``2^r x 2^r`` grids (``r in [3, 17]``) on eight USA
networks and plots, per resolution, the mean / 90% / 99% quantile / max
number of arterial edges over all 4x4-cell regions, demonstrating that
the arterial dimension is a small constant (< 100 even for 24 M nodes).

This module reproduces the measurement on the synthetic suite.  Two
modes are provided:

* ``exact`` — the full Definition-1 computation on the input graph
  (regions over the node cap are skipped and reported);
* ``reduced`` — the pseudo-arterial counts of the AH construction
  (Lemma 9 bounds these by ``50 λ²``), which scales to every suite size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ...core.arterial import ArterialStats, arterial_dimension_stats
from ...core.hierarchy import assign_levels
from ...datasets.suite import dataset
from ...graph.graph import Graph
from ..reporting import format_table

__all__ = ["Fig3Result", "run", "run_graph", "render"]


@dataclass(frozen=True)
class Fig3Result:
    """Arterial statistics for one dataset."""

    dataset: str
    n: int
    mode: str
    stats: List[ArterialStats]

    def overall_max(self) -> int:
        """Largest per-region arterial count over all resolutions."""
        return max((s.max for s in self.stats), default=0)


def run_graph(
    graph: Graph,
    name: str,
    mode: str = "exact",
    max_region_nodes: int = 2500,
) -> Fig3Result:
    """Measure one graph in the requested mode."""
    if mode == "exact":
        stats = arterial_dimension_stats(graph, max_region_nodes=max_region_nodes)
    elif mode == "reduced":
        assignment = assign_levels(graph, collect_region_counts=True)
        stats = [
            ArterialStats.from_counts(
                i, assignment.pyramid.h + 2 - i, counts, skipped=0
            )
            for i, counts in sorted((assignment.region_counts or {}).items())
        ]
    else:
        raise ValueError(f"mode must be 'exact' or 'reduced', got {mode!r}")
    return Fig3Result(dataset=name, n=graph.n, mode=mode, stats=stats)


def run(
    datasets: Sequence[str] = ("DE", "NH", "ME"),
    mode: str = "exact",
    max_region_nodes: int = 2500,
) -> List[Fig3Result]:
    """Measure several suite datasets (paper: panels (a)-(h))."""
    return [
        run_graph(dataset(name), name, mode=mode, max_region_nodes=max_region_nodes)
        for name in datasets
    ]


def render(results: Sequence[Fig3Result]) -> str:
    """Render the figure's series as per-dataset tables."""
    blocks: List[str] = []
    for res in results:
        rows = [
            (s.resolution, s.regions, s.skipped, round(s.mean, 1), s.q90, s.q99, s.max)
            for s in sorted(res.stats, key=lambda s: s.resolution)
        ]
        blocks.append(
            format_table(
                ["r", "regions", "skipped", "mean", "q90", "q99", "max"],
                rows,
                title=(
                    f"Figure 3 ({res.mode}) — {res.dataset} (n={res.n:,}): "
                    "arterial edges per 4x4 region vs grid resolution r"
                ),
            )
        )
    return "\n\n".join(blocks)
