"""Figure 10 — space overhead and preprocessing time versus n.

The paper plots, across the ten datasets, (a) the index size and (b) the
construction time of AH, SILC and CH, establishing that SILC grows
super-linearly (unusable past mid-size), AH grows linearly with moderate
constants, and CH is the most frugal.

The reproduction sweeps a ladder of suite datasets, building each engine
(SILC only under its size cap) and recording build seconds plus the
machine-independent index entry count.  Per-step growth ratios are
rendered alongside, so the linear-vs-superlinear distinction is visible
without a plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ...datasets.suite import dataset
from ..harness import BuildRecord, build_engine
from ..reporting import format_series
from .fig89 import SIZE_CAPS

__all__ = ["Fig10Result", "run", "render", "growth_exponent"]


@dataclass(frozen=True)
class Fig10Result:
    """Build records for the size ladder, grouped by engine."""

    datasets: List[str]
    sizes: List[int]
    builds: Dict[str, List[Optional[BuildRecord]]]


def run(
    datasets: Sequence[str] = ("DE", "NH", "ME", "CO"),
    engines: Sequence[str] = ("SILC", "CH", "AH"),
    engine_kwargs: Optional[Dict[str, Dict]] = None,
) -> Fig10Result:
    """Build every engine on every ladder dataset (caps respected)."""
    engine_kwargs = engine_kwargs or {}
    sizes: List[int] = []
    builds: Dict[str, List[Optional[BuildRecord]]] = {e: [] for e in engines}
    for name in datasets:
        graph = dataset(name)
        sizes.append(graph.n)
        for engine_name in engines:
            cap = SIZE_CAPS.get(engine_name)
            if cap is not None and graph.n > cap:
                builds[engine_name].append(None)
                continue
            _, record = build_engine(
                engine_name,
                graph,
                dataset=name,
                use_cache=True,
                **engine_kwargs.get(engine_name, {}),
            )
            builds[engine_name].append(record)
    return Fig10Result(datasets=list(datasets), sizes=sizes, builds=builds)


def growth_exponent(sizes: Sequence[int], values: Sequence[float]) -> Optional[float]:
    """Least-squares slope of log(value) vs log(n).

    ~1.0 indicates linear growth, >1.3 super-linear; used by the
    benchmark assertions on the figure's qualitative claims.
    """
    import math

    points = [
        (math.log(n), math.log(v))
        for n, v in zip(sizes, values)
        if v and v > 0
    ]
    if len(points) < 2:
        return None
    mx = sum(p[0] for p in points) / len(points)
    my = sum(p[1] for p in points) / len(points)
    denom = sum((x - mx) ** 2 for x, _ in points)
    if denom == 0:
        return None
    return sum((x - mx) * (y - my) for x, y in points) / denom


def render(result: Fig10Result) -> str:
    """Render panels (a) space and (b) preprocessing time."""
    space_series: Dict[str, List[object]] = {}
    time_series: Dict[str, List[object]] = {}
    for engine, records in result.builds.items():
        space_series[engine] = [
            (r.index_size if r else "-") for r in records
        ]
        time_series[engine] = [
            (round(r.build_seconds, 3) if r else "-") for r in records
        ]
    x = [f"{name} ({n:,})" for name, n in zip(result.datasets, result.sizes)]
    a = format_series(
        "dataset (n)",
        x,
        space_series,
        title="Figure 10a — index size (stored entries) vs n",
    )
    b = format_series(
        "dataset (n)",
        x,
        time_series,
        title="Figure 10b — preprocessing time (seconds) vs n",
    )
    exps: List[str] = []
    for engine, records in result.builds.items():
        ns = [n for n, r in zip(result.sizes, records) if r]
        space_exp = growth_exponent(ns, [r.index_size for r in records if r])
        time_exp = growth_exponent(ns, [r.build_seconds for r in records if r])
        exps.append(
            f"{engine}: space growth n^{space_exp:.2f}, "
            f"time growth n^{time_exp:.2f}"
            if space_exp is not None and time_exp is not None
            else f"{engine}: insufficient points"
        )
    return "\n\n".join([a, b, "log-log growth exponents:\n" + "\n".join(exps)])
