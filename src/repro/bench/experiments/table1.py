"""Table 1 — asymptotic performance, checked empirically.

Table 1 of the paper lists the bounds of the state of the art and claims
for AH: ``O(hn)`` space, ``O(hn²)`` preprocessing, ``O(h log h)``
distance queries and ``O(k + h log h)`` path queries.  Absolute bounds
cannot be "measured", but their *consequences* can: on a ladder of
growing networks we record

* index entries per node (should stay ~proportional to ``h``),
* distance query time (should stay nearly flat in ``n`` — it depends
  only on ``h ≈ log α``),
* path query time minus distance query time per path edge (the ``O(k)``
  unpacking term),

and render them next to the paper's formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ...datasets.suite import dataset
from ...datasets.workloads import generate_workloads
from ..harness import build_engine, time_distance_batch, time_path_batch
from ..reporting import format_table

__all__ = ["Table1Row", "run", "render", "PAPER_BOUNDS"]

#: The paper's Table 1 (the "this paper" row plus the competitors it
#: compares against), kept verbatim for the rendered report.
PAPER_BOUNDS = [
    ("Mozes-Sommer [19]", "O(n)", "O(n log n)", "O(n^0.5+e)", "O(k + n^0.5+e)"),
    ("Abraham et al. [4]", "O(n log n log D)", "O(n^2 log n)", "O(log^2 n log^2 D)", "O(k + log^2 n log^2 D)"),
    ("Samet et al. [21]", "O(n sqrt(n))", "O(n^2 log n)", "O(k log n)", "O(k log n)"),
    ("this paper (AH)", "O(hn)", "O(hn^2)", "O(h log h)", "O(k + h log h)"),
]


@dataclass(frozen=True)
class Table1Row:
    """Empirical AH measurements for one ladder dataset."""

    dataset: str
    n: int
    h: int
    index_entries: int
    entries_per_node: float
    build_seconds: float
    distance_us: float
    path_us: float
    mean_hops: float
    unpack_us_per_hop: float


def run(
    datasets: Sequence[str] = ("DE", "NH", "ME", "CO"),
    queries: int = 100,
    seed: int = 0,
) -> List[Table1Row]:
    """Measure AH's empirical scaling on the ladder."""
    rows: List[Table1Row] = []
    for name in datasets:
        graph = dataset(name)
        engine, build = build_engine("AH", graph, dataset=name, use_cache=True)
        workloads = generate_workloads(graph, queries_per_bucket=queries, seed=seed)
        buckets = workloads.non_empty_buckets()
        # Long-range queries stress the hierarchy most; mirror the paper's
        # emphasis by sampling from the top non-empty buckets.
        pairs = []
        for b in reversed(buckets):
            pairs.extend(workloads.bucket(b))
            if len(pairs) >= queries:
                break
        pairs = pairs[:queries]
        drec = time_distance_batch(engine, pairs, dataset=name, repeats=3)
        prec = time_path_batch(engine, pairs, dataset=name, repeats=3)
        hops = []
        for s, t in pairs[: max(10, len(pairs) // 5)]:
            path = engine.shortest_path(s, t)
            if path is not None:
                hops.append(path.hop_count)
        mean_hops = sum(hops) / len(hops) if hops else 0.0
        unpack = (
            (prec.mean_us - drec.mean_us) / mean_hops if mean_hops > 0 else 0.0
        )
        rows.append(
            Table1Row(
                dataset=name,
                n=graph.n,
                h=engine.h,
                index_entries=build.index_size,
                entries_per_node=build.index_size / graph.n,
                build_seconds=build.build_seconds,
                distance_us=drec.mean_us,
                path_us=prec.mean_us,
                mean_hops=mean_hops,
                unpack_us_per_hop=unpack,
            )
        )
    return rows


def render(rows: Sequence[Table1Row]) -> str:
    """Render the paper's bound table plus the measured consequences."""
    bounds = format_table(
        ["method", "space", "preprocessing", "distance query", "path query"],
        PAPER_BOUNDS,
        title="Table 1 — asymptotic bounds (as printed in the paper)",
    )
    measured = format_table(
        [
            "dataset",
            "n",
            "h",
            "entries",
            "entries/n",
            "build s",
            "dist us",
            "path us",
            "mean k",
            "unpack us/k",
        ],
        [
            (
                r.dataset,
                r.n,
                r.h,
                r.index_entries,
                round(r.entries_per_node, 2),
                round(r.build_seconds, 2),
                round(r.distance_us, 1),
                round(r.path_us, 1),
                round(r.mean_hops, 1),
                round(r.unpack_us_per_hop, 3),
            )
            for r in rows
        ],
        title="Empirical consequences for AH (space/n flat, query ~flat in n)",
    )
    return bounds + "\n\n" + measured
