"""Ablations over AH's design choices (§4.3, §4.4).

The paper motivates several components individually — the proximity
constraint, the rank (vertex-cover) ordering, downgrading, elevating
edges — without isolating their effects.  This experiment does: each
configuration toggles one component against the default AH, and all of
them are validated against ground truth before timing, so an ablation
can never silently trade correctness for speed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...core import AHIndex
from ...datasets.suite import dataset
from ...datasets.workloads import generate_workloads
from ...graph.traversal import distance_query
from ..harness import time_distance_batch
from ..reporting import format_table

__all__ = ["AblationRow", "CONFIGS", "run", "render"]

#: Named configurations; each overrides AHIndex keyword arguments.
CONFIGS: Dict[str, Dict] = {
    "AH (default)": {},
    "no proximity": {"proximity": False},
    "no downgrade": {"downgrade": False},
    "random order": {"ordering": "random"},
    "elevating": {"elevating": True},
    "stall-on-demand": {"stall_on_demand": True},
}


@dataclass(frozen=True)
class AblationRow:
    """One configuration's build/query outcome."""

    config: str
    build_seconds: float
    index_entries: int
    shortcuts: int
    distance_us: float
    correct: bool


def run(
    dataset_name: str = "DE",
    queries: int = 100,
    seed: int = 0,
    configs: Optional[Dict[str, Dict]] = None,
) -> List[AblationRow]:
    """Build each configuration, verify it, then time it."""
    import time as _time

    graph = dataset(dataset_name)
    workloads = generate_workloads(graph, queries_per_bucket=queries, seed=seed)
    buckets = workloads.non_empty_buckets()
    pairs: List[Tuple[int, int]] = []
    rng = random.Random(seed)
    for b in buckets:
        pairs.extend(workloads.bucket(b))
    rng.shuffle(pairs)
    pairs = pairs[:queries]
    truth = [distance_query(graph, s, t) for s, t in pairs]

    rows: List[AblationRow] = []
    for name, kwargs in (configs or CONFIGS).items():
        t0 = _time.perf_counter()
        engine = AHIndex(graph, **kwargs)
        build = _time.perf_counter() - t0
        correct = all(
            abs(engine.distance(s, t) - d) <= 1e-6 * max(1.0, d)
            for (s, t), d in zip(pairs, truth)
        )
        record = time_distance_batch(engine, pairs, dataset=dataset_name)
        rows.append(
            AblationRow(
                config=name,
                build_seconds=build,
                index_entries=engine.index_size(),
                shortcuts=engine.shortcut_count,
                distance_us=record.mean_us,
                correct=correct,
            )
        )
    return rows


def render(rows: Sequence[AblationRow]) -> str:
    """Render the ablation table."""
    return format_table(
        ["configuration", "build s", "entries", "shortcuts", "dist us", "correct"],
        [
            (
                r.config,
                round(r.build_seconds, 2),
                r.index_entries,
                r.shortcuts,
                round(r.distance_us, 1),
                "yes" if r.correct else "NO",
            )
            for r in rows
        ],
        title="AH ablations — one design choice toggled at a time",
    )
