"""Figures 8 and 9 — query efficiency versus query distance.

For every dataset the paper times 10,000 queries per bucket ``Q1..Q10``
(pairs stratified by network distance) for AH, CH, SILC and Dijkstra,
once for distance queries (Figure 8) and once for shortest path queries
(Figure 9).  SILC is omitted beyond mid-size inputs, exactly as in the
paper (its preprocessing/space are prohibitive).

The reproduction sweeps the same grid — engines x buckets x datasets —
with configurable batch sizes, and reports mean per-query latency in
microseconds per bucket, i.e. one text panel per figure panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...datasets.suite import dataset
from ...datasets.workloads import generate_workloads
from ..harness import (
    BuildRecord,
    QueryRecord,
    build_engine,
    time_distance_batch,
    time_path_batch,
)
from ..reporting import format_series

__all__ = ["PanelResult", "run", "render", "DEFAULT_ENGINES"]

DEFAULT_ENGINES: Tuple[str, ...] = ("Dijkstra", "SILC", "CH", "AH")

#: SILC (and FC) are skipped above these sizes, mirroring the paper's
#: exclusion of SILC beyond 500k nodes.
SIZE_CAPS: Dict[str, int] = {"SILC": 4000, "FC": 4000}


@dataclass(frozen=True)
class PanelResult:
    """One figure panel: every engine's per-bucket latency on a dataset."""

    dataset: str
    n: int
    kind: str  # "distance" or "path"
    buckets: List[int]  # 1-based bucket ids actually measured
    builds: List[BuildRecord]
    queries: List[QueryRecord]

    def series(self) -> Dict[str, List[float]]:
        """Engine -> mean latency (us) aligned with ``buckets``."""
        out: Dict[str, List[float]] = {}
        for record in self.queries:
            out.setdefault(record.engine, [])
        for engine in out:
            per_bucket = {
                r.bucket: r.mean_us for r in self.queries if r.engine == engine
            }
            out[engine] = [per_bucket.get(b, float("nan")) for b in self.buckets]
        return out


def run(
    datasets: Sequence[str] = ("DE", "NH"),
    engines: Sequence[str] = DEFAULT_ENGINES,
    kind: str = "distance",
    queries_per_bucket: int = 50,
    seed: int = 0,
    engine_kwargs: Optional[Dict[str, Dict]] = None,
    repeats: int = 3,
) -> List[PanelResult]:
    """Run one figure (8 for ``kind='distance'``, 9 for ``'path'``)."""
    if kind not in ("distance", "path"):
        raise ValueError("kind must be 'distance' or 'path'")
    timer = time_distance_batch if kind == "distance" else time_path_batch
    engine_kwargs = engine_kwargs or {}
    panels: List[PanelResult] = []
    for name in datasets:
        graph = dataset(name)
        workloads = generate_workloads(
            graph, queries_per_bucket=queries_per_bucket, seed=seed
        )
        buckets = workloads.non_empty_buckets()
        builds: List[BuildRecord] = []
        queries: List[QueryRecord] = []
        for engine_name in engines:
            cap = SIZE_CAPS.get(engine_name)
            if cap is not None and graph.n > cap:
                continue
            engine, build = build_engine(
                engine_name,
                graph,
                dataset=name,
                use_cache=True,
                **engine_kwargs.get(engine_name, {}),
            )
            builds.append(build)
            for b in buckets:
                pairs = workloads.bucket(b)
                queries.append(
                    timer(engine, pairs, dataset=name, bucket=b, repeats=repeats)
                )
        panels.append(
            PanelResult(
                dataset=name,
                n=graph.n,
                kind=kind,
                buckets=buckets,
                builds=builds,
                queries=queries,
            )
        )
    return panels


def render(panels: Sequence[PanelResult]) -> str:
    """Render one series table per panel (mean microseconds per query)."""
    figure = "Figure 8" if panels and panels[0].kind == "distance" else "Figure 9"
    blocks: List[str] = []
    for panel in panels:
        blocks.append(
            format_series(
                "Q",
                [f"Q{b}" for b in panel.buckets],
                panel.series(),
                title=(
                    f"{figure} — {panel.kind} queries on {panel.dataset} "
                    f"(n={panel.n:,}); mean microseconds per query"
                ),
            )
        )
    return "\n\n".join(blocks)
