"""Experiment modules, one per table/figure of the paper's evaluation.

Each module exposes ``run(...)`` returning structured records and
``render(result)`` producing the paper-style text panel.  The mapping to
the paper:

========  =====================================================
Module    Paper content
========  =====================================================
table1    Table 1  — asymptotic bounds, checked empirically
table2    Table 2  — dataset characteristics
fig3      Figure 3 — arterial dimension vs grid resolution
fig89     Figure 8 — distance query time vs Q1..Q10
          Figure 9 — shortest path query time vs Q1..Q10
fig10     Figure 10 — index space and preprocessing time vs n
ablation  (extension) per-component AH ablations
========  =====================================================
"""

from . import ablation, fig3, fig10, fig89, table1, table2

__all__ = ["fig3", "fig89", "fig10", "table1", "table2", "ablation"]
