"""Shared machinery for the experiment harness.

The per-figure experiment modules (:mod:`repro.bench.experiments`) use
this layer to build engines uniformly, time query batches, and collect
structured records that :mod:`repro.bench.reporting` renders as the
paper-style tables and series.
"""

from __future__ import annotations

import asyncio
import shutil
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import backend
from ..baselines import (
    ALTEngine,
    AStarEngine,
    BidirectionalEngine,
    CHEngine,
    DijkstraEngine,
    HubLabelIndex,
    QueryEngine,
    Request,
    SILCEngine,
    TNREngine,
)
from ..core import AHIndex, FCIndex
from ..graph.graph import Graph

__all__ = [
    "ENGINE_FACTORIES",
    "BuildRecord",
    "FaultEpisodeRecord",
    "OpenLoopRecord",
    "QueryRecord",
    "ServeRecord",
    "build_engine",
    "environment_metadata",
    "episode_percentiles",
    "latency_percentile",
    "run_closed_loop",
    "run_open_loop",
    "time_distance_batch",
    "time_path_batch",
]


def environment_metadata() -> Dict[str, object]:
    """Backend + interpreter + platform identification for BENCH JSONs.

    Every ``BENCH_*.json`` embeds this so the perf trajectory recorded
    across PRs stays interpretable: a regression that is really a
    backend or interpreter change should be visible as one.  Since the
    native kernel tier (PR 10) the block also records whether a C
    compiler was present (a native-less run on a compiler-less box is
    expected; on a box WITH a compiler it means the extension was never
    built) — the extension's own version/hash ride along inside
    :func:`repro.backend.describe`.
    """
    meta = backend.describe()
    compiler = next(
        (name for name in ("cc", "gcc", "clang") if shutil.which(name)), None
    )
    meta["compiler"] = compiler or "none"
    return meta

#: Engine name -> constructor.  Every constructor takes the graph plus
#: engine-specific keyword arguments.
ENGINE_FACTORIES: Dict[str, Callable[..., QueryEngine]] = {
    "Dijkstra": DijkstraEngine,
    "BiDijkstra": BidirectionalEngine,
    "A*": AStarEngine,
    "ALT": ALTEngine,
    "CH": CHEngine,
    "HL": HubLabelIndex,
    "SILC": SILCEngine,
    "TNR": TNREngine,
    "FC": FCIndex,
    "AH": AHIndex,
}


@dataclass(frozen=True)
class BuildRecord:
    """Preprocessing outcome for one engine on one dataset.

    ``index_size`` is the engine's machine-independent entry count (see
    :meth:`repro.baselines.base.QueryEngine.index_size`), the stand-in
    for Figure 10a's megabytes.
    """

    engine: str
    dataset: str
    n: int
    m: int
    build_seconds: float
    index_size: int
    #: Array backend active during the build ("numpy" / "pure-python") —
    #: the new benchmark dimension; numpy-vs-pure records sit side by
    #: side in the BENCH JSONs, distinguished by this field.
    backend: str = field(default_factory=backend.active)
    #: The engine's own build telemetry when it exposes any (e.g.
    #: ``HubLabelIndex.build_info``: worker count, band shape, and the
    #: PR-9 pipelined-sync record — shm/pipe bytes, overlap fraction).
    #: ``None`` for engines without an instrumented build.
    build_info: Optional[dict] = None


@dataclass(frozen=True)
class QueryRecord:
    """Timing of one query batch (one engine, one dataset, one bucket)."""

    engine: str
    dataset: str
    bucket: int  # 1-based Qi; 0 means "mixed random pairs"
    kind: str  # "distance" | "path"
    queries: int
    mean_us: float
    #: Array backend active while the batch ran (see BuildRecord).
    backend: str = field(default_factory=backend.active)

    @property
    def total_seconds(self) -> float:
        """Total wall time spent on the batch."""
        return self.mean_us * self.queries / 1e6


@dataclass(frozen=True)
class ServeRecord:
    """Throughput of one closed-loop serving run (the PR 4 dimension).

    ``requests`` counts client-visible requests (a one-to-many row is
    one request however many targets it carries); ``mean_batch_size``
    and ``cache_hit_rate`` come from the server's stats surface and
    document *why* the throughput is what it is — how wide coalescing
    actually ran and how much the shared cache absorbed.
    """

    engine: str
    dataset: str
    clients: int
    requests: int
    seconds: float
    requests_per_s: float
    batches: int
    mean_batch_size: float
    cache_hit_rate: float
    #: Array backend active during the run (see BuildRecord).
    backend: str = field(default_factory=backend.active)


@dataclass(frozen=True)
class OpenLoopRecord:
    """Latency picture of one open-loop serving run (the PR 5 dimension).

    Open loop means requests arrive on a *schedule* (Poisson process or
    bursts) regardless of whether earlier answers came back — the
    arrival process, not the server, sets the offered load.  Latency is
    measured from each request's **scheduled** arrival time, so a
    server that falls behind accrues queueing delay in these numbers
    instead of silently slowing the arrival clock (the classic
    coordinated-omission mistake closed loops make).
    """

    engine: str
    dataset: str
    arrival: str  # "poisson" | "bursty"
    offered_rps: float  # scheduled arrival rate, requests/second
    requests: int
    completed: int
    expired: int  # deadline-shed (or rejected) before compute
    duration_s: float  # first scheduled arrival -> last answer
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    #: Array backend active during the run (see BuildRecord).
    backend: str = field(default_factory=backend.active)


@dataclass(frozen=True)
class FaultEpisodeRecord:
    """Latency picture of one scripted fault episode (the PR 8 dimension).

    A *fault episode* is a span of dispatches during which a
    :class:`repro.serve.FaultPlan` injects scripted failures
    (kill/stall/corrupt); ``steady_*`` is the same workload on the same
    pool with no plan.  Both sides are parity-asserted against the
    direct planner before any clock, so these numbers only ever
    describe *correct* service — the record quantifies what surviving
    an outage costs, never what dropping exactness buys.
    """

    scenario: str  # "kill" | "stall-unhedged" | "stall-hedged" | ...
    dispatches: int
    faults_injected: int
    steady_p50_ms: float
    steady_p99_ms: float
    episode_p50_ms: float
    episode_p99_ms: float
    #: Pool answered bit-exactly *after* the episode too (no desync).
    recovered: bool
    #: Array backend active during the run (see BuildRecord).
    backend: str = field(default_factory=backend.active)


def episode_percentiles(latencies_s: Sequence[float]) -> Dict[str, float]:
    """p50/p99/mean/max (milliseconds) of per-dispatch latencies.

    The percentile definition is the shared linear-interpolated
    :func:`latency_percentile`, so episode numbers line up with the
    open-loop records in ``BENCH_serve.json``.
    """
    if not latencies_s:
        return {"p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0, "max_ms": 0.0}
    ordered = sorted(latencies_s)
    return {
        "p50_ms": round(latency_percentile(ordered, 0.50) * 1e3, 3),
        "p99_ms": round(latency_percentile(ordered, 0.99) * 1e3, 3),
        "mean_ms": round(sum(ordered) / len(ordered) * 1e3, 3),
        "max_ms": round(ordered[-1] * 1e3, 3),
    }


def latency_percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted values (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    k = (len(sorted_values) - 1) * q
    lo = int(k)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = k - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def run_open_loop(
    engine: Optional[QueryEngine],
    requests: Sequence[Request],
    arrivals: Sequence[float],
    cache=None,
    submit_timeout: Optional[float] = None,
    **server_kwargs,
) -> Tuple[List[Optional[float]], float, dict]:
    """Fire ``requests`` at their scheduled ``arrivals`` (seconds from t0).

    One task per request sleeps until its arrival offset, submits, and
    records ``completion - scheduled_arrival`` — queueing delay included
    even when the event loop itself lagged the schedule.  Returns
    ``(latencies_s, duration_s, server_stats)``; a latency of ``None``
    marks a request shed by its ``submit_timeout`` deadline (or
    rejected by backpressure) rather than answered.

    ``engine=None`` with a ``pool=`` keyword serves through the
    worker-process tier, same as :func:`run_closed_loop`.
    """
    from ..serve import Server  # local: keep harness import-light

    async def _fire(server, req, at, t0, out, idx):
        loop = asyncio.get_running_loop()
        delay = t0 + at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            await server.submit(req, timeout=submit_timeout)
        except Exception:
            out[idx] = None  # shed (DeadlineExpired / ServerOverloaded)
            return
        out[idx] = loop.time() - (t0 + at)

    async def _main():
        server = Server(engine, cache=cache, **server_kwargs)
        out: List[Optional[float]] = [None] * len(requests)
        async with server:
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            await asyncio.gather(
                *(
                    _fire(server, req, at, t0, out, i)
                    for i, (req, at) in enumerate(zip(requests, arrivals))
                )
            )
            duration = loop.time() - t0
        return out, duration, server.stats()

    return asyncio.run(_main())


def run_closed_loop(
    engine: Optional[QueryEngine],
    scripts: Sequence[Sequence[Request]],
    cache=None,
    **server_kwargs,
) -> Tuple[float, List[List[object]], dict]:
    """Drive per-client request scripts through a coalescing Server.

    Each inner sequence is one client's *closed-loop* session: the
    client awaits every answer before issuing its next request, so the
    offered concurrency equals the number of still-active clients —
    the standard serving-benchmark shape (and the one that exercises
    natural batching: while one planner batch computes, every answered
    client re-submits).

    Returns ``(wall_seconds, per_client_results, server_stats)``; the
    timing covers the requests only, not server startup/shutdown.
    Import of :class:`repro.serve.Server` is deferred so the harness's
    figure-experiment users never pay for the serving layer.

    ``engine=None`` plus a ``pool=`` keyword (forwarded to the server)
    drives the same closed loop through the multi-process worker tier.
    """
    from ..serve import Server  # local: keep harness import-light

    async def _client(server, script, out, idx):
        results = []
        for request in script:
            results.append(await server.submit(request))
        out[idx] = results

    async def _main():
        server = Server(engine, cache=cache, **server_kwargs)
        out: List[Optional[List[object]]] = [None] * len(scripts)
        async with server:
            t0 = time.perf_counter()
            await asyncio.gather(
                *(_client(server, s, out, i) for i, s in enumerate(scripts))
            )
            elapsed = time.perf_counter() - t0
        return elapsed, out, server.stats()

    return asyncio.run(_main())


_ENGINE_CACHE: Dict[Tuple, Tuple[QueryEngine, "BuildRecord"]] = {}


def build_engine(
    name: str, graph: Graph, dataset: str = "?", use_cache: bool = False, **kwargs
) -> Tuple[QueryEngine, BuildRecord]:
    """Construct an engine by name and record its preprocessing cost.

    With ``use_cache=True`` and a real ``dataset`` name, the built engine
    is memoised for the process lifetime; the experiment modules opt in
    so a multi-figure harness run preprocesses each (engine, dataset)
    pair once — the cached :class:`BuildRecord` keeps the original build
    time.
    """
    factory = ENGINE_FACTORIES.get(name)
    if factory is None:
        raise KeyError(f"unknown engine {name!r}; choose from {sorted(ENGINE_FACTORIES)}")
    key = (name, dataset, graph.n, graph.m, tuple(sorted(kwargs.items())))
    if use_cache and key in _ENGINE_CACHE:
        return _ENGINE_CACHE[key]
    t0 = time.perf_counter()
    engine = factory(graph, **kwargs)
    build_seconds = time.perf_counter() - t0
    record = BuildRecord(
        engine=name,
        dataset=dataset,
        n=graph.n,
        m=graph.m,
        build_seconds=build_seconds,
        index_size=engine.index_size(),
        build_info=getattr(engine, "build_info", None),
    )
    if use_cache:
        _ENGINE_CACHE[key] = (engine, record)
    return engine, record


def time_distance_batch(
    engine: QueryEngine,
    pairs: Sequence[Tuple[int, int]],
    dataset: str = "?",
    bucket: int = 0,
    repeats: int = 1,
) -> QueryRecord:
    """Run distance queries over ``pairs`` and record the mean latency.

    With ``repeats > 1`` the batch is run several times and the fastest
    pass is kept, suppressing GC/warm-up spikes on small batches.
    """
    if not pairs:
        return QueryRecord(engine.name, dataset, bucket, "distance", 0, 0.0)
    distance = engine.distance
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        for s, t in pairs:
            distance(s, t)
        best = min(best, time.perf_counter() - t0)
    return QueryRecord(
        engine=engine.name,
        dataset=dataset,
        bucket=bucket,
        kind="distance",
        queries=len(pairs),
        mean_us=best / len(pairs) * 1e6,
    )


def time_path_batch(
    engine: QueryEngine,
    pairs: Sequence[Tuple[int, int]],
    dataset: str = "?",
    bucket: int = 0,
    repeats: int = 1,
) -> QueryRecord:
    """Run shortest path queries over ``pairs``; fastest of ``repeats``."""
    if not pairs:
        return QueryRecord(engine.name, dataset, bucket, "path", 0, 0.0)
    shortest_path = engine.shortest_path
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        for s, t in pairs:
            shortest_path(s, t)
        best = min(best, time.perf_counter() - t0)
    return QueryRecord(
        engine=engine.name,
        dataset=dataset,
        bucket=bucket,
        kind="path",
        queries=len(pairs),
        mean_us=best / len(pairs) * 1e6,
    )
