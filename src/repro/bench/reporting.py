"""Plain-text rendering of experiment results.

The paper presents its evaluation as figures; a text harness renders the
same information as aligned series tables — one row per x-axis point, one
column per method — so "who wins, by what factor, where crossovers fall"
can be read straight off the output (and diffed across runs).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render one column per named series against a shared x axis.

    This is the textual analogue of the paper's figure panels: e.g. for
    Figure 8, ``x_values`` are Q1..Q10 and ``series`` maps each method to
    its per-bucket mean query times.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_kv(pairs: Mapping[str, object], title: Optional[str] = None) -> str:
    """Render key/value pairs, one per line."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(k) for k in pairs), default=0)
    for k, v in pairs.items():
        lines.append(f"{k.ljust(width)} : {_fmt(v)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
