"""Cross-PR perf trajectory: one table over every committed BENCH_*.json.

Each benchmark writes its own ``BENCH_<name>.json`` (and a timing-free
``BENCH_<name>.check.json`` twin) at the repo root; the trajectory those
files record is only useful if it can be read side by side.  This module
folds them into one table::

    python -m repro.bench --summary

    bench   mode   backend                        cpus  key ratios
    csr     full   numpy 2.4.6                    -     best_bucket_speedup=1.703 ...
    hl      full   native (kernels v1, numpy ...) 1     table_native_vs_numpy=...

The "key ratios" column is every numeric entry of the file's
``headline`` block, in file order — benchmarks choose their own
headline keys, so the summary stays schema-free as new benches land.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List

from .reporting import format_table

#: BENCH_<name>.json, with an optional .check variant marker.
_BENCH_RE = re.compile(r"^BENCH_(?P<name>[A-Za-z0-9_-]+?)(?P<check>\.check)?\.json$")


def bench_files(root: str = ".") -> List[Path]:
    """Every BENCH_*.json under *root* (not recursive), sorted by name."""
    return sorted(
        p for p in Path(root).iterdir() if p.is_file() and _BENCH_RE.match(p.name)
    )


#: Ratios shown per row before eliding — full detail stays in the JSON.
MAX_RATIOS = 4


def _ratio_cell(payload: Dict) -> str:
    headline = payload.get("headline")
    if isinstance(headline, dict):
        parts = [
            f"{key}={value}"
            for key, value in headline.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        ]
        if parts:
            cell = "  ".join(parts[:MAX_RATIOS])
            if len(parts) > MAX_RATIOS:
                cell += f"  (+{len(parts) - MAX_RATIOS} more)"
            return cell
    mode = payload.get("mode")
    if mode:  # .check twins: no clocks, summarise what they assert instead
        return str(mode).split(" (")[0]
    return "-"


def summarize_file(path: Path) -> Dict[str, object]:
    """One summary row (plain dict) for a single BENCH JSON."""
    match = _BENCH_RE.match(path.name)
    if match is None:  # pragma: no cover — bench_files() pre-filters
        raise ValueError(f"not a BENCH file: {path.name}")
    payload = json.loads(path.read_text())
    env = payload.get("environment") or {}
    cpus = payload.get("visible_cpus")
    return {
        "bench": match.group("name"),
        "mode": "check" if match.group("check") else "full",
        "backend": str(env.get("backend", "?")),
        "cpus": "-" if cpus is None else str(cpus),
        "python": str(env.get("python", "?")),
        "platform": str(env.get("platform", "?")),
        "ratios": _ratio_cell(payload),
    }


def collect(root: str = ".") -> List[Dict[str, object]]:
    """Summary rows for every BENCH_*.json under *root*."""
    return [summarize_file(p) for p in bench_files(root)]


def render(rows: List[Dict[str, object]]) -> str:
    """The trajectory table as text (or a hint when no files exist)."""
    if not rows:
        return "no BENCH_*.json files found (run the benchmarks/ suite first)"
    header = ["bench", "mode", "backend", "cpus", "python", "key ratios"]
    body = [
        [r["bench"], r["mode"], r["backend"], r["cpus"], r["python"], r["ratios"]]
        for r in rows
    ]
    platforms = sorted({r["platform"] for r in rows})
    table = format_table(header, body, title="Benchmark trajectory")
    return table + "\nplatform: " + "; ".join(platforms)


def main(root: str = ".") -> str:
    return render(collect(root))
